"""Setuptools shim so editable installs work without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
`pip install -e .` / `python setup.py develop` in offline environments
whose setuptools cannot build PEP 660 editable wheels.
"""
from setuptools import setup

setup()
