PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench lint format-check

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m repro.bench.smoke --scale 0.03 --out benchmarks/results/smoke.json

bench:
	$(PYTHON) -m pytest benchmarks/ -q

lint:
	ruff check .

format-check:
	ruff format --check .
