PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-stress bench-smoke bench-micro bench examples lint format-check

test:
	$(PYTHON) -m pytest -x -q

test-stress:
	$(PYTHON) -m pytest -m stress -q

bench-smoke:
	$(PYTHON) -m repro.bench.smoke --scale 0.03 --out benchmarks/results/smoke.json

bench-micro:
	$(PYTHON) -m repro.bench.microbench --scale 0.03 --out benchmarks/results/microbench.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/warehouse_analytics.py
	$(PYTHON) examples/distributed_cluster.py

bench:
	$(PYTHON) -m pytest benchmarks/ -q

lint:
	ruff check .

format-check:
	ruff format --check .
