PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-stress test-differential test-chaos bench-smoke bench-micro bench-incremental bench-delete bench-encoding bench-recovery bench serve-bench examples lint format-check

test:
	$(PYTHON) -m pytest -x -q

test-stress:
	$(PYTHON) -m pytest -m stress -q

# deep randomized cross-engine sweep; size/seed via env:
#   DIFFERENTIAL_EXAMPLES=500 (generated queries)
#   DIFFERENTIAL_SEED_MODE=fixed|random (derandomized vs fresh entropy)
test-differential:
	$(PYTHON) -m pytest -m differential -q tests/differential

# crash matrix: a subprocess workload is killed (os._exit 137) at every
# registered failpoint via a seeded crash schedule, then a fault-free
# process must recover, observe every acknowledged batch as already
# applied, and answer golden queries identically to a clean load
test-chaos:
	$(PYTHON) -m pytest -m chaos -q tests/chaos

bench-smoke:
	$(PYTHON) -m repro.bench.smoke --scale 0.03 --out benchmarks/results/smoke.json

bench-micro:
	$(PYTHON) -m repro.bench.microbench --scale 0.03 --out benchmarks/results/microbench.json

# delta ingest vs scorched-earth rebuild at 1/100/10k-row batches plus
# seminaïve view refresh cost; exits non-zero if a <=1% delta is not
# measurably sub-linear, a data-only write recompiles a plan, or the
# patched graph/view diverge from a cold rebuild
bench-incremental:
	$(PYTHON) -m repro.bench.incremental --base-rows 20000 \
		--out benchmarks/results/BENCH_incremental.json

# tombstone delete deltas vs scorched-earth rebuild; exits non-zero if
# deleting 1% of 20k rows is not >=10x faster than the full rebuild, a
# delete recompiles a plan or triggers a full rebuild, or the patched
# graph/maintained view diverge from a cold rebuild
bench-delete:
	$(PYTHON) -m repro.bench.delete --base-rows 20000 \
		--out benchmarks/results/BENCH_delete.json

# dictionary/sentinel encoding vs. the object-dtype path; exits non-zero
# if a kernel microbenchmark falls below 2x or the q1-like hot path
# materialises an object-dtype column
bench-encoding:
	$(PYTHON) -m repro.bench.encoding --scale 0.3 \
		--out benchmarks/results/BENCH_encoding.json

# WAL write-path overhead + recovery-time curve; exits non-zero if a
# recovered database diverges from a clean load or buffered-WAL ingest
# p99 regresses more than 10% over memory-only
bench-recovery:
	$(PYTHON) -m repro.bench.recovery \
		--out benchmarks/results/BENCH_recovery.json

# closed-loop serving benchmark against a live query server; exits non-zero
# if sustained QPS is zero, any response frame fails schema validation, or
# the warm-started server recompiles a manifest-covered query shape
serve-bench:
	$(PYTHON) -m repro.serve.driver --scale 0.05 --duration 6 --qps 80 \
		--out benchmarks/results/BENCH_serving.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/warehouse_analytics.py
	$(PYTHON) examples/distributed_cluster.py

bench:
	$(PYTHON) -m pytest benchmarks/ -q

lint:
	ruff check .

format-check:
	ruff format --check .
