"""Distributed scenario: TAG-join on a simulated cluster vs the Spark-like engine.

Reproduces the setting of the paper's Section 8.6 at laptop scale: the
TPC-DS-like snowflake workload is evaluated with the TAG graph hash
partitioned over six workers (cross-worker messages are network traffic)
and with the Spark-like shuffle engine over six partitions.  The script
prints aggregate runtime and total network traffic for both, plus the
per-superstep activity of one query to show the BSP execution unfold.

Run with:  python examples/distributed_cluster.py
"""

from repro.bench import default_engines, network_table, run_workload
from repro.bench.reporting import aggregate_runtime_table
from repro.core import TagJoinExecutor
from repro.sql import parse_and_bind
from repro.tag import encode_catalog
from repro.workloads import tpcds_workload

WORKERS = 6
SELECTED = ["q3", "q7", "q15", "q37", "q42", "q69", "q90", "q96"]


def main() -> None:
    workload = tpcds_workload(scale=0.1)
    graph = encode_catalog(workload.catalog)
    print("snowflake database:", workload.catalog)
    print("TAG graph:", graph, f"partitioned over {WORKERS} workers")

    engines = default_engines(
        workload.catalog, graph=graph, num_workers=WORKERS, include=("tag", "spark_like")
    )
    report = run_workload(workload, engines, queries=SELECTED)

    print("\naggregate runtime over", len(SELECTED), "queries (seconds):")
    print(aggregate_runtime_table([report]))
    print("\ntotal network traffic (bytes crossing worker boundaries):")
    print(network_table([report]))

    # drill into one query's superstep-by-superstep behaviour
    executor = TagJoinExecutor(graph, workload.catalog, num_workers=WORKERS)
    spec = parse_and_bind(workload.query("q42").sql, workload.catalog, name="q42")
    result = executor.execute(spec)
    print("\nquery q42 on the cluster:", len(result.rows), "groups,",
          result.metrics.superstep_count, "supersteps")
    print("superstep | active vertices | messages | network bytes")
    for step in result.metrics.supersteps:
        print(f"{step.superstep:9d} | {step.active_vertices:15d} | "
              f"{step.messages_sent:8d} | {step.network_bytes:13d}")


if __name__ == "__main__":
    main()
