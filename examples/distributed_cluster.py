"""Distributed scenario: TAG-join on a simulated cluster vs the Spark-like engine.

Reproduces the setting of the paper's Section 8.6 at laptop scale: one
:class:`repro.Database` configured with six workers serves both the TAG
graph hash-partitioned over six workers (cross-worker messages are network
traffic) and the Spark-like shuffle engine over six partitions.  The
script prints aggregate runtime and total network traffic for both,
cross-engine EXPLAIN output for one query, and the per-superstep activity
of that query to show the BSP execution unfold.

Run with:  python examples/distributed_cluster.py
"""

from repro import Database
from repro.bench import default_engines, network_table, run_workload
from repro.bench.reporting import aggregate_runtime_table
from repro.workloads import tpcds_workload

WORKERS = 6
SELECTED = ["q3", "q7", "q15", "q37", "q42", "q69", "q90", "q96"]
DRILLDOWN = "q42"


def main() -> None:
    workload = tpcds_workload(scale=0.1)
    db = Database.from_catalog(workload.catalog, num_workers=WORKERS)
    graph = db.tag_graph()
    print("snowflake database:", workload.catalog)
    print("TAG graph:", graph, f"partitioned over {WORKERS} workers")

    engines = default_engines(
        workload.catalog, graph=graph, num_workers=WORKERS, include=("tag", "spark_like")
    )
    report = run_workload(workload, engines, queries=SELECTED)

    print("\naggregate runtime over", len(SELECTED), "queries (seconds):")
    print(aggregate_runtime_table([report]))
    print("\ntotal network traffic (bytes crossing worker boundaries):")
    print(network_table([report]))

    # the same query explained by both engines (session.explain is uniform)
    sql = workload.query(DRILLDOWN).sql
    for engine in ("tag", "spark"):
        print(f"\nEXPLAIN on {engine}:")
        print(db.connect(engine=engine).explain(sql, name=DRILLDOWN))

    # drill into the query's superstep-by-superstep behaviour on the cluster
    result = db.connect().sql(sql, name=DRILLDOWN)
    print(f"\nquery {DRILLDOWN} on the cluster:", len(result.rows), "groups,",
          result.metrics.superstep_count, "supersteps")
    print("superstep | active vertices | messages | network bytes")
    for step in result.metrics.supersteps:
        print(f"{step.superstep:9d} | {step.active_vertices:15d} | "
              f"{step.messages_sent:8d} | {step.network_bytes:13d}")


if __name__ == "__main__":
    main()
