"""Data-warehouse scenario: the TPC-H-like workload on every engine.

Generates the TPC-H-like database (the paper's "RDBMS comfort zone":
3NF schema, PK-FK joins), runs a handful of representative queries —
local aggregation, a correlated subquery and the 5-way cycle query — on
the TAG-join executor and on the baseline engines, and prints a small
comparison table like the paper's Table 3.

Run with:  python examples/warehouse_analytics.py
"""

from repro.bench import default_engines, per_query_table, run_workload, speedup_table
from repro.workloads import tpch_workload

SELECTED = ["q3", "q4", "q5", "q6", "q10", "q14", "q17", "q21"]


def main() -> None:
    workload = tpch_workload(scale=0.1)
    print("generated", workload.catalog)
    for name in ("CUSTOMER", "ORDERS", "LINEITEM"):
        print(f"  {name}: {len(workload.catalog.relation(name))} rows")

    engines = default_engines(workload.catalog)
    print("\nrunning", len(SELECTED), "queries on", ", ".join(engines), "...")
    report = run_workload(workload, engines, queries=SELECTED)

    print("\nper-query runtimes (seconds):")
    print(per_query_table(report))

    print("\nTAG-join speedups over the baselines (paper Table 3 style):")
    print(speedup_table(report, "tag", SELECTED))

    failures = report.agreement_failures("rdbms_hash")
    print("\nresult agreement across engines:", "OK" if not failures else failures)


if __name__ == "__main__":
    main()
