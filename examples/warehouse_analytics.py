"""Data-warehouse scenario: the TPC-H-like workload on every registered engine.

Generates the TPC-H-like database (the paper's "RDBMS comfort zone":
3NF schema, PK-FK joins), runs a handful of representative queries —
local aggregation, a correlated subquery and the 5-way cycle query — on
every engine in the registry via the benchmark harness, prints a small
comparison table like the paper's Table 3, and finishes with a prepared
statement executed per market segment to show parameterized plan reuse.

Run with:  python examples/warehouse_analytics.py
"""

from repro import Database, available_engines
from repro.bench import default_engines, per_query_table, run_workload, speedup_table
from repro.workloads import tpch_workload

SELECTED = ["q3", "q4", "q5", "q6", "q10", "q14", "q17", "q21"]

SEGMENT_REVENUE = """
    SELECT o.O_ORDERKEY, SUM(l.L_EXTENDEDPRICE) AS revenue
    FROM CUSTOMER c, ORDERS o, LINEITEM l
    WHERE c.C_MKTSEGMENT = :segment AND c.C_CUSTKEY = o.O_CUSTKEY
      AND l.L_ORDERKEY = o.O_ORDERKEY
    GROUP BY o.O_ORDERKEY
"""


def main() -> None:
    workload = tpch_workload(scale=0.1)
    print("generated", workload.catalog)
    for name in ("CUSTOMER", "ORDERS", "LINEITEM"):
        print(f"  {name}: {len(workload.catalog.relation(name))} rows")

    print("\nregistered engines:")
    for name, description in sorted(available_engines().items()):
        print(f"  {name:16s} {description}")

    engines = default_engines(workload.catalog)
    print("\nrunning", len(SELECTED), "queries on", ", ".join(engines), "...")
    report = run_workload(workload, engines, queries=SELECTED)

    print("\nper-query runtimes (seconds):")
    print(per_query_table(report))

    print("\nTAG-join speedups over the baselines (paper Table 3 style):")
    print(speedup_table(report, "tag", SELECTED))

    failures = report.agreement_failures("rdbms_hash")
    print("\nresult agreement across engines:", "OK" if not failures else failures)

    # one prepared plan serving every market segment (plan-cache warm hits)
    db = Database.from_catalog(workload.catalog)
    with db.connect() as session:
        statement = session.prepare(SEGMENT_REVENUE, name="segment_revenue")
        for segment in ("BUILDING", "AUTOMOBILE", "MACHINERY"):
            result = statement.execute({"segment": segment})
            print(
                f"\nsegment {segment}: {len(result.rows)} orders, "
                f"compile {result.metrics.compile_seconds * 1000:.2f} ms, "
                f"cache hits {result.metrics.plan_cache_hits}"
            )
    print("\nshared plan cache:", db.cache_stats())


if __name__ == "__main__":
    main()
