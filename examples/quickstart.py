"""Quickstart: open a Database over a small catalog and run SQL through a Session.

Builds a tiny NATION / CUSTOMER / ORDERS database, wraps it in the
:class:`repro.Database` facade (which owns the query-independent TAG
encoding, the catalog statistics and one shared plan cache), and runs
plain, parameterized and EXPLAIN'd queries through a session — printing
results alongside the paper's cost measures (supersteps, messages,
per-vertex computation).

Run with:  python examples/quickstart.py
"""

from repro import Catalog, Column, Database, DataType, ForeignKey, Relation, Schema


def build_database() -> Catalog:
    catalog = Catalog("quickstart")
    catalog.add(
        Relation(
            Schema(
                "NATION",
                [Column("N_NATIONKEY", DataType.INT), Column("N_NAME", DataType.STRING)],
                primary_key=["N_NATIONKEY"],
            ),
            [[1, "USA"], [2, "FRANCE"], [3, "JAPAN"]],
        )
    )
    catalog.add(
        Relation(
            Schema(
                "CUSTOMER",
                [
                    Column("C_CUSTKEY", DataType.INT),
                    Column("C_NAME", DataType.STRING),
                    Column("C_NATIONKEY", DataType.INT),
                ],
                primary_key=["C_CUSTKEY"],
                foreign_keys=[ForeignKey(("C_NATIONKEY",), "NATION", ("N_NATIONKEY",))],
            ),
            [[10, "Ada", 1], [11, "Bob", 1], [12, "Cleo", 2], [13, "Dai", 3]],
        )
    )
    catalog.add(
        Relation(
            Schema(
                "ORDERS",
                [
                    Column("O_ORDERKEY", DataType.INT),
                    Column("O_CUSTKEY", DataType.INT),
                    Column("O_TOTAL", DataType.FLOAT),
                ],
                primary_key=["O_ORDERKEY"],
                foreign_keys=[ForeignKey(("O_CUSTKEY",), "CUSTOMER", ("C_CUSTKEY",))],
            ),
            [[100, 10, 120.0], [101, 10, 80.0], [102, 12, 42.0], [103, 13, 10.0]],
        )
    )
    return catalog


def main() -> None:
    catalog = build_database()
    print("1. relational catalog:", catalog)

    # the Database owns the TAG encoding (built once, query-independently,
    # paper Section 3), the statistics and a shared plan cache
    db = Database.from_catalog(catalog)
    print("2. database:", db)

    with db.connect() as session:
        print("\n3. a join with local aggregation (revenue per nation):")
        result = session.sql(
            """
            SELECT n.N_NAME AS nation, SUM(o.O_TOTAL) AS revenue, COUNT(*) AS orders
            FROM NATION n, CUSTOMER c, ORDERS o
            WHERE n.N_NATIONKEY = c.C_NATIONKEY AND c.C_CUSTKEY = o.O_CUSTKEY
            GROUP BY n.N_NAME
            """
        )
        for row in sorted(result.rows, key=lambda r: r["nation"]):
            print("   ", row)
        print("   cost:", result.metrics.summary())

        print("\n4. a prepared statement: one plan, many parameter values:")
        statement = session.prepare(
            "SELECT c.C_NAME FROM CUSTOMER c, ORDERS o "
            "WHERE c.C_CUSTKEY = o.O_CUSTKEY AND o.O_TOTAL > :floor"
        )
        for floor in (50.0, 100.0):
            names = sorted(row["C_NAME"] for row in statement.execute({"floor": floor}).rows)
            print(f"   orders above {floor:6.1f}: {names}")
        print("   shared plan cache:", db.cache_stats())

        print("\n5. EXPLAIN (the chosen rooted join tree + cost breakdown):")
        print(session.explain(statement.sql, params={"floor": 50.0}))

        print("\n6. the same query on the RDBMS baseline engine:")
        rdbms = db.connect(engine="rdbms")
        result = rdbms.sql(
            """
            SELECT c.C_NAME
            FROM CUSTOMER c
            WHERE NOT EXISTS (SELECT o.O_ORDERKEY FROM ORDERS o
                              WHERE o.O_CUSTKEY = c.C_CUSTKEY AND o.O_TOTAL < 50)
              AND EXISTS (SELECT o2.O_ORDERKEY FROM ORDERS o2 WHERE o2.O_CUSTKEY = c.C_CUSTKEY)
            """
        )
        print("   ", sorted(row["C_NAME"] for row in result.rows))


if __name__ == "__main__":
    main()
