"""Quickstart: encode a small relational database as a TAG graph and run SQL on it.

Builds a tiny NATION / CUSTOMER / ORDERS database, encodes it once
(query-independently) into a Tuple-Attribute Graph, and evaluates SQL
queries with the vertex-centric TAG-join executor — printing the results
alongside the paper's cost measures (supersteps, messages, per-vertex
computation).

Run with:  python examples/quickstart.py
"""

from repro import Catalog, Column, DataType, ForeignKey, Relation, Schema, TagJoinExecutor, encode_catalog


def build_database() -> Catalog:
    catalog = Catalog("quickstart")
    catalog.add(
        Relation(
            Schema(
                "NATION",
                [Column("N_NATIONKEY", DataType.INT), Column("N_NAME", DataType.STRING)],
                primary_key=["N_NATIONKEY"],
            ),
            [[1, "USA"], [2, "FRANCE"], [3, "JAPAN"]],
        )
    )
    catalog.add(
        Relation(
            Schema(
                "CUSTOMER",
                [
                    Column("C_CUSTKEY", DataType.INT),
                    Column("C_NAME", DataType.STRING),
                    Column("C_NATIONKEY", DataType.INT),
                ],
                primary_key=["C_CUSTKEY"],
                foreign_keys=[ForeignKey(("C_NATIONKEY",), "NATION", ("N_NATIONKEY",))],
            ),
            [[10, "Ada", 1], [11, "Bob", 1], [12, "Cleo", 2], [13, "Dai", 3]],
        )
    )
    catalog.add(
        Relation(
            Schema(
                "ORDERS",
                [
                    Column("O_ORDERKEY", DataType.INT),
                    Column("O_CUSTKEY", DataType.INT),
                    Column("O_TOTAL", DataType.FLOAT),
                ],
                primary_key=["O_ORDERKEY"],
                foreign_keys=[ForeignKey(("O_CUSTKEY",), "CUSTOMER", ("C_CUSTKEY",))],
            ),
            [[100, 10, 120.0], [101, 10, 80.0], [102, 12, 42.0], [103, 13, 10.0]],
        )
    )
    return catalog


def main() -> None:
    catalog = build_database()
    print("1. relational catalog:", catalog)

    # the TAG encoding is query independent and built once (paper Section 3)
    graph = encode_catalog(catalog)
    print("2. TAG graph:", graph)
    print(
        "   tuple vertices:", graph.load_report.tuple_vertices,
        "| attribute vertices:", graph.load_report.attribute_vertices,
        "| edges:", graph.edge_count,
    )

    executor = TagJoinExecutor(graph, catalog)

    print("\n3. a join with local aggregation (revenue per nation):")
    result = executor.execute_sql(
        """
        SELECT n.N_NAME AS nation, SUM(o.O_TOTAL) AS revenue, COUNT(*) AS orders
        FROM NATION n, CUSTOMER c, ORDERS o
        WHERE n.N_NATIONKEY = c.C_NATIONKEY AND c.C_CUSTKEY = o.O_CUSTKEY
        GROUP BY n.N_NAME
        """
    )
    for row in sorted(result.rows, key=lambda r: r["nation"]):
        print("   ", row)
    print("   cost:", result.metrics.summary())

    print("\n4. a correlated subquery (customers whose every order is above 50):")
    result = executor.execute_sql(
        """
        SELECT c.C_NAME
        FROM CUSTOMER c
        WHERE NOT EXISTS (SELECT o.O_ORDERKEY FROM ORDERS o
                          WHERE o.O_CUSTKEY = c.C_CUSTKEY AND o.O_TOTAL < 50)
          AND EXISTS (SELECT o2.O_ORDERKEY FROM ORDERS o2 WHERE o2.O_CUSTKEY = c.C_CUSTKEY)
        """
    )
    print("   ", sorted(row["C_NAME"] for row in result.rows))


if __name__ == "__main__":
    main()
