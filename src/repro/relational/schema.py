"""Relation schemas, primary keys and foreign keys.

The snowflake / 3NF structure of the TPC benchmarks is what makes
PK-FK joins "the comfort zone" of RDBMSs (paper Section 1); schemas here
carry enough key metadata for the planner, the index builder and the
TAG encoder to recognise PK-FK joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .types import DataType


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown attribute references."""


@dataclass(frozen=True)
class Column:
    """A named, typed attribute of a relation.

    Attributes:
        name: attribute name, unique within its schema.
        dtype: value domain.
        nullable: whether SQL NULL is allowed (TPC-DS allows NULLs in every
            non-key column; TPC-H does not).
        materialise: whether the TAG encoder should create attribute
            vertices for this column.  Defaults to the domain's policy but
            can be overridden per column (e.g. comment strings).
    """

    name: str
    dtype: DataType
    nullable: bool = True
    materialise: Optional[bool] = None

    @property
    def materialise_as_vertex(self) -> bool:
        if self.materialise is not None:
            return self.materialise
        return self.dtype.is_materialisable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name}:{self.dtype.value})"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint ``columns -> referenced_table.referenced_columns``."""

    columns: Tuple[str, ...]
    referenced_table: str
    referenced_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.referenced_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.columns} vs {self.referenced_columns}"
            )


class Schema:
    """Ordered collection of :class:`Column` plus key constraints."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise SchemaError(
                    f"duplicate column {column.name!r} in relation {name!r}"
                )
            self._index[column.name] = position
        for key_column in primary_key:
            if key_column not in self._index:
                raise SchemaError(
                    f"primary key column {key_column!r} not in relation {name!r}"
                )
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        for fk in foreign_keys:
            for fk_column in fk.columns:
                if fk_column not in self._index:
                    raise SchemaError(
                        f"foreign key column {fk_column!r} not in relation {name!r}"
                    )
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._index

    def __iter__(self):
        return iter(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {name!r}"
            ) from None

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {name!r}"
            ) from None

    def dtype(self, name: str) -> DataType:
        return self.column(name).dtype

    def is_primary_key(self, column_name: str) -> bool:
        """Whether ``column_name`` is the (single-attribute) primary key."""
        return self.primary_key == (column_name,)

    def foreign_key_for(self, column_name: str) -> Optional[ForeignKey]:
        """Return the FK constraint whose first column is ``column_name``."""
        for fk in self.foreign_keys:
            if fk.columns[0] == column_name:
                return fk
        return None

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def project(self, column_names: Iterable[str], name: Optional[str] = None) -> "Schema":
        """Schema of the projection on ``column_names`` (order preserved as given)."""
        columns = [self.column(column_name) for column_name in column_names]
        return Schema(name or self.name, columns)

    def rename(self, name: str) -> "Schema":
        return Schema(name, self.columns, self.primary_key, self.foreign_keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self.columns)
        return f"Schema({self.name}: {cols})"


@dataclass
class SchemaGraph:
    """The PK-FK reference graph over a set of schemas.

    Used by the planner to pick join orders and by the workload generators
    to validate referential integrity.  Nodes are relation names, edges are
    (referencing, referenced) pairs labelled with the FK.
    """

    schemas: Dict[str, Schema] = field(default_factory=dict)

    def add(self, schema: Schema) -> None:
        self.schemas[schema.name] = schema

    def references(self) -> List[Tuple[str, str, ForeignKey]]:
        edges = []
        for schema in self.schemas.values():
            for fk in schema.foreign_keys:
                edges.append((schema.name, fk.referenced_table, fk))
        return edges

    def is_pk_fk_join(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> bool:
        """Whether joining ``left.column = right.column`` is a PK-FK join.

        True if either side's column is that relation's primary key and the
        other side declares a matching foreign key (or simply joins on the
        PK, which bounds the join output by the FK side — the property used
        in the paper's Section 6.1.1 analysis).
        """
        left = self.schemas.get(left_table)
        right = self.schemas.get(right_table)
        if left is None or right is None:
            return False
        return left.is_primary_key(left_column) or right.is_primary_key(right_column)
