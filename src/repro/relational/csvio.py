"""CSV import/export for relations and catalogs.

The TPC tools emit ``|``-separated flat files; the loaders here accept any
delimiter and coerce values through the schema, mirroring the "bulk data
load" step measured in Tables 1 and 2 of the paper.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, Optional

from .catalog import Catalog
from .relation import Relation
from .schema import Schema
from .types import NULL


def write_relation_csv(relation: Relation, path: str, delimiter: str = ",") -> None:
    """Write a relation to ``path`` with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.schema.column_names)
        for row in relation:
            writer.writerow(["" if value is NULL else _format(value) for value in row])


def read_relation_csv(
    schema: Schema, path: str, delimiter: str = ",", has_header: bool = True
) -> Relation:
    """Load a relation from ``path`` using ``schema`` for name/type coercion."""
    relation = Relation(schema)
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = iter(reader)
        if has_header:
            next(rows, None)
        for raw in rows:
            if not raw:
                continue
            values = [NULL if cell == "" else cell for cell in raw]
            relation.insert(values)
    return relation


def write_catalog_csv(catalog: Catalog, directory: str, delimiter: str = ",") -> Dict[str, str]:
    """Dump every relation of ``catalog`` as ``<directory>/<name>.csv``."""
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for relation in catalog:
        path = os.path.join(directory, f"{relation.name}.csv")
        write_relation_csv(relation, path, delimiter)
        paths[relation.name] = path
    return paths


def read_catalog_csv(
    schemas: Iterable[Schema],
    directory: str,
    delimiter: str = ",",
    name: Optional[str] = None,
) -> Catalog:
    """Load a catalog whose relations live as ``<directory>/<name>.csv``."""
    catalog = Catalog(name or os.path.basename(directory.rstrip("/")) or "db")
    for schema in schemas:
        path = os.path.join(directory, f"{schema.name}.csv")
        catalog.add(read_relation_csv(schema, path, delimiter))
    return catalog


def _format(value) -> str:
    return value.isoformat() if hasattr(value, "isoformat") else str(value)
