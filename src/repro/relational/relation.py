"""In-memory relations (bags of tuples).

Relations are stored row-oriented as tuples of Python values, with the
schema describing names/types.  Duplicates are allowed (bag semantics) —
the TAG encoding gives each duplicate occurrence its own tuple vertex
(paper Section 3, step 1).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..storage.columns import RelationEncodedStore
from .schema import Column, Schema, SchemaError
from .types import NULL, DataType, coerce, infer_type, value_size_bytes

Row = Tuple[Any, ...]


class Relation:
    """A named bag of tuples conforming to a :class:`Schema`.

    The row list stays the *decoded* public surface (the rdbms/spark
    engines, CSV round-trips and FK validation all read plain values);
    once the relation joins a catalog it additionally maintains a
    columnar encoded store (:class:`~repro.storage.columns.RelationEncodedStore`)
    appended to in lockstep by :meth:`insert`, which supplies int32 code
    columns, exact NDV and encoded byte accounting.
    """

    def __init__(self, schema: Schema, rows: Optional[Iterable[Sequence[Any]]] = None) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        # tombstoned physical positions: a delete marks, it never shifts.
        # Physical positions are the coordinate system shared with the TAG
        # graph (tuple vertex index = position + 1) and the RDBMS indexes,
        # so they must stay stable across deletes.
        self._deleted: set = set()
        # memoized per-column statistics (distinct sets, value frequencies);
        # every mutation clears the cache, so repeated planner passes over an
        # unchanged catalog stop rescanning the row store
        self._stats_cache: Dict[Tuple[str, str], Any] = {}
        self._mutations = 0
        # bound by Catalog.add: the encoded columnar backing
        self._encoded: Optional[RelationEncodedStore] = None
        if rows is not None:
            for row in rows:
                self.insert(row)

    def bind_encoding(self, encoding: Any) -> None:
        """Attach (or re-attach) the catalog's encoded column store.

        Called by :meth:`repro.relational.catalog.Catalog.add`; backfills
        codes for any rows inserted before the relation joined the catalog.
        """
        codec = encoding.codec_for(self.schema)
        store = RelationEncodedStore(self.schema, codec)
        store.rebuild(self._rows)
        for position in self._deleted:
            store.delete_row(position, self._rows[position])
        self._encoded = store

    @property
    def encoded_store(self) -> Optional[RelationEncodedStore]:
        """The columnar encoded backing, once bound to a catalog."""
        return self._encoded

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, name: str, records: Sequence[Dict[str, Any]], schema: Optional[Schema] = None
    ) -> "Relation":
        """Build a relation from a list of dicts, inferring the schema if needed."""
        if schema is None:
            if not records:
                raise SchemaError("cannot infer schema from an empty record list")
            first = records[0]
            columns = []
            for column_name, value in first.items():
                dtype = infer_type(value) if value is not NULL else DataType.STRING
                columns.append(Column(column_name, dtype))
            schema = Schema(name, columns)
        relation = cls(schema)
        for record in records:
            relation.insert([record.get(column.name, NULL) for column in schema.columns])
        return relation

    @classmethod
    def from_columns(cls, name: str, columns: Dict[str, Sequence[Any]]) -> "Relation":
        """Build a relation from parallel column value lists."""
        names = list(columns)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError("column value lists must have equal length")
        schema_columns = []
        for column_name in names:
            values = columns[column_name]
            sample = next((v for v in values if v is not NULL), NULL)
            dtype = infer_type(sample) if sample is not NULL else DataType.STRING
            schema_columns.append(Column(column_name, dtype))
        schema = Schema(name, schema_columns)
        relation = cls(schema)
        count = lengths.pop() if lengths else 0
        for i in range(count):
            relation.insert([columns[column_name][i] for column_name in names])
        return relation

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def validate_row(self, row: Sequence[Any]) -> Row:
        """Coerce one tuple to the schema's domains without inserting it.

        Raises :class:`~repro.relational.schema.SchemaError` exactly where
        :meth:`insert` would.  The durable write path validates *before*
        logging to the write-ahead log, so a logged delta can never fail
        to replay during recovery.
        """
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match schema "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        coerced = tuple(
            coerce(value, column.dtype)
            for value, column in zip(row, self.schema.columns)
        )
        for value, column in zip(coerced, self.schema.columns):
            if value is NULL and not column.nullable:
                raise SchemaError(
                    f"NULL in non-nullable column {self.schema.name}.{column.name}"
                )
        return coerced

    def validate_rows(self, rows: Iterable[Sequence[Any]]) -> List[Row]:
        """Coerce every tuple (all-or-nothing); returns the coerced rows."""
        return [self.validate_row(row) for row in rows]

    def insert(self, row: Sequence[Any]) -> None:
        """Insert one tuple, coercing values to the schema's domains."""
        coerced = self.validate_row(row)
        self._rows.append(coerced)
        if self._encoded is not None:
            self._encoded.append_row(coerced)
        self._note_mutation()

    def insert_dict(self, record: Dict[str, Any]) -> None:
        self.insert([record.get(column.name, NULL) for column in self.schema.columns])

    def extend(self, rows: Iterable[Sequence[Any]], validated: bool = False) -> None:
        """Insert many tuples; ``validated=True`` skips re-coercion.

        The durable write path validates rows *before* logging them to the
        WAL (a logged delta must never fail to replay), so re-validating on
        apply would double the coercion cost of every ingest batch.  Only
        pass ``validated=True`` for rows that came out of
        :meth:`validate_rows` unmodified.
        """
        if not validated:
            for row in rows:
                self.insert(row)
            return
        for coerced in rows:
            self._rows.append(coerced)
            if self._encoded is not None:
                self._encoded.append_row(coerced)
        self._note_mutation()

    def truncate(self, count: int) -> int:
        """Drop every row past *physical* position ``count``; return the
        number of physical rows removed.

        This is the write path's rollback primitive: a load that fails
        mid-apply restores the relation to its pre-write physical length so
        a retry of the same logical write cannot double-append.  Appends
        always land past every tombstone, so truncating to a pre-write
        physical count never touches the tombstone set.
        """
        removed = len(self._rows) - count
        if removed <= 0:
            return 0
        del self._rows[count:]
        self._deleted = {p for p in self._deleted if p < count}
        if self._encoded is not None:
            self._rebuild_encoded()
        self._note_mutation()
        return removed

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete all live rows satisfying ``predicate``; return the number removed.

        This is the scorched-earth deletion path: it compacts the physical
        row list (dropping tombstones along the way), so physical positions
        shift and every position-keyed derived structure must be rebuilt.
        Callers follow up with ``catalog.note_data_change()``.  The delta
        path is :meth:`delete_positions`.
        """
        before = len(self)
        had_tombstones = bool(self._deleted)
        self._rows = [row for _pos, row in self.live_items() if not predicate(row)]
        self._deleted = set()
        removed = before - len(self._rows)
        if self._encoded is not None and (removed or had_tombstones):
            self._encoded.rebuild(self._rows)
        self._note_mutation()
        return removed

    # ------------------------------------------------------------------
    # tombstone deletes (the delta path: positions stay stable)
    # ------------------------------------------------------------------
    def delete_positions(self, positions: Sequence[int]) -> List[Row]:
        """Tombstone the given live physical positions; returns their rows.

        Physical positions never shift — the row slots stay in ``_rows``
        and are merely excluded from iteration/length/statistics — so the
        TAG graph's tuple vertex indexes and the RDBMS indexes' stored
        positions remain valid for every surviving row.
        """
        deleted: List[Row] = []
        for position in positions:
            if not (0 <= position < len(self._rows)):
                raise IndexError(
                    f"{self.schema.name}: physical position {position} out of range"
                )
            if position in self._deleted:
                raise ValueError(
                    f"{self.schema.name}: position {position} is already deleted"
                )
        for position in positions:
            row = self._rows[position]
            self._deleted.add(position)
            if self._encoded is not None:
                self._encoded.delete_row(position, row)
            deleted.append(row)
        self._note_mutation()
        return deleted

    def restore_positions(self, positions: Sequence[int]) -> int:
        """Undo :meth:`delete_positions` (the delete path's rollback)."""
        restored = 0
        for position in positions:
            if position in self._deleted:
                self._deleted.discard(position)
                if self._encoded is not None:
                    self._encoded.restore_row(position, self._rows[position])
                restored += 1
        self._note_mutation()
        return restored

    def is_live(self, position: int) -> bool:
        return 0 <= position < len(self._rows) and position not in self._deleted

    @property
    def has_deletes(self) -> bool:
        return bool(self._deleted)

    @property
    def physical_count(self) -> int:
        """Number of physical row slots (live rows + tombstones)."""
        return len(self._rows)

    def live_items(self) -> Iterator[Tuple[int, Row]]:
        """Yield ``(physical_position, row)`` for every live row, in order."""
        deleted = self._deleted
        if not deleted:
            return iter(enumerate(self._rows))
        return (
            (position, row)
            for position, row in enumerate(self._rows)
            if position not in deleted
        )

    def find_positions(self, predicate: Callable[[Row], bool]) -> List[int]:
        """Physical positions of every live row satisfying ``predicate``."""
        return [position for position, row in self.live_items() if predicate(row)]

    def rows_since(self, physical_position: int) -> List[Row]:
        """The rows appended at/after a physical position (all live: appends
        land past every tombstone, so a fresh suffix never contains one)."""
        return list(self._rows[physical_position:])

    def match_positions(self, rows: Iterable[Sequence[Any]]) -> List[int]:
        """First-match physical positions for the given row values (bag
        semantics: each requested occurrence consumes one live row).

        Used by delete-by-value resolution and WAL ``delete`` replay — the
        log records row *values* (positions don't survive snapshot
        compaction), and replay must remove exactly one live occurrence
        per logged row.  Raises :class:`KeyError` when a row has no
        remaining live match.
        """
        pool: Dict[Row, List[int]] = {}
        for position, row in self.live_items():
            pool.setdefault(row, []).append(position)
        matched: List[int] = []
        for raw in rows:
            key = self.validate_row(raw)
            candidates = pool.get(key)
            if not candidates:
                raise KeyError(
                    f"{self.schema.name}: no live row matches {tuple(raw)!r}"
                )
            matched.append(candidates.pop(0))
        return matched

    def _note_mutation(self) -> None:
        self._mutations += 1
        if self._stats_cache:
            self._stats_cache.clear()

    def _rebuild_encoded(self) -> None:
        assert self._encoded is not None
        self._encoded.rebuild(self._rows)
        for position in self._deleted:
            self._encoded.delete_row(position, self._rows[position])

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> List[Row]:
        """The live row list.  Mutate through :meth:`insert` /
        :meth:`extend` / :meth:`delete_where`, which keep the memoized
        statistics fresh.  Direct count-changing edits (append/pop) are
        caught by a row-count guard, but same-count in-place replacement
        through this list bypasses both schema coercion and statistics
        invalidation — don't.  Once the relation carries tombstones the
        property returns a fresh live-only list (positions in it are
        *live ordinals*, not physical positions — use :meth:`live_items`
        or :meth:`__getitem__` for physical addressing)."""
        if not self._deleted:
            return self._rows
        return [row for _pos, row in self.live_items()]

    def __len__(self) -> int:
        return len(self._rows) - len(self._deleted)

    def __iter__(self) -> Iterator[Row]:
        if not self._deleted:
            return iter(self._rows)
        return (row for _pos, row in self.live_items())

    def __getitem__(self, index: int) -> Row:
        """Physical addressing: tombstoned slots remain reachable here (the
        RDBMS index scan resolves positions it stored before any delete)."""
        return self._rows[index]

    def column_values(self, column_name: str) -> List[Any]:
        position = self.schema.position(column_name)
        return [row[position] for row in self]

    def distinct_values(self, column_name: str) -> set:
        return set(self._distinct_frozen(column_name))

    def _cached_stat(self, key: Tuple[str, str], compute: Callable[[], Any]) -> Any:
        """Memoize one statistic, guarded against out-of-band row mutation.

        Mutations are expected to go through :meth:`insert` / :meth:`extend`
        / :meth:`delete_where` (which clear the cache eagerly), but the
        :attr:`rows` property hands out the live row list; entries therefore
        remember the mutation counter and physical row count they were
        computed at and self-invalidate when either no longer matches.
        The count guard catches count-changing edits (append/pop) through
        the property; the mutation counter additionally catches a delete
        followed by an equal-sized insert.  Same-count in-place row
        replacement is outside the guard and outside the API contract.
        """
        stamp = (self._mutations, len(self._rows))
        cached = self._stats_cache.get(key)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        value = compute()
        self._stats_cache[key] = (stamp, value)
        return value

    def _distinct_frozen(self, column_name: str) -> frozenset:
        """Memoized distinct non-NULL values (immutable master copy)."""
        position = self.schema.position(column_name)
        return self._cached_stat(
            ("distinct", column_name),
            lambda: frozenset(
                row[position] for row in self if row[position] is not NULL
            ),
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self]

    def sample(self, k: int, seed: int = 0) -> "Relation":
        rng = random.Random(seed)
        live = self.rows
        k = min(k, len(live))
        sampled = Relation(self.schema)
        sampled._rows = rng.sample(live, k)
        return sampled

    # ------------------------------------------------------------------
    # statistics (used by the planner and the Fig. 14 size accounting)
    # ------------------------------------------------------------------
    def cardinality(self) -> int:
        return len(self)

    def distinct_count(self, column_name: str) -> int:
        if self._encoded is not None:
            # exact and free: one distinct-code set per encoded column
            ndv = self._encoded.ndv(column_name)
            if ndv is not None:
                return ndv
        return len(self._distinct_frozen(column_name))

    def data_size_bytes(self) -> int:
        """Base-table footprint in bytes (no indexes).

        Catalog-bound relations report *encoded* sizes — 4 bytes per
        string/date slot plus the amortised dictionary growth — so the
        planner's cost inputs match the representation the hot path
        actually scans.  Unbound relations keep the legacy object-size
        estimate.
        """
        if self._encoded is not None:
            return self._encoded.total_bytes
        total = 0
        for row in self:
            for value, column in zip(row, self.schema.columns):
                total += value_size_bytes(value, column.dtype)
        return total

    def value_frequencies(self, column_name: str) -> Dict[Any, int]:
        def compute() -> Dict[Any, int]:
            position = self.schema.position(column_name)
            frequencies: Dict[Any, int] = {}
            for row in self:
                value = row[position]
                if value is NULL:
                    continue
                frequencies[value] = frequencies.get(value, 0) + 1
            return frequencies

        # hand out a copy: callers historically received a fresh dict they
        # may mutate, and the memoized master must stay pristine
        return dict(self._cached_stat(("frequencies", column_name), compute))

    # ------------------------------------------------------------------
    # equality helpers for tests
    # ------------------------------------------------------------------
    def as_multiset(self) -> Dict[Row, int]:
        """Bag of rows -> multiplicity; used to compare results order-insensitively."""
        bag: Dict[Row, int] = {}
        for row in self:
            bag[row] = bag.get(row, 0) + 1
        return bag

    def same_bag(self, other: "Relation") -> bool:
        return self.as_multiset() == other.as_multiset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name}, {len(self)} rows)"


def rows_to_multiset(rows: Iterable[Sequence[Any]]) -> Dict[Tuple[Any, ...], int]:
    """Order-insensitive bag view of an arbitrary row iterable (test helper)."""
    bag: Dict[Tuple[Any, ...], int] = {}
    for row in rows:
        key = tuple(row)
        bag[key] = bag.get(key, 0) + 1
    return bag
