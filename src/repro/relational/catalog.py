"""The catalog: a named collection of relations (a database instance)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..storage.encoding import CatalogEncoding
from .relation import Relation
from .schema import Schema, SchemaGraph


class CatalogError(KeyError):
    """Raised when a relation is missing from (or duplicated in) the catalog."""


class Catalog:
    """A relational database instance: relation name -> :class:`Relation`.

    The catalog is the unit loaded into every engine in the reproduction:
    the iterator engine builds indexes over it, the distributed engine
    partitions it, and the TAG encoder turns it into a graph.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._relations: Dict[str, Relation] = {}
        self._version = 0
        self._schema_version = 0
        self._data_version = 0
        # catalog-global dictionary + codecs: one encoding shared by every
        # relation so code equality coincides with value equality across
        # the whole catalog (TAG attribute vertices are shared likewise)
        self.encoding = CatalogEncoding()

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add(self, relation: Relation, replace: bool = False) -> None:
        if relation.name in self._relations and not replace:
            raise CatalogError(f"relation {relation.name!r} already in catalog")
        relation.bind_encoding(self.encoding)
        self._relations[relation.name] = relation
        self._version += 1
        self._schema_version += 1

    def create(self, schema: Schema) -> Relation:
        """Create and register an empty relation with the given schema."""
        relation = Relation(schema)
        self.add(relation)
        return relation

    def drop(self, relation_name: str) -> None:
        if relation_name not in self._relations:
            raise CatalogError(f"relation {relation_name!r} not in catalog")
        del self._relations[relation_name]
        self._version += 1
        self._schema_version += 1

    # ------------------------------------------------------------------
    # change tracking (consumed by plan caches and statistics stores)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by *any* change, schema or data.

        The combined counter: it moves whenever :attr:`schema_version` or
        :attr:`data_version` moves, so state keyed on ``version`` (result
        caches, the lazily re-encoded TAG graph) invalidates on every kind
        of change.  State that only depends on the set of schemas — above
        all compiled plan fragments — keys on :attr:`schema_version`
        instead and survives data-only writes.

        Direct mutation of a relation's rows does not pass through the
        catalog; callers doing bulk loads into registered relations should
        call :meth:`note_data_change` so dependent caches invalidate.
        """
        return self._version

    @property
    def schema_version(self) -> int:
        """Counter bumped only when the set of relations/schemas changes."""
        return self._schema_version

    @property
    def data_version(self) -> int:
        """Counter bumped only by data mutations (loads, deletes)."""
        return self._data_version

    def note_data_change(self) -> None:
        """Record an out-of-band data mutation (bulk insert/delete)."""
        self._version += 1
        self._data_version += 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def relation(self, relation_name: str) -> Relation:
        try:
            return self._relations[relation_name]
        except KeyError:
            raise CatalogError(f"relation {relation_name!r} not in catalog") from None

    def schema(self, relation_name: str) -> Schema:
        return self.relation(relation_name).schema

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> List[str]:
        return list(self._relations)

    def relations(self) -> List[Relation]:
        return list(self._relations.values())

    def schema_fingerprint(self) -> str:
        """Content hash of every schema: names, columns, types, keys.

        Unlike :attr:`schema_version` (a process-local counter), the
        fingerprint is stable across processes for identical schemas, so
        persisted plan manifests can match a restarted catalog even when
        its data (and therefore its row counts) changed in between.
        Memoized per schema version — data writes never recompute it.
        """
        import hashlib

        cached = getattr(self, "_schema_fingerprint_cache", None)
        if cached is not None and cached[0] == self._schema_version:
            return cached[1]
        parts = []
        for name in sorted(self._relations):
            schema = self._relations[name].schema
            columns = ";".join(
                f"{column.name}:{column.dtype.value}:{int(column.nullable)}"
                for column in schema.columns
            )
            keys = ",".join(schema.primary_key)
            fks = ";".join(
                f"{','.join(fk.columns)}->{fk.referenced_table}({','.join(fk.referenced_columns)})"
                for fk in schema.foreign_keys
            )
            parts.append(f"{name}|{columns}|pk:{keys}|fk:{fks}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        self._schema_fingerprint_cache = (self._schema_version, digest)
        return digest

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def schema_graph(self) -> SchemaGraph:
        graph = SchemaGraph()
        for relation in self._relations.values():
            graph.add(relation.schema)
        return graph

    def total_rows(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def total_data_size_bytes(self) -> int:
        return sum(relation.data_size_bytes() for relation in self._relations.values())

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-relation cardinality and byte-size summary."""
        return {
            name: {
                "rows": relation.cardinality(),
                "bytes": relation.data_size_bytes(),
                "columns": relation.schema.arity,
            }
            for name, relation in self._relations.items()
        }

    def validate_foreign_keys(self) -> List[str]:
        """Check referential integrity; return a list of violation messages.

        The workload generators are required to produce zero violations; the
        tests assert this.
        """
        violations: List[str] = []
        for relation in self._relations.values():
            for fk in relation.schema.foreign_keys:
                if fk.referenced_table not in self._relations:
                    violations.append(
                        f"{relation.name}: missing referenced table {fk.referenced_table}"
                    )
                    continue
                referenced = self._relations[fk.referenced_table]
                referenced_keys = {
                    tuple(row[referenced.schema.position(c)] for c in fk.referenced_columns)
                    for row in referenced
                }
                positions = [relation.schema.position(c) for c in fk.columns]
                for row in relation:
                    key = tuple(row[p] for p in positions)
                    if any(part is None for part in key):
                        continue
                    if key not in referenced_keys:
                        violations.append(
                            f"{relation.name}.{fk.columns} -> "
                            f"{fk.referenced_table}.{fk.referenced_columns}: "
                            f"dangling key {key}"
                        )
                        break
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog({self.name}, {len(self._relations)} relations, {self.total_rows()} rows)"


def catalog_from_relations(relations: Iterable[Relation], name: str = "db") -> Catalog:
    catalog = Catalog(name)
    for relation in relations:
        catalog.add(relation)
    return catalog
