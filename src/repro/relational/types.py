"""Value domains of the relational model.

The paper's TAG encoding labels every attribute vertex with the
*domain/type* of the value it represents (Section 3, step 2).  This module
defines those domains, value coercion into them, and the notion of
"materialisable" domains: the paper deliberately avoids materialising
attribute vertices for floats and long free-text values because they are
either tricky to compare with equality or never used as join keys
(Section 3, discussion after Example 3.1).
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any, Optional


class DataType(enum.Enum):
    """Domain of an attribute value.

    The members mirror the types used by the TPC benchmarks and are the
    labels attached to TAG attribute vertices.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"
    TEXT = "text"  # long free-form strings (comments); never a join key

    @property
    def is_materialisable(self) -> bool:
        """Whether attribute vertices should be created for this domain.

        Floats are excluded because equality on floats is unreliable as a
        join condition; TEXT is excluded because comments/descriptions are
        never join keys.  Both follow the paper's loading policy
        (Section 8.2).
        """
        return self not in (DataType.FLOAT, DataType.TEXT)

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.DATE: _dt.date,
    DataType.BOOL: bool,
    DataType.TEXT: str,
}

#: Sentinel used for SQL NULL.  ``None`` is used directly; this alias makes
#: intent explicit at call sites.
NULL = None


class TypeError_(TypeError):
    """Raised when a value cannot be coerced into a :class:`DataType`."""


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` into the Python representation of ``dtype``.

    ``None`` (SQL NULL) passes through unchanged.  Dates accept ISO-format
    strings and ``datetime.date``/``datetime.datetime`` instances.

    Raises:
        TypeError_: if the value cannot be represented in the domain.
    """
    if value is NULL:
        return NULL
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if dtype is DataType.FLOAT:
            return float(value)
        if dtype in (DataType.STRING, DataType.TEXT):
            return str(value)
        if dtype is DataType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise TypeError_(f"cannot parse boolean from {value!r}")
            return bool(value)
        if dtype is DataType.DATE:
            return coerce_date(value)
    except TypeError_:
        raise
    except (ValueError, TypeError) as exc:
        raise TypeError_(f"cannot coerce {value!r} to {dtype.value}") from exc
    raise TypeError_(f"unknown data type {dtype!r}")


def coerce_date(value: Any) -> _dt.date:
    """Coerce ``value`` to a ``datetime.date``.

    Accepts ``date``, ``datetime`` (truncated) and ISO ``YYYY-MM-DD``
    strings.
    """
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        return _dt.date.fromisoformat(value.strip())
    if isinstance(value, int):
        # days-since-epoch convenience used by the synthetic generators
        return _dt.date(1970, 1, 1) + _dt.timedelta(days=value)
    raise TypeError_(f"cannot coerce {value!r} to date")


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    Used by the CSV loader and by ad-hoc relation construction in tests.
    """
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, (_dt.date, _dt.datetime)):
        return DataType.DATE
    if isinstance(value, str):
        return DataType.STRING
    raise TypeError_(f"cannot infer relational type of {value!r}")


def value_size_bytes(value: Any, dtype: Optional[DataType] = None) -> int:
    """Approximate storage footprint of a value in bytes.

    This is the accounting used to reproduce Figure 14 (loaded data sizes):
    fixed 8 bytes for numerics and dates, string length for character data,
    1 byte for booleans and 1 byte for NULLs (null bitmap entry).
    """
    if value is NULL:
        return 1
    if dtype is None:
        dtype = infer_type(value)
    if dtype in (DataType.INT, DataType.FLOAT, DataType.DATE):
        return 8
    if dtype is DataType.BOOL:
        return 1
    return len(str(value))


def comparable(left: Any, right: Any) -> bool:
    """Whether two non-null values belong to mutually comparable domains."""
    if left is NULL or right is NULL:
        return False
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return type(left) is type(right)
