"""Relational substrate: types, schemas, relations, catalogs and CSV I/O."""

from .catalog import Catalog, CatalogError, catalog_from_relations
from .csvio import (
    read_catalog_csv,
    read_relation_csv,
    write_catalog_csv,
    write_relation_csv,
)
from .relation import Relation, Row, rows_to_multiset
from .schema import Column, ForeignKey, Schema, SchemaError, SchemaGraph
from .types import NULL, DataType, coerce, coerce_date, infer_type, value_size_bytes

__all__ = [
    "Catalog",
    "CatalogError",
    "catalog_from_relations",
    "Column",
    "DataType",
    "ForeignKey",
    "NULL",
    "Relation",
    "Row",
    "Schema",
    "SchemaError",
    "SchemaGraph",
    "coerce",
    "coerce_date",
    "infer_type",
    "read_catalog_csv",
    "read_relation_csv",
    "rows_to_multiset",
    "value_size_bytes",
    "write_catalog_csv",
    "write_relation_csv",
]
