"""Shared infrastructure for the benchmark workloads."""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass
from typing import List, Sequence

from ..relational.catalog import Catalog


@dataclass(frozen=True)
class QueryDef:
    """One benchmark query: its SQL text plus the paper's classification.

    ``category`` follows the drill-down of Sections 8.3/8.4:
    ``no_agg`` (pure select-project-join), ``local`` (LA), ``global`` (GA),
    ``scalar`` (scalar global aggregation); ``correlated`` marks queries
    with correlated subqueries and ``cyclic`` queries whose join graph has
    a cycle, since the paper calls both groups out separately.
    """

    name: str
    category: str
    sql: str
    correlated: bool = False
    cyclic: bool = False
    description: str = ""


@dataclass
class Workload:
    """A generated database together with its query set."""

    name: str
    catalog: Catalog
    queries: List[QueryDef]
    scale: float
    generation_seconds: float = 0.0

    def query(self, name: str) -> QueryDef:
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(f"workload {self.name!r} has no query {name!r}")

    def queries_in_category(self, category: str) -> List[QueryDef]:
        return [query for query in self.queries if query.category == category]

    def categories(self) -> List[str]:
        seen: List[str] = []
        for query in self.queries:
            if query.category not in seen:
                seen.append(query.category)
        return seen


class DataRandom(random.Random):
    """Seeded random source with the helpers the generators share."""

    def zipf_index(self, n: int, skew: float = 1.2) -> int:
        """A Zipf-distributed index in ``[0, n)`` (rank-1 most likely).

        TPC-DS's hybrid data/domain scaling produces skewed fact-table
        foreign keys; this is the knob the TPC-DS-like generator uses.
        """
        if n <= 1:
            return 0
        # inverse-CDF sampling over the truncated zeta distribution
        weights = getattr(self, "_zipf_cache", {}).get((n, skew))
        if weights is None:
            raw = [1.0 / ((rank + 1) ** skew) for rank in range(n)]
            total = sum(raw)
            cumulative = []
            acc = 0.0
            for weight in raw:
                acc += weight / total
                cumulative.append(acc)
            cache = getattr(self, "_zipf_cache", {})
            cache[(n, skew)] = cumulative
            self._zipf_cache = cache
            weights = cumulative
        point = self.random()
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if weights[mid] < point:
                low = mid + 1
            else:
                high = mid
        return low

    def date_between(self, start: _dt.date, end: _dt.date) -> _dt.date:
        span = (end - start).days
        return start + _dt.timedelta(days=self.randint(0, max(span, 0)))

    def words(self, vocabulary: Sequence[str], count: int) -> str:
        return " ".join(self.choice(vocabulary) for _ in range(count))
