"""TPC-H-like workload: 3NF schema, synthetic generator and 22 query analogues.

The schema mirrors TPC-H's eight relations (pure third normal form, narrow
tables, uniformly distributed data — the shape the paper calls the "RDBMS
comfort zone").  The generator is a scaled-down, seeded stand-in for dbgen:
"mini scale factor" 1.0 produces a few thousand LINEITEM rows instead of
six million, preserving the relative table sizes, PK-FK structure and value
domains that the 22 query analogues filter and join on.

Every query of the TPC-H workload has an analogue here, expressed in the
SQL subset supported by :mod:`repro.sql` (no CASE/EXTRACT/HAVING; the
evaluation drops ORDER BY / LIMIT exactly as the paper does).  Each query
is tagged with the aggregation class the paper's drill-down uses (local /
global / scalar / no aggregation) plus flags for correlated subqueries and
cyclic join graphs, so the benchmark harness can regenerate the per-class
tables (Tables 3 and 4).
"""

from __future__ import annotations

import datetime as _dt
import time
from typing import List

from ..relational.catalog import Catalog
from ..relational.schema import Column, ForeignKey, Schema
from ..relational.types import DataType
from .base import DataRandom, QueryDef, Workload

# ----------------------------------------------------------------------
# value domains
# ----------------------------------------------------------------------
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
ORDER_STATUSES = ["F", "O", "P"]
SHIP_MODES = ["AIR", "REG AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "FOB"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["F", "O"]
PART_TYPES = ["PROMO", "STEEL", "COPPER", "BRASS", "TIN"]
PART_CONTAINERS = ["SM BOX", "MED BOX", "LG BOX", "JUMBO PACK", "WRAP CASE"]
PART_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
PART_NAME_WORDS = [
    "green", "forest", "blue", "red", "ivory", "linen", "steel", "copper",
    "misty", "salmon", "plum", "almond", "antique", "burnished",
]
DATE_START = _dt.date(1994, 1, 1)
DATE_END = _dt.date(1998, 12, 31)


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def tpch_schemas() -> List[Schema]:
    """The eight TPC-H relations with PK/FK constraints."""
    return [
        Schema(
            "REGION",
            [Column("R_REGIONKEY", DataType.INT, nullable=False), Column("R_NAME", DataType.STRING)],
            primary_key=["R_REGIONKEY"],
        ),
        Schema(
            "NATION",
            [
                Column("N_NATIONKEY", DataType.INT, nullable=False),
                Column("N_NAME", DataType.STRING),
                Column("N_REGIONKEY", DataType.INT),
            ],
            primary_key=["N_NATIONKEY"],
            foreign_keys=[ForeignKey(("N_REGIONKEY",), "REGION", ("R_REGIONKEY",))],
        ),
        Schema(
            "SUPPLIER",
            [
                Column("S_SUPPKEY", DataType.INT, nullable=False),
                Column("S_NAME", DataType.STRING),
                Column("S_NATIONKEY", DataType.INT),
                Column("S_ACCTBAL", DataType.FLOAT),
            ],
            primary_key=["S_SUPPKEY"],
            foreign_keys=[ForeignKey(("S_NATIONKEY",), "NATION", ("N_NATIONKEY",))],
        ),
        Schema(
            "CUSTOMER",
            [
                Column("C_CUSTKEY", DataType.INT, nullable=False),
                Column("C_NAME", DataType.STRING),
                Column("C_NATIONKEY", DataType.INT),
                Column("C_ACCTBAL", DataType.FLOAT),
                Column("C_MKTSEGMENT", DataType.STRING),
            ],
            primary_key=["C_CUSTKEY"],
            foreign_keys=[ForeignKey(("C_NATIONKEY",), "NATION", ("N_NATIONKEY",))],
        ),
        Schema(
            "PART",
            [
                Column("P_PARTKEY", DataType.INT, nullable=False),
                Column("P_NAME", DataType.STRING, materialise=False),
                Column("P_BRAND", DataType.STRING),
                Column("P_TYPE", DataType.STRING),
                Column("P_SIZE", DataType.INT),
                Column("P_CONTAINER", DataType.STRING),
                Column("P_RETAILPRICE", DataType.FLOAT),
            ],
            primary_key=["P_PARTKEY"],
        ),
        Schema(
            "PARTSUPP",
            [
                Column("PS_PARTKEY", DataType.INT, nullable=False),
                Column("PS_SUPPKEY", DataType.INT, nullable=False),
                Column("PS_AVAILQTY", DataType.INT),
                Column("PS_SUPPLYCOST", DataType.FLOAT),
            ],
            primary_key=["PS_PARTKEY", "PS_SUPPKEY"],
            foreign_keys=[
                ForeignKey(("PS_PARTKEY",), "PART", ("P_PARTKEY",)),
                ForeignKey(("PS_SUPPKEY",), "SUPPLIER", ("S_SUPPKEY",)),
            ],
        ),
        Schema(
            "ORDERS",
            [
                Column("O_ORDERKEY", DataType.INT, nullable=False),
                Column("O_CUSTKEY", DataType.INT),
                Column("O_ORDERSTATUS", DataType.STRING),
                Column("O_TOTALPRICE", DataType.FLOAT),
                Column("O_ORDERDATE", DataType.DATE),
                Column("O_ORDERPRIORITY", DataType.STRING),
                Column("O_SHIPPRIORITY", DataType.INT),
            ],
            primary_key=["O_ORDERKEY"],
            foreign_keys=[ForeignKey(("O_CUSTKEY",), "CUSTOMER", ("C_CUSTKEY",))],
        ),
        Schema(
            "LINEITEM",
            [
                Column("L_ORDERKEY", DataType.INT, nullable=False),
                Column("L_PARTKEY", DataType.INT),
                Column("L_SUPPKEY", DataType.INT),
                Column("L_LINENUMBER", DataType.INT),
                Column("L_QUANTITY", DataType.INT),
                Column("L_EXTENDEDPRICE", DataType.FLOAT),
                Column("L_DISCOUNT", DataType.FLOAT),
                Column("L_TAX", DataType.FLOAT),
                Column("L_RETURNFLAG", DataType.STRING),
                Column("L_LINESTATUS", DataType.STRING),
                Column("L_SHIPDATE", DataType.DATE),
                Column("L_COMMITDATE", DataType.DATE),
                Column("L_RECEIPTDATE", DataType.DATE),
                Column("L_SHIPMODE", DataType.STRING),
            ],
            primary_key=["L_ORDERKEY", "L_LINENUMBER"],
            foreign_keys=[
                ForeignKey(("L_ORDERKEY",), "ORDERS", ("O_ORDERKEY",)),
                ForeignKey(("L_PARTKEY",), "PART", ("P_PARTKEY",)),
                ForeignKey(("L_SUPPKEY",), "SUPPLIER", ("S_SUPPKEY",)),
            ],
        ),
    ]


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
def generate_tpch(scale: float = 0.2, seed: int = 7) -> Catalog:
    """Generate a TPC-H-like catalog at the given mini scale factor.

    Mini scale 1.0 yields roughly 300 customers / 3000 orders / ~9000
    lineitems (all tables keep TPC-H's relative proportions and scale
    linearly, as the real benchmark's tables do).
    """
    rng = DataRandom(seed)
    schemas = {schema.name: schema for schema in tpch_schemas()}
    catalog = Catalog(f"tpch@{scale}")

    customer_count = max(20, int(300 * scale))
    supplier_count = max(5, int(20 * scale))
    part_count = max(20, int(400 * scale))
    orders_per_customer = 10
    lineitems_per_order = (1, 5)

    region = catalog.create(schemas["REGION"])
    for key, name in enumerate(REGIONS):
        region.insert([key, name])

    nation = catalog.create(schemas["NATION"])
    for key, (name, region_key) in enumerate(NATIONS):
        nation.insert([key, name, region_key])

    supplier = catalog.create(schemas["SUPPLIER"])
    for key in range(1, supplier_count + 1):
        supplier.insert(
            [key, f"Supplier#{key:05d}", rng.randrange(len(NATIONS)),
             round(rng.uniform(-999.0, 9999.0), 2)]
        )

    customer = catalog.create(schemas["CUSTOMER"])
    for key in range(1, customer_count + 1):
        customer.insert(
            [key, f"Customer#{key:06d}", rng.randrange(len(NATIONS)),
             round(rng.uniform(-999.0, 9999.0), 2), rng.choice(MARKET_SEGMENTS)]
        )

    part = catalog.create(schemas["PART"])
    for key in range(1, part_count + 1):
        part.insert(
            [
                key,
                rng.words(PART_NAME_WORDS, 3),
                rng.choice(PART_BRANDS),
                rng.choice(PART_TYPES),
                rng.randint(1, 50),
                rng.choice(PART_CONTAINERS),
                round(rng.uniform(900.0, 2000.0), 2),
            ]
        )

    partsupp = catalog.create(schemas["PARTSUPP"])
    for part_key in range(1, part_count + 1):
        suppliers = rng.sample(range(1, supplier_count + 1), min(2, supplier_count))
        for supp_key in suppliers:
            partsupp.insert(
                [part_key, supp_key, rng.randint(1, 1000), round(rng.uniform(1.0, 1000.0), 2)]
            )

    orders = catalog.create(schemas["ORDERS"])
    lineitem = catalog.create(schemas["LINEITEM"])
    order_key = 0
    for customer_key in range(1, customer_count + 1):
        for _ in range(rng.randint(orders_per_customer - 4, orders_per_customer + 4)):
            order_key += 1
            order_date = rng.date_between(DATE_START, DATE_END - _dt.timedelta(days=120))
            total = 0.0
            line_rows = []
            for line_number in range(1, rng.randint(*lineitems_per_order) + 1):
                ship_date = order_date + _dt.timedelta(days=rng.randint(1, 90))
                commit_date = order_date + _dt.timedelta(days=rng.randint(15, 75))
                receipt_date = ship_date + _dt.timedelta(days=rng.randint(1, 30))
                extended = round(rng.uniform(100.0, 50_000.0), 2)
                total += extended
                line_rows.append(
                    [
                        order_key,
                        rng.randint(1, part_count),
                        rng.randint(1, supplier_count),
                        line_number,
                        rng.randint(1, 50),
                        extended,
                        round(rng.choice([0.0, 0.02, 0.04, 0.05, 0.06, 0.07, 0.08, 0.1]), 2),
                        round(rng.uniform(0.0, 0.08), 2),
                        rng.choice(RETURN_FLAGS),
                        rng.choice(LINE_STATUSES),
                        ship_date,
                        commit_date,
                        receipt_date,
                        rng.choice(SHIP_MODES),
                    ]
                )
            orders.insert(
                [
                    order_key,
                    customer_key,
                    rng.choice(ORDER_STATUSES),
                    round(total, 2),
                    order_date,
                    rng.choice(ORDER_PRIORITIES),
                    rng.randint(0, 1),
                ]
            )
            for row in line_rows:
                lineitem.insert(row)
    return catalog


# ----------------------------------------------------------------------
# the 22 query analogues
# ----------------------------------------------------------------------
def tpch_queries() -> List[QueryDef]:
    """TPC-H q1-q22 analogues in the supported SQL subset."""
    return [
        QueryDef("q1", "global", """
            SELECT l.L_RETURNFLAG, l.L_LINESTATUS,
                   SUM(l.L_QUANTITY) AS sum_qty,
                   SUM(l.L_EXTENDEDPRICE) AS sum_base_price,
                   AVG(l.L_DISCOUNT) AS avg_disc,
                   COUNT(*) AS count_order
            FROM LINEITEM l
            WHERE l.L_SHIPDATE <= DATE '1998-09-01'
            GROUP BY l.L_RETURNFLAG, l.L_LINESTATUS
        """, description="pricing summary report (single-table scan, global aggregation)"),
        QueryDef("q2", "no_agg", """
            SELECT s.S_NAME, p.P_PARTKEY, ps.PS_SUPPLYCOST
            FROM PART p, SUPPLIER s, PARTSUPP ps, NATION n, REGION r
            WHERE p.P_PARTKEY = ps.PS_PARTKEY AND s.S_SUPPKEY = ps.PS_SUPPKEY
              AND s.S_NATIONKEY = n.N_NATIONKEY AND n.N_REGIONKEY = r.R_REGIONKEY
              AND r.R_NAME = 'EUROPE' AND p.P_SIZE < 12
              AND ps.PS_SUPPLYCOST <= (SELECT MIN(ps2.PS_SUPPLYCOST) FROM PARTSUPP ps2
                                       WHERE ps2.PS_PARTKEY = p.P_PARTKEY)
        """, correlated=True, description="minimum-cost supplier (correlated scalar subquery)"),
        QueryDef("q3", "local", """
            SELECT o.O_ORDERKEY, o.O_ORDERDATE, o.O_SHIPPRIORITY,
                   SUM(l.L_EXTENDEDPRICE) AS revenue
            FROM CUSTOMER c, ORDERS o, LINEITEM l
            WHERE c.C_MKTSEGMENT = 'BUILDING' AND c.C_CUSTKEY = o.O_CUSTKEY
              AND l.L_ORDERKEY = o.O_ORDERKEY
              AND o.O_ORDERDATE < DATE '1996-03-15' AND l.L_SHIPDATE > DATE '1996-03-15'
            GROUP BY o.O_ORDERKEY, o.O_ORDERDATE, o.O_SHIPPRIORITY
        """, description="shipping priority (local aggregation keyed by order)"),
        QueryDef("q4", "local", """
            SELECT o.O_ORDERPRIORITY, COUNT(*) AS order_count
            FROM ORDERS o
            WHERE o.O_ORDERDATE >= DATE '1995-07-01' AND o.O_ORDERDATE < DATE '1995-10-01'
              AND EXISTS (SELECT l.L_ORDERKEY FROM LINEITEM l
                          WHERE l.L_ORDERKEY = o.O_ORDERKEY
                            AND l.L_COMMITDATE < l.L_RECEIPTDATE)
            GROUP BY o.O_ORDERPRIORITY
        """, correlated=True, description="order priority checking (correlated EXISTS)"),
        QueryDef("q5", "local", """
            SELECT n.N_NAME, SUM(l.L_EXTENDEDPRICE) AS revenue
            FROM CUSTOMER c, ORDERS o, LINEITEM l, SUPPLIER s, NATION n, REGION r
            WHERE c.C_CUSTKEY = o.O_CUSTKEY AND l.L_ORDERKEY = o.O_ORDERKEY
              AND l.L_SUPPKEY = s.S_SUPPKEY AND c.C_NATIONKEY = s.S_NATIONKEY
              AND s.S_NATIONKEY = n.N_NATIONKEY AND n.N_REGIONKEY = r.R_REGIONKEY
              AND r.R_NAME = 'ASIA'
              AND o.O_ORDERDATE >= DATE '1996-01-01' AND o.O_ORDERDATE < DATE '1997-01-01'
            GROUP BY n.N_NAME
        """, cyclic=True, description="local supplier volume (the 5-way cycle query)"),
        QueryDef("q6", "scalar", """
            SELECT SUM(l.L_EXTENDEDPRICE * l.L_DISCOUNT) AS revenue, COUNT(*) AS cnt
            FROM LINEITEM l
            WHERE l.L_SHIPDATE >= DATE '1995-01-01' AND l.L_SHIPDATE < DATE '1996-01-01'
              AND l.L_DISCOUNT BETWEEN 0.04 AND 0.08 AND l.L_QUANTITY < 24
        """, description="forecasting revenue change (scalar aggregation, single scan)"),
        QueryDef("q7", "global", """
            SELECT n1.N_NAME AS supp_nation, n2.N_NAME AS cust_nation,
                   SUM(l.L_EXTENDEDPRICE) AS revenue
            FROM SUPPLIER s, LINEITEM l, ORDERS o, CUSTOMER c, NATION n1, NATION n2
            WHERE s.S_SUPPKEY = l.L_SUPPKEY AND o.O_ORDERKEY = l.L_ORDERKEY
              AND c.C_CUSTKEY = o.O_CUSTKEY AND s.S_NATIONKEY = n1.N_NATIONKEY
              AND c.C_NATIONKEY = n2.N_NATIONKEY
              AND n1.N_NAME = 'FRANCE'
              AND l.L_SHIPDATE BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
            GROUP BY n1.N_NAME, n2.N_NAME
        """, description="volume shipping (global aggregation, NATION self-join)"),
        QueryDef("q8", "global", """
            SELECT o.O_ORDERPRIORITY, n.N_NAME, SUM(l.L_EXTENDEDPRICE) AS volume
            FROM PART p, LINEITEM l, ORDERS o, CUSTOMER c, NATION n, SUPPLIER s
            WHERE p.P_PARTKEY = l.L_PARTKEY AND s.S_SUPPKEY = l.L_SUPPKEY
              AND l.L_ORDERKEY = o.O_ORDERKEY AND o.O_CUSTKEY = c.C_CUSTKEY
              AND c.C_NATIONKEY = n.N_NATIONKEY AND p.P_TYPE = 'STEEL'
              AND o.O_ORDERDATE BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
            GROUP BY o.O_ORDERPRIORITY, n.N_NAME
        """, description="national market share (global aggregation)"),
        QueryDef("q9", "global", """
            SELECT n.N_NAME, o.O_ORDERPRIORITY, SUM(l.L_EXTENDEDPRICE) AS profit
            FROM PART p, SUPPLIER s, LINEITEM l, PARTSUPP ps, ORDERS o, NATION n
            WHERE s.S_SUPPKEY = l.L_SUPPKEY AND ps.PS_SUPPKEY = l.L_SUPPKEY
              AND ps.PS_PARTKEY = l.L_PARTKEY AND p.P_PARTKEY = l.L_PARTKEY
              AND o.O_ORDERKEY = l.L_ORDERKEY AND s.S_NATIONKEY = n.N_NATIONKEY
              AND p.P_NAME LIKE '%green%'
            GROUP BY n.N_NAME, o.O_ORDERPRIORITY
        """, description="product type profit (global aggregation, multi-attribute join)"),
        QueryDef("q10", "local", """
            SELECT c.C_CUSTKEY, c.C_NAME, SUM(l.L_EXTENDEDPRICE) AS revenue
            FROM CUSTOMER c, ORDERS o, LINEITEM l, NATION n
            WHERE c.C_CUSTKEY = o.O_CUSTKEY AND l.L_ORDERKEY = o.O_ORDERKEY
              AND c.C_NATIONKEY = n.N_NATIONKEY AND l.L_RETURNFLAG = 'R'
              AND o.O_ORDERDATE >= DATE '1995-10-01' AND o.O_ORDERDATE < DATE '1996-01-01'
            GROUP BY c.C_CUSTKEY, c.C_NAME
        """, description="returned item reporting (local aggregation keyed by customer)"),
        QueryDef("q11", "local", """
            SELECT ps.PS_PARTKEY, SUM(ps.PS_SUPPLYCOST * ps.PS_AVAILQTY) AS value
            FROM PARTSUPP ps, SUPPLIER s, NATION n
            WHERE ps.PS_SUPPKEY = s.S_SUPPKEY AND s.S_NATIONKEY = n.N_NATIONKEY
              AND n.N_NAME = 'GERMANY'
            GROUP BY ps.PS_PARTKEY
        """, description="important stock identification (local aggregation by part)"),
        QueryDef("q12", "local", """
            SELECT l.L_SHIPMODE, COUNT(*) AS line_count
            FROM ORDERS o, LINEITEM l
            WHERE o.O_ORDERKEY = l.L_ORDERKEY AND l.L_SHIPMODE IN ('MAIL', 'SHIP')
              AND l.L_RECEIPTDATE >= DATE '1995-01-01' AND l.L_RECEIPTDATE < DATE '1996-01-01'
            GROUP BY l.L_SHIPMODE
        """, description="shipping modes (local aggregation by ship mode)"),
        QueryDef("q13", "local", """
            SELECT c.C_CUSTKEY, COUNT(*) AS c_count
            FROM CUSTOMER c, ORDERS o
            WHERE c.C_CUSTKEY = o.O_CUSTKEY AND o.O_ORDERPRIORITY <> '1-URGENT'
            GROUP BY c.C_CUSTKEY
        """, description="customer order counts"),
        QueryDef("q14", "scalar", """
            SELECT SUM(l.L_EXTENDEDPRICE * l.L_DISCOUNT) AS promo_revenue
            FROM LINEITEM l, PART p
            WHERE l.L_PARTKEY = p.P_PARTKEY AND p.P_TYPE = 'PROMO'
              AND l.L_SHIPDATE >= DATE '1995-06-01' AND l.L_SHIPDATE < DATE '1995-12-01'
        """, description="promotion effect (scalar aggregation over a PK-FK join)"),
        QueryDef("q15", "local", """
            SELECT l.L_SUPPKEY, SUM(l.L_EXTENDEDPRICE) AS total_revenue
            FROM LINEITEM l
            WHERE l.L_SHIPDATE >= DATE '1996-01-01' AND l.L_SHIPDATE < DATE '1996-07-01'
            GROUP BY l.L_SUPPKEY
        """, description="top supplier (local aggregation by supplier key)"),
        QueryDef("q16", "global", """
            SELECT p.P_BRAND, p.P_TYPE, COUNT(DISTINCT ps.PS_SUPPKEY) AS supplier_cnt
            FROM PARTSUPP ps, PART p
            WHERE p.P_PARTKEY = ps.PS_PARTKEY AND p.P_BRAND <> 'Brand#45'
              AND p.P_SIZE IN (9, 14, 19, 23, 36, 45, 49, 3)
              AND ps.PS_SUPPKEY NOT IN (SELECT s.S_SUPPKEY FROM SUPPLIER s
                                        WHERE s.S_ACCTBAL < 0)
            GROUP BY p.P_BRAND, p.P_TYPE
        """, description="parts/supplier relationship (global aggregation, NOT IN subquery)"),
        QueryDef("q17", "scalar", """
            SELECT SUM(l.L_EXTENDEDPRICE) AS avg_yearly
            FROM LINEITEM l, PART p
            WHERE p.P_PARTKEY = l.L_PARTKEY AND p.P_BRAND = 'Brand#23'
              AND p.P_CONTAINER = 'MED BOX'
              AND l.L_QUANTITY * 5 < (SELECT SUM(l2.L_QUANTITY) FROM LINEITEM l2
                                      WHERE l2.L_PARTKEY = p.P_PARTKEY)
        """, correlated=True, description="small-quantity-order revenue (correlated scalar subquery)"),
        QueryDef("q18", "local", """
            SELECT o.O_ORDERKEY, SUM(l.L_QUANTITY) AS total_qty
            FROM CUSTOMER c, ORDERS o, LINEITEM l
            WHERE o.O_ORDERKEY IN (SELECT l2.L_ORDERKEY FROM LINEITEM l2 WHERE l2.L_QUANTITY > 45)
              AND c.C_CUSTKEY = o.O_CUSTKEY AND o.O_ORDERKEY = l.L_ORDERKEY
            GROUP BY o.O_ORDERKEY
        """, description="large volume customers (IN subquery + local aggregation)"),
        QueryDef("q19", "scalar", """
            SELECT SUM(l.L_EXTENDEDPRICE) AS revenue
            FROM LINEITEM l, PART p
            WHERE p.P_PARTKEY = l.L_PARTKEY AND p.P_BRAND = 'Brand#12'
              AND p.P_SIZE BETWEEN 1 AND 15 AND l.L_QUANTITY BETWEEN 1 AND 20
              AND l.L_SHIPMODE IN ('AIR', 'REG AIR')
        """, description="discounted revenue (scalar aggregation, selective join)"),
        QueryDef("q20", "no_agg", """
            SELECT s.S_NAME
            FROM SUPPLIER s, NATION n
            WHERE s.S_NATIONKEY = n.N_NATIONKEY AND n.N_NAME = 'CANADA'
              AND s.S_SUPPKEY IN (SELECT ps.PS_SUPPKEY FROM PARTSUPP ps, PART p
                                  WHERE ps.PS_PARTKEY = p.P_PARTKEY
                                    AND p.P_NAME LIKE 'forest%' AND ps.PS_AVAILQTY > 100)
        """, correlated=False, description="potential part promotion (nested IN subquery)"),
        QueryDef("q21", "local", """
            SELECT s.S_NAME, COUNT(*) AS numwait
            FROM SUPPLIER s, LINEITEM l1, ORDERS o, NATION n
            WHERE s.S_SUPPKEY = l1.L_SUPPKEY AND o.O_ORDERKEY = l1.L_ORDERKEY
              AND o.O_ORDERSTATUS = 'F' AND l1.L_RECEIPTDATE > l1.L_COMMITDATE
              AND s.S_NATIONKEY = n.N_NATIONKEY AND n.N_NAME = 'SAUDI ARABIA'
              AND NOT EXISTS (SELECT l3.L_ORDERKEY FROM LINEITEM l3
                              WHERE l3.L_ORDERKEY = l1.L_ORDERKEY
                                AND l3.L_RECEIPTDATE <= l3.L_COMMITDATE)
            GROUP BY s.S_NAME
        """, correlated=True, description="suppliers who kept orders waiting (correlated NOT EXISTS)"),
        QueryDef("q22", "local", """
            SELECT c.C_MKTSEGMENT, COUNT(*) AS numcust, SUM(c.C_ACCTBAL) AS totacctbal
            FROM CUSTOMER c
            WHERE c.C_ACCTBAL > 0
              AND NOT EXISTS (SELECT o.O_ORDERKEY FROM ORDERS o WHERE o.O_CUSTKEY = c.C_CUSTKEY)
            GROUP BY c.C_MKTSEGMENT
        """, correlated=True, description="global sales opportunity (correlated NOT EXISTS)"),
    ]


def tpch_workload(scale: float = 0.2, seed: int = 7) -> Workload:
    """Generate the catalog and pair it with the 22 query analogues."""
    started = time.perf_counter()
    catalog = generate_tpch(scale=scale, seed=seed)
    return Workload(
        name="tpch",
        catalog=catalog,
        queries=tpch_queries(),
        scale=scale,
        generation_seconds=time.perf_counter() - started,
    )
