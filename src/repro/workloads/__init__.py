"""Benchmark workloads: TPC-H-like, TPC-DS-like and synthetic micro-workloads."""

from .base import DataRandom, QueryDef, Workload
from .synthetic import (
    chain_catalog,
    cycle_catalog,
    many_to_many_catalog,
    star_catalog,
    triangle_catalog,
    triangle_query,
)
from .tpcds import generate_tpcds, tpcds_queries, tpcds_schemas, tpcds_workload
from .tpch import generate_tpch, tpch_queries, tpch_schemas, tpch_workload

__all__ = [
    "DataRandom",
    "QueryDef",
    "Workload",
    "chain_catalog",
    "cycle_catalog",
    "generate_tpcds",
    "generate_tpch",
    "many_to_many_catalog",
    "star_catalog",
    "tpcds_queries",
    "tpcds_schemas",
    "tpcds_workload",
    "tpch_queries",
    "tpch_schemas",
    "tpch_workload",
    "triangle_catalog",
    "triangle_query",
]
