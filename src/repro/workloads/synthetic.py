"""Synthetic micro-workloads used by tests, property-based checks and ablations.

These generators build small, parameterised relational instances with
precisely controlled shapes: chain joins with a chosen fraction of dangling
tuples (for the semi-join-reduction ablation), skewed binary relations for
triangle / cycle queries (for the heavy-light theta ablation and the AGM
bound property tests), and many-to-many pairs with tunable fan-out (for the
factorized-output ablation).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..algebra.builder import QueryBuilder
from ..algebra.logical import QuerySpec
from ..relational.catalog import Catalog
from ..relational.relation import Relation
from ..relational.schema import Column, Schema
from ..relational.types import DataType
from .base import DataRandom


def binary_relation(name: str, pairs: Sequence[Tuple[int, int]], columns: Tuple[str, str]) -> Relation:
    """A two-column integer relation from explicit pairs."""
    schema = Schema(name, [Column(columns[0], DataType.INT), Column(columns[1], DataType.INT)])
    return Relation(schema, [list(pair) for pair in pairs])


def chain_catalog(
    relations: int = 3,
    rows_per_relation: int = 100,
    dangling_fraction: float = 0.3,
    domain: int = 50,
    seed: int = 11,
) -> Tuple[Catalog, QuerySpec]:
    """A chain join R1(A0,A1) ⋈ R2(A1,A2) ⋈ ... with controllable dangling tuples.

    ``dangling_fraction`` of each relation's rows use join values outside
    the shared domain, so they cannot join — the tuples a Yannakakis-style
    reduction eliminates.  Returns the catalog and the natural chain query.
    """
    rng = DataRandom(seed)
    catalog = Catalog(f"chain{relations}")
    builder = QueryBuilder(f"chain_{relations}")
    for index in range(relations):
        name = f"R{index + 1}"
        left_col, right_col = f"A{index}", f"A{index + 1}"
        pairs = []
        for _ in range(rows_per_relation):
            if rng.random() < dangling_fraction:
                left = rng.randint(domain + 1, domain * 3)
                right = rng.randint(domain + 1, domain * 3)
            else:
                left = rng.randint(0, domain)
                right = rng.randint(0, domain)
            pairs.append((left, right))
        catalog.add(binary_relation(name, pairs, (left_col, right_col)))
        builder.table(name, name.lower())
    for index in range(relations - 1):
        builder.join(f"r{index + 1}", f"A{index + 1}", f"r{index + 2}", f"A{index + 1}")
    spec = builder.build()
    spec.output = []
    for index in range(relations):
        alias = f"r{index + 1}"
        from ..algebra.expressions import col

        from ..algebra.logical import OutputColumn

        spec.output.append(OutputColumn(col(f"{alias}.A{index}"), f"{alias}.A{index}"))
        spec.output.append(OutputColumn(col(f"{alias}.A{index + 1}"), f"{alias}.A{index + 1}"))
    return catalog, spec


def triangle_catalog(
    rows_per_relation: int = 200,
    domain: int = 40,
    skew: float = 1.2,
    seed: int = 13,
) -> Catalog:
    """Skewed binary relations R(A,B), S(B,C), T(C,A) for triangle queries.

    A Zipf-distributed value domain creates the heavy values the
    worst-case-optimal algorithm's heavy/light split targets.
    """
    rng = DataRandom(seed)

    def skewed_pairs(count: int) -> List[Tuple[int, int]]:
        return [
            (rng.zipf_index(domain, skew), rng.zipf_index(domain, skew))
            for _ in range(count)
        ]

    catalog = Catalog("triangle")
    catalog.add(binary_relation("R", skewed_pairs(rows_per_relation), ("A", "B")))
    catalog.add(binary_relation("S", skewed_pairs(rows_per_relation), ("B", "C")))
    catalog.add(binary_relation("T", skewed_pairs(rows_per_relation), ("C", "A")))
    return catalog


def triangle_query() -> QuerySpec:
    """The triangle query over :func:`triangle_catalog`."""
    spec = (
        QueryBuilder("triangle")
        .table("R", "r")
        .table("S", "s")
        .table("T", "t")
        .join("r", "B", "s", "B")
        .join("s", "C", "t", "C")
        .join("t", "A", "r", "A")
        .select_columns("r.A", "r.B", "s.C")
        .build()
    )
    return spec


def cycle_catalog(
    length: int = 4,
    rows_per_relation: int = 150,
    domain: int = 30,
    seed: int = 17,
) -> Tuple[Catalog, QuerySpec]:
    """An n-way cycle query R1(X1,X2) ⋈ ... ⋈ Rn(Xn,X1) with uniform data."""
    rng = DataRandom(seed)
    catalog = Catalog(f"cycle{length}")
    builder = QueryBuilder(f"cycle_{length}")
    for index in range(length):
        name = f"R{index + 1}"
        columns = (f"X{index + 1}", f"X{(index + 1) % length + 1}")
        pairs = [
            (rng.randint(0, domain), rng.randint(0, domain))
            for _ in range(rows_per_relation)
        ]
        catalog.add(binary_relation(name, pairs, columns))
        builder.table(name, name.lower())
    for index in range(length):
        next_index = (index + 1) % length
        shared = f"X{next_index + 1}"
        builder.join(f"r{index + 1}", shared, f"r{next_index + 1}", shared)
    spec = builder.build()
    spec.output = []
    from ..algebra.expressions import col
    from ..algebra.logical import OutputColumn

    for index in range(length):
        alias = f"r{index + 1}"
        spec.output.append(
            OutputColumn(col(f"{alias}.X{index + 1}"), f"{alias}.X{index + 1}")
        )
    return catalog, spec


def many_to_many_catalog(
    left_rows: int = 200,
    right_rows: int = 200,
    join_values: int = 10,
    seed: int = 19,
) -> Catalog:
    """R(A,B) and S(B,C) where few join values connect many tuples.

    The unfactorized join output is ~``left_rows * right_rows /
    join_values`` rows while the factorized representation stays linear —
    the trade-off the A01 ablation measures.
    """
    rng = DataRandom(seed)
    catalog = Catalog("many_to_many")
    catalog.add(
        binary_relation(
            "R",
            [(rng.randint(0, 10_000), rng.randint(0, join_values - 1)) for _ in range(left_rows)],
            ("A", "B"),
        )
    )
    catalog.add(
        binary_relation(
            "S",
            [(rng.randint(0, join_values - 1), rng.randint(0, 10_000)) for _ in range(right_rows)],
            ("B", "C"),
        )
    )
    return catalog


def star_catalog(
    fact_rows: int = 500,
    dimensions: int = 3,
    dimension_rows: int = 40,
    selectivity: float = 0.5,
    seed: int = 29,
) -> Tuple[Catalog, QuerySpec]:
    """A star schema: FACT joining ``dimensions`` dimension tables on PK-FK keys."""
    rng = DataRandom(seed)
    catalog = Catalog("star")
    dimension_names = [f"DIM{i + 1}" for i in range(dimensions)]
    for name in dimension_names:
        schema = Schema(
            name,
            [Column(f"{name}_KEY", DataType.INT, nullable=False), Column(f"{name}_ATTR", DataType.INT)],
            primary_key=[f"{name}_KEY"],
        )
        relation = Relation(schema)
        for key in range(dimension_rows):
            relation.insert([key, rng.randint(0, 100)])
        catalog.add(relation)

    fact_columns = [Column("F_ID", DataType.INT, nullable=False)]
    fact_columns += [Column(f"F_{name}_KEY", DataType.INT) for name in dimension_names]
    fact_columns.append(Column("F_VALUE", DataType.INT))
    fact_schema = Schema("FACT", fact_columns, primary_key=["F_ID"])
    fact = Relation(fact_schema)
    for row_id in range(fact_rows):
        row = [row_id]
        row += [rng.randint(0, dimension_rows - 1) for _ in dimension_names]
        row.append(rng.randint(0, 1000))
        fact.insert(row)
    catalog.add(fact)

    builder = QueryBuilder("star").table("FACT", "f")
    from ..algebra.expressions import Comparison, col, lit
    from ..algebra.logical import AggFunc

    for name in dimension_names:
        alias = name.lower()
        builder.table(name, alias)
        builder.join("f", f"F_{name}_KEY", alias, f"{name}_KEY")
        builder.where(alias, Comparison("<", col(f"{alias}.{name}_ATTR"), lit(int(100 * selectivity))))
    builder.group_by("dim1", "DIM1_ATTR")
    builder.select(col("dim1.DIM1_ATTR"), "dim1_attr")
    builder.aggregate(AggFunc.SUM, col("f.F_VALUE"), "total_value")
    return catalog, builder.build()
