"""TPC-DS-like workload: snowflake schema, skewed generator, 24 query analogues.

TPC-DS differs from TPC-H in exactly the ways the paper's Section 8.1.1
highlights: a multiple-snowflake schema (several fact tables sharing
dimension tables), wider tables, sub-linear dimension scaling, skewed data
(we use Zipf-distributed foreign keys) and NULLs in any non-key column.
The query analogues keep TPC-DS's signature patterns — star joins of one
fact table with several dimensions, multi-fact queries, date-dimension
filters, IN / EXISTS subqueries — expressed in the supported SQL subset,
and are tagged with the aggregation classes used for Figure 15 and
Tables 5/6.
"""

from __future__ import annotations

import datetime as _dt
import time
from typing import List

from ..relational.catalog import Catalog
from ..relational.schema import Column, ForeignKey, Schema
from ..relational.types import NULL, DataType
from .base import DataRandom, QueryDef, Workload

CATEGORIES = ["Books", "Electronics", "Home", "Jewelry", "Music", "Shoes", "Sports", "Women"]
BRANDS = [f"brand_{i}" for i in range(1, 21)]
CLASSES = [f"class_{i}" for i in range(1, 11)]
STATES = ["CA", "NY", "TX", "WA", "IL", "GA", "OH", "MI", "FL", "PA"]
CITIES = ["Fairview", "Midway", "Oakland", "Centerville", "Springdale", "Riverside"]
PRIORITY_FLAGS = ["Y", "N"]


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def tpcds_schemas() -> List[Schema]:
    return [
        Schema(
            "DATE_DIM",
            [
                Column("D_DATE_SK", DataType.INT, nullable=False),
                Column("D_DATE", DataType.DATE),
                Column("D_YEAR", DataType.INT),
                Column("D_MOY", DataType.INT),
                Column("D_QOY", DataType.INT),
            ],
            primary_key=["D_DATE_SK"],
        ),
        Schema(
            "ITEM",
            [
                Column("I_ITEM_SK", DataType.INT, nullable=False),
                Column("I_ITEM_ID", DataType.STRING),
                Column("I_CATEGORY", DataType.STRING),
                Column("I_BRAND", DataType.STRING),
                Column("I_CLASS", DataType.STRING),
                Column("I_CURRENT_PRICE", DataType.FLOAT),
                Column("I_MANUFACT_ID", DataType.INT),
            ],
            primary_key=["I_ITEM_SK"],
        ),
        Schema(
            "CUSTOMER_ADDRESS",
            [
                Column("CA_ADDRESS_SK", DataType.INT, nullable=False),
                Column("CA_STATE", DataType.STRING),
                Column("CA_CITY", DataType.STRING),
                Column("CA_GMT_OFFSET", DataType.INT),
            ],
            primary_key=["CA_ADDRESS_SK"],
        ),
        Schema(
            "CUSTOMER",
            [
                Column("C_CUSTOMER_SK", DataType.INT, nullable=False),
                Column("C_CUSTOMER_ID", DataType.STRING),
                Column("C_CURRENT_ADDR_SK", DataType.INT),
                Column("C_BIRTH_YEAR", DataType.INT),
                Column("C_PREFERRED_CUST_FLAG", DataType.STRING),
            ],
            primary_key=["C_CUSTOMER_SK"],
            foreign_keys=[
                ForeignKey(("C_CURRENT_ADDR_SK",), "CUSTOMER_ADDRESS", ("CA_ADDRESS_SK",))
            ],
        ),
        Schema(
            "STORE",
            [
                Column("S_STORE_SK", DataType.INT, nullable=False),
                Column("S_STORE_NAME", DataType.STRING),
                Column("S_STATE", DataType.STRING),
                Column("S_NUMBER_EMPLOYEES", DataType.INT),
            ],
            primary_key=["S_STORE_SK"],
        ),
        Schema(
            "PROMOTION",
            [
                Column("P_PROMO_SK", DataType.INT, nullable=False),
                Column("P_CHANNEL_EMAIL", DataType.STRING),
                Column("P_CHANNEL_TV", DataType.STRING),
            ],
            primary_key=["P_PROMO_SK"],
        ),
        Schema(
            "STORE_SALES",
            [
                Column("SS_TICKET_NUMBER", DataType.INT, nullable=False),
                Column("SS_SOLD_DATE_SK", DataType.INT),
                Column("SS_ITEM_SK", DataType.INT),
                Column("SS_CUSTOMER_SK", DataType.INT),
                Column("SS_STORE_SK", DataType.INT),
                Column("SS_PROMO_SK", DataType.INT),
                Column("SS_QUANTITY", DataType.INT),
                Column("SS_SALES_PRICE", DataType.FLOAT),
                Column("SS_NET_PROFIT", DataType.FLOAT),
            ],
            primary_key=["SS_TICKET_NUMBER"],
            foreign_keys=[
                ForeignKey(("SS_SOLD_DATE_SK",), "DATE_DIM", ("D_DATE_SK",)),
                ForeignKey(("SS_ITEM_SK",), "ITEM", ("I_ITEM_SK",)),
                ForeignKey(("SS_CUSTOMER_SK",), "CUSTOMER", ("C_CUSTOMER_SK",)),
                ForeignKey(("SS_STORE_SK",), "STORE", ("S_STORE_SK",)),
                ForeignKey(("SS_PROMO_SK",), "PROMOTION", ("P_PROMO_SK",)),
            ],
        ),
        Schema(
            "WEB_SALES",
            [
                Column("WS_ORDER_NUMBER", DataType.INT, nullable=False),
                Column("WS_SOLD_DATE_SK", DataType.INT),
                Column("WS_ITEM_SK", DataType.INT),
                Column("WS_BILL_CUSTOMER_SK", DataType.INT),
                Column("WS_PROMO_SK", DataType.INT),
                Column("WS_QUANTITY", DataType.INT),
                Column("WS_SALES_PRICE", DataType.FLOAT),
                Column("WS_NET_PROFIT", DataType.FLOAT),
            ],
            primary_key=["WS_ORDER_NUMBER"],
            foreign_keys=[
                ForeignKey(("WS_SOLD_DATE_SK",), "DATE_DIM", ("D_DATE_SK",)),
                ForeignKey(("WS_ITEM_SK",), "ITEM", ("I_ITEM_SK",)),
                ForeignKey(("WS_BILL_CUSTOMER_SK",), "CUSTOMER", ("C_CUSTOMER_SK",)),
                ForeignKey(("WS_PROMO_SK",), "PROMOTION", ("P_PROMO_SK",)),
            ],
        ),
        Schema(
            "CATALOG_SALES",
            [
                Column("CS_ORDER_NUMBER", DataType.INT, nullable=False),
                Column("CS_SOLD_DATE_SK", DataType.INT),
                Column("CS_ITEM_SK", DataType.INT),
                Column("CS_BILL_CUSTOMER_SK", DataType.INT),
                Column("CS_PROMO_SK", DataType.INT),
                Column("CS_QUANTITY", DataType.INT),
                Column("CS_SALES_PRICE", DataType.FLOAT),
                Column("CS_NET_PROFIT", DataType.FLOAT),
            ],
            primary_key=["CS_ORDER_NUMBER"],
            foreign_keys=[
                ForeignKey(("CS_SOLD_DATE_SK",), "DATE_DIM", ("D_DATE_SK",)),
                ForeignKey(("CS_ITEM_SK",), "ITEM", ("I_ITEM_SK",)),
                ForeignKey(("CS_BILL_CUSTOMER_SK",), "CUSTOMER", ("C_CUSTOMER_SK",)),
                ForeignKey(("CS_PROMO_SK",), "PROMOTION", ("P_PROMO_SK",)),
            ],
        ),
    ]


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
def generate_tpcds(scale: float = 0.2, seed: int = 23) -> Catalog:
    """Generate a TPC-DS-like catalog.

    Fact tables scale linearly with ``scale``; dimension tables scale with
    ``sqrt(scale)`` (TPC-DS's sub-linear dimension scaling).  Fact foreign
    keys are Zipf-distributed to model the benchmark's skew, and the
    nullable fact columns contain NULLs.
    """
    rng = DataRandom(seed)
    schemas = {schema.name: schema for schema in tpcds_schemas()}
    catalog = Catalog(f"tpcds@{scale}")

    sublinear = max(0.05, scale) ** 0.5
    date_count = 730  # two years of days (independent of scale, like TPC-DS)
    item_count = max(30, int(200 * sublinear))
    customer_count = max(40, int(300 * sublinear))
    address_count = max(20, int(150 * sublinear))
    store_count = max(4, int(12 * sublinear))
    promo_count = max(5, int(30 * sublinear))
    store_sales_count = int(2500 * scale)
    web_sales_count = int(1200 * scale)
    catalog_sales_count = int(1200 * scale)

    date_dim = catalog.create(schemas["DATE_DIM"])
    base_date = _dt.date(1999, 1, 1)
    for sk in range(1, date_count + 1):
        day = base_date + _dt.timedelta(days=sk - 1)
        date_dim.insert([sk, day, day.year, day.month, (day.month - 1) // 3 + 1])

    item = catalog.create(schemas["ITEM"])
    for sk in range(1, item_count + 1):
        item.insert(
            [
                sk,
                f"ITEM{sk:08d}",
                rng.choice(CATEGORIES),
                rng.choice(BRANDS),
                rng.choice(CLASSES),
                round(rng.uniform(0.5, 300.0), 2),
                rng.randint(1, 100),
            ]
        )

    address = catalog.create(schemas["CUSTOMER_ADDRESS"])
    for sk in range(1, address_count + 1):
        address.insert([sk, rng.choice(STATES), rng.choice(CITIES), rng.choice([-8, -7, -6, -5])])

    customer = catalog.create(schemas["CUSTOMER"])
    for sk in range(1, customer_count + 1):
        birth_year = rng.randint(1930, 2000) if rng.random() > 0.05 else NULL
        customer.insert(
            [
                sk,
                f"CUST{sk:08d}",
                rng.randint(1, address_count),
                birth_year,
                rng.choice(PRIORITY_FLAGS),
            ]
        )

    store = catalog.create(schemas["STORE"])
    for sk in range(1, store_count + 1):
        store.insert([sk, f"Store {sk}", rng.choice(STATES), rng.randint(50, 300)])

    promotion = catalog.create(schemas["PROMOTION"])
    for sk in range(1, promo_count + 1):
        promotion.insert([sk, rng.choice(PRIORITY_FLAGS), rng.choice(PRIORITY_FLAGS)])

    def fact_row(ticket: int) -> List:
        sold_date = rng.randint(1, date_count) if rng.random() > 0.03 else NULL
        item_sk = rng.zipf_index(item_count, skew=1.1) + 1
        customer_sk = rng.zipf_index(customer_count, skew=1.05) + 1 if rng.random() > 0.04 else NULL
        promo_sk = rng.randint(1, promo_count) if rng.random() > 0.3 else NULL
        quantity = rng.randint(1, 100)
        price = round(rng.uniform(1.0, 300.0), 2)
        profit = round(rng.uniform(-50.0, 150.0), 2)
        return [ticket, sold_date, item_sk, customer_sk, promo_sk, quantity, price, profit]

    store_sales = catalog.create(schemas["STORE_SALES"])
    for ticket in range(1, store_sales_count + 1):
        row = fact_row(ticket)
        store_sk = rng.randint(1, store_count)
        store_sales.insert(row[:4] + [store_sk] + row[4:])

    web_sales = catalog.create(schemas["WEB_SALES"])
    for order in range(1, web_sales_count + 1):
        web_sales.insert(fact_row(order))

    catalog_sales = catalog.create(schemas["CATALOG_SALES"])
    for order in range(1, catalog_sales_count + 1):
        catalog_sales.insert(fact_row(order))
    return catalog


# ----------------------------------------------------------------------
# query analogues
# ----------------------------------------------------------------------
def tpcds_queries() -> List[QueryDef]:
    """24 TPC-DS-style query analogues spanning the paper's query classes."""
    return [
        # --- no aggregation (paper Table 6 "No agg": q37, q82, q84) -----
        QueryDef("q37", "no_agg", """
            SELECT i.I_ITEM_ID, i.I_CURRENT_PRICE
            FROM ITEM i, CATALOG_SALES cs, DATE_DIM d
            WHERE i.I_ITEM_SK = cs.CS_ITEM_SK AND cs.CS_SOLD_DATE_SK = d.D_DATE_SK
              AND i.I_CURRENT_PRICE BETWEEN 20 AND 50 AND d.D_YEAR = 1999
              AND i.I_MANUFACT_ID BETWEEN 1 AND 40
        """, description="catalog items in a price band"),
        QueryDef("q82", "no_agg", """
            SELECT i.I_ITEM_ID, i.I_CURRENT_PRICE
            FROM ITEM i, STORE_SALES ss, DATE_DIM d
            WHERE i.I_ITEM_SK = ss.SS_ITEM_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND i.I_CURRENT_PRICE BETWEEN 30 AND 60 AND d.D_YEAR = 2000
        """, description="store items in a price band"),
        QueryDef("q84", "no_agg", """
            SELECT c.C_CUSTOMER_ID, ca.CA_CITY
            FROM CUSTOMER c, CUSTOMER_ADDRESS ca, STORE_SALES ss
            WHERE c.C_CURRENT_ADDR_SK = ca.CA_ADDRESS_SK
              AND ss.SS_CUSTOMER_SK = c.C_CUSTOMER_SK
              AND ca.CA_STATE = 'CA' AND ss.SS_NET_PROFIT > 100
        """, description="customers with profitable store purchases"),
        # --- local aggregation -------------------------------------------
        QueryDef("q7", "local", """
            SELECT i.I_ITEM_ID, AVG(ss.SS_QUANTITY) AS agg1, AVG(ss.SS_SALES_PRICE) AS agg2
            FROM STORE_SALES ss, ITEM i, DATE_DIM d, PROMOTION p
            WHERE ss.SS_ITEM_SK = i.I_ITEM_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND ss.SS_PROMO_SK = p.P_PROMO_SK AND d.D_YEAR = 1999
              AND p.P_CHANNEL_EMAIL = 'N'
            GROUP BY i.I_ITEM_ID
        """, description="promotional item averages"),
        QueryDef("q12", "local", """
            SELECT i.I_ITEM_ID, SUM(ws.WS_SALES_PRICE) AS itemrevenue
            FROM WEB_SALES ws, ITEM i, DATE_DIM d
            WHERE ws.WS_ITEM_SK = i.I_ITEM_SK AND ws.WS_SOLD_DATE_SK = d.D_DATE_SK
              AND i.I_CATEGORY IN ('Books', 'Home', 'Sports')
              AND d.D_YEAR = 1999 AND d.D_MOY BETWEEN 2 AND 5
            GROUP BY i.I_ITEM_ID
        """, description="web revenue by item"),
        QueryDef("q15", "local", """
            SELECT ca.CA_CITY, SUM(cs.CS_SALES_PRICE) AS total_sales
            FROM CATALOG_SALES cs, CUSTOMER c, CUSTOMER_ADDRESS ca, DATE_DIM d
            WHERE cs.CS_BILL_CUSTOMER_SK = c.C_CUSTOMER_SK
              AND c.C_CURRENT_ADDR_SK = ca.CA_ADDRESS_SK
              AND cs.CS_SOLD_DATE_SK = d.D_DATE_SK
              AND d.D_QOY = 2 AND d.D_YEAR = 1999
            GROUP BY ca.CA_CITY
        """, description="catalog sales by city (snowflake join)"),
        QueryDef("q26", "local", """
            SELECT i.I_ITEM_ID, AVG(cs.CS_QUANTITY) AS agg1, AVG(cs.CS_SALES_PRICE) AS agg2
            FROM CATALOG_SALES cs, DATE_DIM d, ITEM i, PROMOTION p
            WHERE cs.CS_SOLD_DATE_SK = d.D_DATE_SK AND cs.CS_ITEM_SK = i.I_ITEM_SK
              AND cs.CS_PROMO_SK = p.P_PROMO_SK AND p.P_CHANNEL_TV = 'N' AND d.D_YEAR = 2000
            GROUP BY i.I_ITEM_ID
        """, description="catalog promotional item averages"),
        QueryDef("q33", "local", """
            SELECT i.I_BRAND, SUM(ss.SS_NET_PROFIT) AS total_profit
            FROM STORE_SALES ss, ITEM i, DATE_DIM d, STORE s
            WHERE ss.SS_ITEM_SK = i.I_ITEM_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND ss.SS_STORE_SK = s.S_STORE_SK AND i.I_CATEGORY = 'Electronics'
              AND d.D_MOY = 11
            GROUP BY i.I_BRAND
        """, description="brand profit for a category"),
        QueryDef("q42", "local", """
            SELECT i.I_CATEGORY, SUM(ss.SS_NET_PROFIT) AS total_profit
            FROM STORE_SALES ss, ITEM i, DATE_DIM d
            WHERE ss.SS_ITEM_SK = i.I_ITEM_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND d.D_MOY = 12 AND d.D_YEAR = 1999
            GROUP BY i.I_CATEGORY
        """, description="category profit in one month"),
        QueryDef("q52", "local", """
            SELECT i.I_BRAND, SUM(ss.SS_SALES_PRICE) AS ext_price
            FROM DATE_DIM d, STORE_SALES ss, ITEM i
            WHERE d.D_DATE_SK = ss.SS_SOLD_DATE_SK AND ss.SS_ITEM_SK = i.I_ITEM_SK
              AND i.I_MANUFACT_ID BETWEEN 1 AND 30 AND d.D_MOY = 11 AND d.D_YEAR = 2000
            GROUP BY i.I_BRAND
        """, description="brand revenue for a month"),
        QueryDef("q55", "local", """
            SELECT i.I_BRAND, SUM(ss.SS_SALES_PRICE) AS ext_price
            FROM DATE_DIM d, STORE_SALES ss, ITEM i
            WHERE d.D_DATE_SK = ss.SS_SOLD_DATE_SK AND ss.SS_ITEM_SK = i.I_ITEM_SK
              AND i.I_MANUFACT_ID BETWEEN 20 AND 60 AND d.D_MOY = 12 AND d.D_YEAR = 1999
            GROUP BY i.I_BRAND
        """, description="brand revenue for a month (variant)"),
        QueryDef("q98", "local", """
            SELECT i.I_ITEM_ID, SUM(ss.SS_SALES_PRICE) AS itemrevenue
            FROM STORE_SALES ss, ITEM i, DATE_DIM d
            WHERE ss.SS_ITEM_SK = i.I_ITEM_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND i.I_CLASS IN ('class_1', 'class_2', 'class_3')
              AND d.D_YEAR = 1999
            GROUP BY i.I_ITEM_ID
        """, description="store revenue by item for selected classes"),
        # --- global aggregation ------------------------------------------
        QueryDef("q3", "global", """
            SELECT d.D_YEAR, i.I_BRAND, SUM(ss.SS_NET_PROFIT) AS sum_agg
            FROM DATE_DIM d, STORE_SALES ss, ITEM i
            WHERE d.D_DATE_SK = ss.SS_SOLD_DATE_SK AND ss.SS_ITEM_SK = i.I_ITEM_SK
              AND i.I_MANUFACT_ID BETWEEN 1 AND 50 AND d.D_MOY = 12
            GROUP BY d.D_YEAR, i.I_BRAND
        """, description="brand profit by year (classic star query)"),
        QueryDef("q19", "global", """
            SELECT i.I_BRAND, ca.CA_STATE, SUM(ss.SS_SALES_PRICE) AS ext_price
            FROM DATE_DIM d, STORE_SALES ss, ITEM i, CUSTOMER c, CUSTOMER_ADDRESS ca
            WHERE d.D_DATE_SK = ss.SS_SOLD_DATE_SK AND ss.SS_ITEM_SK = i.I_ITEM_SK
              AND ss.SS_CUSTOMER_SK = c.C_CUSTOMER_SK AND c.C_CURRENT_ADDR_SK = ca.CA_ADDRESS_SK
              AND d.D_MOY = 11 AND d.D_YEAR = 1999
            GROUP BY i.I_BRAND, ca.CA_STATE
        """, description="brand revenue by customer state (snowflake)"),
        QueryDef("q45", "global", """
            SELECT ca.CA_CITY, i.I_CATEGORY, SUM(ws.WS_SALES_PRICE) AS total_sales
            FROM WEB_SALES ws, CUSTOMER c, CUSTOMER_ADDRESS ca, ITEM i, DATE_DIM d
            WHERE ws.WS_BILL_CUSTOMER_SK = c.C_CUSTOMER_SK
              AND c.C_CURRENT_ADDR_SK = ca.CA_ADDRESS_SK AND ws.WS_ITEM_SK = i.I_ITEM_SK
              AND ws.WS_SOLD_DATE_SK = d.D_DATE_SK AND d.D_QOY = 2 AND d.D_YEAR = 2000
            GROUP BY ca.CA_CITY, i.I_CATEGORY
        """, description="web sales by city and category"),
        QueryDef("q61", "global", """
            SELECT p.P_CHANNEL_EMAIL, p.P_CHANNEL_TV, SUM(ss.SS_SALES_PRICE) AS promotions
            FROM STORE_SALES ss, PROMOTION p, DATE_DIM d, ITEM i, STORE s
            WHERE ss.SS_PROMO_SK = p.P_PROMO_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND ss.SS_ITEM_SK = i.I_ITEM_SK AND ss.SS_STORE_SK = s.S_STORE_SK
              AND i.I_CATEGORY = 'Jewelry' AND d.D_YEAR = 1999 AND s.S_STATE = 'CA'
            GROUP BY p.P_CHANNEL_EMAIL, p.P_CHANNEL_TV
        """, description="promotional channel revenue"),
        QueryDef("q65", "global", """
            SELECT s.S_STORE_NAME, i.I_ITEM_ID, SUM(ss.SS_SALES_PRICE) AS revenue
            FROM STORE s, STORE_SALES ss, ITEM i, DATE_DIM d
            WHERE ss.SS_STORE_SK = s.S_STORE_SK AND ss.SS_ITEM_SK = i.I_ITEM_SK
              AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK AND d.D_YEAR = 2000
            GROUP BY s.S_STORE_NAME, i.I_ITEM_ID
        """, description="store/item revenue matrix"),
        QueryDef("q69", "global", """
            SELECT ca.CA_STATE, c.C_PREFERRED_CUST_FLAG, COUNT(*) AS cnt
            FROM CUSTOMER c, CUSTOMER_ADDRESS ca, STORE_SALES ss, DATE_DIM d
            WHERE c.C_CURRENT_ADDR_SK = ca.CA_ADDRESS_SK
              AND ss.SS_CUSTOMER_SK = c.C_CUSTOMER_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND d.D_YEAR = 1999 AND d.D_QOY = 1
            GROUP BY ca.CA_STATE, c.C_PREFERRED_CUST_FLAG
        """, description="customer demographics by state"),
        QueryDef("q88", "global", """
            SELECT s.S_STORE_NAME, d.D_MOY, COUNT(*) AS cnt
            FROM STORE_SALES ss, STORE s, DATE_DIM d
            WHERE ss.SS_STORE_SK = s.S_STORE_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND ss.SS_QUANTITY BETWEEN 20 AND 80 AND d.D_YEAR = 1999
            GROUP BY s.S_STORE_NAME, d.D_MOY
        """, description="store traffic by month"),
        QueryDef("q60", "global", """
            SELECT i.I_CATEGORY, d.D_YEAR, SUM(ws.WS_SALES_PRICE) AS total_sales
            FROM WEB_SALES ws, ITEM i, DATE_DIM d, CUSTOMER c
            WHERE ws.WS_ITEM_SK = i.I_ITEM_SK AND ws.WS_SOLD_DATE_SK = d.D_DATE_SK
              AND ws.WS_BILL_CUSTOMER_SK = c.C_CUSTOMER_SK AND d.D_MOY = 9
            GROUP BY i.I_CATEGORY, d.D_YEAR
        """, description="web sales by category and year"),
        # --- scalar global aggregation ------------------------------------
        QueryDef("q32", "scalar", """
            SELECT SUM(cs.CS_SALES_PRICE) AS excess_discount
            FROM CATALOG_SALES cs, ITEM i, DATE_DIM d
            WHERE cs.CS_ITEM_SK = i.I_ITEM_SK AND cs.CS_SOLD_DATE_SK = d.D_DATE_SK
              AND i.I_MANUFACT_ID = 7 AND d.D_YEAR = 1999
        """, description="excess discount amount"),
        QueryDef("q92", "scalar", """
            SELECT SUM(ws.WS_SALES_PRICE) AS excess
            FROM WEB_SALES ws, ITEM i, DATE_DIM d
            WHERE ws.WS_ITEM_SK = i.I_ITEM_SK AND ws.WS_SOLD_DATE_SK = d.D_DATE_SK
              AND i.I_MANUFACT_ID = 3 AND d.D_YEAR = 2000
              AND ws.WS_SALES_PRICE > (SELECT AVG(ws2.WS_SALES_PRICE) FROM WEB_SALES ws2
                                       WHERE ws2.WS_ITEM_SK = i.I_ITEM_SK)
        """, correlated=True, description="web sales above the item's average (correlated scalar)"),
        QueryDef("q96", "scalar", """
            SELECT COUNT(*) AS cnt
            FROM STORE_SALES ss, STORE s, DATE_DIM d
            WHERE ss.SS_STORE_SK = s.S_STORE_SK AND ss.SS_SOLD_DATE_SK = d.D_DATE_SK
              AND s.S_NUMBER_EMPLOYEES BETWEEN 100 AND 250 AND d.D_MOY = 6
        """, description="store sales count for mid-size stores"),
        QueryDef("q90", "scalar", """
            SELECT COUNT(*) AS am_count
            FROM WEB_SALES ws, DATE_DIM d
            WHERE ws.WS_SOLD_DATE_SK = d.D_DATE_SK AND d.D_QOY = 1 AND d.D_YEAR = 2000
              AND ws.WS_QUANTITY BETWEEN 10 AND 60
              AND ws.WS_BILL_CUSTOMER_SK IN (SELECT c.C_CUSTOMER_SK FROM CUSTOMER c
                                             WHERE c.C_PREFERRED_CUST_FLAG = 'Y')
        """, description="quarterly web sales of preferred customers (IN subquery)"),
    ]


def tpcds_workload(scale: float = 0.2, seed: int = 23) -> Workload:
    started = time.perf_counter()
    catalog = generate_tpcds(scale=scale, seed=seed)
    return Workload(
        name="tpcds",
        catalog=catalog,
        queries=tpcds_queries(),
        scale=scale,
        generation_seconds=time.perf_counter() - started,
    )
