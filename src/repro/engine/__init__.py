"""RDBMS-style single-node baseline engine (binary join plans over indexes)."""

from .executor import RelationalExecutor
from .indexes import HashIndex, IndexCatalog, SortedIndex, build_indexes, indexed_columns
from .operators import (
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexScan,
    Materialize,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    SeqScan,
    SortMergeJoin,
)
from .planner import Planner, PlannerOptions, PlanningError

__all__ = [
    "Distinct",
    "Filter",
    "HashAggregate",
    "HashIndex",
    "HashJoin",
    "IndexCatalog",
    "IndexScan",
    "Materialize",
    "NestedLoopJoin",
    "PhysicalOperator",
    "Planner",
    "PlannerOptions",
    "PlanningError",
    "Project",
    "RelationalExecutor",
    "SeqScan",
    "SortMergeJoin",
    "SortedIndex",
    "build_indexes",
    "indexed_columns",
]
