"""Join-order planning for the RDBMS-style baseline engine.

A deliberately classical planner: push selections into scans, pick a greedy
left-deep join order driven by estimated (filtered) cardinalities, use the
configured binary join algorithm (hash / sort-merge / nested-loop), and
finish with residual filters, aggregation, projection and DISTINCT.  This
mirrors how the paper's reference RDBMSs execute the TPC queries and gives
the reproduction a "binary join plan" comparison point for every
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tag.statistics import CatalogStatistics

from ..algebra.expressions import Expression
from ..algebra.logical import JoinCondition, QuerySpec
from ..relational.catalog import Catalog
from .operators import (
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    SeqScan,
    SortMergeJoin,
)


class PlanningError(ValueError):
    """Raised when the baseline planner cannot handle a query."""


@dataclass
class PlannerOptions:
    """Configuration emulating the different reference systems."""

    join_algorithm: str = "hash"  # "hash" | "sort_merge" | "nested_loop"
    selectivity_guess: float = 0.3  # fallback fraction of rows passing a filter
    use_statistics: bool = True  # NDV-driven selectivity when statistics exist


class Planner:
    """Builds a physical operator tree for a QuerySpec."""

    def __init__(
        self,
        catalog: Catalog,
        options: Optional[PlannerOptions] = None,
        statistics: Optional["CatalogStatistics"] = None,
    ) -> None:
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self._statistics = statistics

    @property
    def statistics(self) -> Optional["CatalogStatistics"]:
        """Catalog statistics, refreshed whenever the catalog version changes."""
        if not self.options.use_statistics:
            return None
        from ..tag.statistics import refreshed_statistics

        self._statistics = refreshed_statistics(self.catalog, self._statistics)
        return self._statistics

    # ------------------------------------------------------------------
    def plan(
        self,
        spec: QuerySpec,
        extra_filters: Optional[Dict[str, List[Expression]]] = None,
        extra_residuals: Optional[Sequence[Expression]] = None,
    ) -> PhysicalOperator:
        extra_filters = extra_filters or {}
        scans = {
            table_ref.alias: SeqScan(
                self.catalog.relation(table_ref.table),
                table_ref.alias,
                predicates=list(spec.filters_for(table_ref.alias))
                + list(extra_filters.get(table_ref.alias, [])),
            )
            for table_ref in spec.tables
        }
        estimates = {
            alias: self._estimate(spec, extra_filters, alias) for alias in scans
        }

        plan = self._join_order(spec, scans, estimates)

        residuals = list(spec.residual_predicates) + list(extra_residuals or [])
        if residuals:
            plan = Filter(plan, residuals)

        if spec.aggregates:
            group_columns = [
                f"{group_col.table}.{group_col.column}" if group_col.table else group_col.column
                for group_col in spec.group_by
            ]
            plan = HashAggregate(plan, group_columns, spec.aggregates, spec.output)
        elif spec.output:
            plan = Project(plan, spec.output)
        if spec.distinct and not spec.aggregates:
            plan = Distinct(plan)
        return plan

    # ------------------------------------------------------------------
    def _estimate(
        self, spec: QuerySpec, extra_filters: Dict[str, List[Expression]], alias: str
    ) -> float:
        """Filtered cardinality of ``alias``: NDV-driven when statistics exist."""
        table = spec.table_for(alias)
        predicates = list(spec.filters_for(alias)) + list(extra_filters.get(alias, []))
        statistics = self.statistics
        if statistics is not None:
            return statistics.estimated_rows(table, predicates)
        cardinality = float(len(self.catalog.relation(table)))
        return cardinality * (self.options.selectivity_guess ** len(predicates))

    def _join_order(
        self,
        spec: QuerySpec,
        scans: Dict[str, SeqScan],
        estimates: Dict[str, float],
    ) -> PhysicalOperator:
        """Greedy left-deep join order: start small, always stay connected."""
        remaining = set(scans)
        if not remaining:
            raise PlanningError("query has no tables")
        current_alias = min(remaining, key=lambda alias: estimates[alias])
        plan: PhysicalOperator = scans[current_alias]
        joined = {current_alias}
        remaining.discard(current_alias)

        while remaining:
            candidates = []
            for alias in remaining:
                conditions = self._conditions_between(spec, joined, alias)
                candidates.append((bool(conditions), -len(conditions), estimates[alias], alias))
            # prefer connected aliases, then more join conditions, then smaller
            candidates.sort(key=lambda item: (not item[0], item[1], item[2], item[3]))
            _connected, _, _, alias = candidates[0]
            conditions = self._conditions_between(spec, joined, alias)
            plan = self._make_join(plan, scans[alias], conditions, joined, alias)
            joined.add(alias)
            remaining.discard(alias)
        return plan

    def _conditions_between(
        self, spec: QuerySpec, joined: Set[str], alias: str
    ) -> List[JoinCondition]:
        conditions = []
        for condition in spec.join_conditions:
            if condition.left_alias in joined and condition.right_alias == alias:
                conditions.append(condition)
            elif condition.right_alias in joined and condition.left_alias == alias:
                conditions.append(condition.reversed())
        return conditions

    def _make_join(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        conditions: List[JoinCondition],
        joined: Set[str],
        alias: str,
    ) -> PhysicalOperator:
        if not conditions:
            # no connecting condition: a Cartesian product via nested loops
            return NestedLoopJoin(left, right)
        left_keys = [f"{condition.left_alias}.{condition.left_column}" for condition in conditions]
        right_keys = [
            f"{condition.right_alias}.{condition.right_column}" for condition in conditions
        ]
        algorithm = self.options.join_algorithm
        if algorithm == "hash":
            return HashJoin(left, right, left_keys, right_keys)
        if algorithm == "sort_merge":
            return SortMergeJoin(left, right, left_keys, right_keys)
        if algorithm == "nested_loop":
            predicates = [
                _equality(condition) for condition in conditions
            ]
            return NestedLoopJoin(left, right, predicates)
        raise PlanningError(f"unknown join algorithm {algorithm!r}")


def _equality(condition: JoinCondition) -> Expression:
    from ..algebra.expressions import ColumnRef, Comparison

    return Comparison(
        "=",
        ColumnRef(condition.left_column, condition.left_alias),
        ColumnRef(condition.right_column, condition.right_alias),
    )
