"""The RDBMS-style baseline executor.

Stands in for the paper's reference relational systems (PostgreSQL,
RDBMS-X, RDBMS-Y): a single-node engine evaluating QuerySpec blocks with
binary join plans over in-memory relations plus PK/FK indexes.  It shares
the QuerySpec IR, expression machinery and result shape with the TAG-join
executor so the benchmark harness can compare them query for query — and
the test suite uses it as the ground truth the vertex-centric results must
match.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tag.statistics import CatalogStatistics

from ..algebra.expressions import Expression
from ..algebra.logical import QuerySpec
from ..bsp.metrics import RunMetrics
from ..core import operations as ops
from ..core.cancellation import check_cancelled
from ..core.executor import QueryResult
from ..core.subquery import compile_subquery_filters
from ..relational.catalog import Catalog
from .indexes import IndexCatalog, build_indexes
from .operators import PhysicalOperator
from .planner import Planner, PlannerOptions


class RelationalExecutor:
    """Single-node binary-join baseline ("the RDBMS comfort zone")."""

    def __init__(
        self,
        catalog: Catalog,
        join_algorithm: str = "hash",
        build_pk_fk_indexes: bool = True,
        name: Optional[str] = None,
        statistics: Optional["CatalogStatistics"] = None,
    ) -> None:
        self.catalog = catalog
        self.options = PlannerOptions(join_algorithm=join_algorithm)
        self.planner = Planner(catalog, self.options, statistics=statistics)
        self.indexes: Optional[IndexCatalog] = (
            build_indexes(catalog) if build_pk_fk_indexes else None
        )
        # statistics are load-time work, alongside index building
        self.planner.statistics
        self.name = name or f"rdbms[{join_algorithm}]"

    # ------------------------------------------------------------------
    def apply_delta(
        self,
        relation_name: str,
        new_rows: List[List[Any]],
        start_position: int,
        catalog_version: int,
    ) -> None:
        """Index a data-only append instead of being retired.

        The relation's row list is shared with the catalog, so the only
        executor-private state to patch is the PK/FK index catalog: each
        appended row is inserted into the relevant hash buckets and
        sorted-index slots (local work, the point of the paper's index
        maintenance comparison).  The planner's statistics refresh
        through the shared :class:`CatalogStatistics` object.
        """
        del catalog_version  # the rdbms engine binds no version
        if self.indexes is not None:
            self.indexes.apply_delta(
                self.catalog.relation(relation_name), new_rows, start_position
            )

    def apply_delete(
        self,
        relation_name: str,
        positions: List[int],
        deleted_rows: List[List[Any]],
        catalog_version: int,
    ) -> None:
        """Unindex a data-only delete instead of being retired.

        Mirror of :meth:`apply_delta`: the rows are already tombstoned in
        the shared relation (physical positions unchanged), so the only
        executor-private state to patch is the PK/FK index catalog —
        remove exactly the deleted rows' entries.
        """
        del catalog_version  # the rdbms engine binds no version
        if self.indexes is not None:
            self.indexes.apply_delete(
                self.catalog.relation(relation_name), deleted_rows, positions
            )

    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> QueryResult:
        spec.validate(self.catalog)
        metrics = RunMetrics(label=f"{self.name}:{spec.name}")
        started = time.perf_counter()
        rows, columns, aggregation_class = self._execute_block(spec)
        metrics.wall_time_seconds = time.perf_counter() - started
        return QueryResult(rows, columns, metrics, aggregation_class)

    def execute_sql(self, sql: str) -> QueryResult:
        from ..sql import parse_and_bind

        return self.execute(parse_and_bind(sql, self.catalog))

    def explain(self, spec: QuerySpec, analyze: bool = False) -> str:
        """The physical plan as an indented string (EXPLAIN [ANALYZE])."""
        spec.validate(self.catalog)
        plan = self._plan_block(spec)
        rendered = plan.explain()
        if analyze:
            result = self.execute(spec)
            rendered += (
                f"\nactual: {len(result.rows)} rows, "
                f"{result.metrics.wall_time_seconds:.4f}s wall"
            )
        return rendered

    # ------------------------------------------------------------------
    def _execute_block(self, spec: QuerySpec):
        plan = self._plan_block(spec)
        # drain the operator tree with a periodic cooperative cancellation
        # check so deadline-exceeded queries stop at a batch boundary
        rows: List[Any] = []
        append = rows.append
        for index, row in enumerate(plan):
            if not (index & 1023):
                check_cancelled()
            append(row)
        columns = self._columns(spec)
        return rows, columns, spec.aggregation_class(self.catalog)

    def _plan_block(self, spec: QuerySpec) -> PhysicalOperator:
        extra_filters: Dict[str, List[Expression]] = {}
        extra_residuals: List[Expression] = []
        if spec.subqueries:
            extra_filters, extra_residuals = compile_subquery_filters(
                spec.subqueries, lambda inner: self._nested_rows(inner)
            )
        return self.planner.plan(spec, extra_filters, extra_residuals)

    def _nested_rows(self, inner: QuerySpec) -> List[Dict[str, Any]]:
        inner.validate(self.catalog)
        rows, _columns, _agg = self._execute_block(inner)
        if inner.distinct and not inner.aggregates:
            rows = ops.deduplicate(rows)
        return rows

    def _columns(self, spec: QuerySpec) -> List[str]:
        # shared across all engines so results line up column for column
        return spec.result_columns()

    # ------------------------------------------------------------------
    def loading_report(self) -> Dict[str, Any]:
        """Base-table and index loading statistics (Tables 1/2, Figure 14)."""
        statistics = self.planner.statistics
        report = {
            "data_bytes": self.catalog.total_data_size_bytes(),
            "index_bytes": self.indexes.size_bytes() if self.indexes else 0,
            "index_build_seconds": self.indexes.build_seconds if self.indexes else 0.0,
            "index_count": self.indexes.index_count() if self.indexes else 0,
            "statistics_seconds": statistics.collection_seconds if statistics else 0.0,
        }
        report["total_bytes"] = report["data_bytes"] + report["index_bytes"]
        return report
