"""Index structures for the RDBMS-style baseline engine.

The paper's comparison systems maintain B-tree primary/foreign key indexes
whose build time and size are part of the loading experiments (Tables 1/2
and Figure 14).  We provide a hash index (used by the hash-join and
index-nested-loop operators) and a sorted index standing in for a B-tree
(binary-search lookups, range scans), plus a builder that creates them for
every primary key and foreign key column of a catalog, as the TPC
benchmark protocol prescribes.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..relational.catalog import Catalog
from ..relational.relation import Relation
from ..relational.types import NULL, value_size_bytes


class HashIndex:
    """Equality index: value -> list of row positions.

    Positions are *physical* (``relation[position]`` resolves them), so
    they stay valid across tombstone deletes — a delete removes its
    entries instead of shifting everyone else's.
    """

    def __init__(self, relation: Relation, column: str) -> None:
        self.relation_name = relation.name
        self.column = column
        self._buckets: Dict[Any, List[int]] = {}
        position = relation.schema.position(column)
        for row_index, row in relation.live_items():
            value = row[position]
            if value is NULL:
                continue
            self._buckets.setdefault(value, []).append(row_index)

    def add_row(self, value: Any, row_position: int) -> None:
        """Index one appended row (delta maintenance; NULLs are skipped)."""
        if value is NULL:
            return
        self._buckets.setdefault(value, []).append(row_position)

    def remove_row(self, value: Any, row_position: int) -> None:
        """Drop one deleted row's entry (delta maintenance)."""
        if value is NULL:
            return
        positions = self._buckets.get(value)
        if positions is None:
            return
        try:
            positions.remove(row_position)
        except ValueError:
            return
        if not positions:
            del self._buckets[value]

    def lookup(self, value: Any) -> List[int]:
        return self._buckets.get(value, [])

    def __contains__(self, value: Any) -> bool:
        return value in self._buckets

    def distinct_values(self) -> int:
        return len(self._buckets)

    def size_bytes(self) -> int:
        total = 0
        for value, positions in self._buckets.items():
            total += value_size_bytes(value) + 8 * len(positions)
        return total


class SortedIndex:
    """A B-tree stand-in: sorted (value, row position) pairs with binary search."""

    def __init__(self, relation: Relation, column: str) -> None:
        self.relation_name = relation.name
        self.column = column
        position = relation.schema.position(column)
        entries = [
            (row[position], row_index)
            for row_index, row in relation.live_items()
            if row[position] is not NULL
        ]
        entries.sort(key=lambda entry: (str(type(entry[0])), entry[0]))
        self._keys = [entry[0] for entry in entries]
        self._positions = [entry[1] for entry in entries]

    def add_row(self, value: Any, row_position: int) -> None:
        """Insert one appended row at its sorted slot (the B-tree insert)."""
        if value is NULL:
            return
        # must match the build-time sort order: (type name, value); insert
        # *after* equal keys — the build's stable sort keeps row order, and
        # appended rows carry the highest positions
        slot = bisect.bisect_right(
            self._keys,
            (str(type(value)), value),
            key=lambda key: (str(type(key)), key),
        )
        self._keys.insert(slot, value)
        self._positions.insert(slot, row_position)

    def remove_row(self, value: Any, row_position: int) -> None:
        """Drop one deleted row's entry (the B-tree delete)."""
        if value is NULL:
            return
        sort_key = (str(type(value)), value)
        left = bisect.bisect_left(
            self._keys, sort_key, key=lambda key: (str(type(key)), key)
        )
        right = bisect.bisect_right(
            self._keys, sort_key, key=lambda key: (str(type(key)), key)
        )
        for slot in range(left, right):
            if self._positions[slot] == row_position:
                del self._keys[slot]
                del self._positions[slot]
                return

    def lookup(self, value: Any) -> List[int]:
        left = bisect.bisect_left(self._keys, value)
        right = bisect.bisect_right(self._keys, value)
        return self._positions[left:right]

    def range(self, low: Any, high: Any) -> List[int]:
        """Row positions with ``low <= value <= high``."""
        left = bisect.bisect_left(self._keys, low)
        right = bisect.bisect_right(self._keys, high)
        return self._positions[left:right]

    def size_bytes(self) -> int:
        return sum(value_size_bytes(key) + 8 for key in self._keys)

    def __len__(self) -> int:
        return len(self._keys)


@dataclass
class IndexCatalog:
    """All indexes built for a catalog, with build statistics."""

    hash_indexes: Dict[Tuple[str, str], HashIndex] = field(default_factory=dict)
    sorted_indexes: Dict[Tuple[str, str], SortedIndex] = field(default_factory=dict)
    build_seconds: float = 0.0

    def hash_index(self, relation_name: str, column: str) -> Optional[HashIndex]:
        return self.hash_indexes.get((relation_name, column))

    def sorted_index(self, relation_name: str, column: str) -> Optional[SortedIndex]:
        return self.sorted_indexes.get((relation_name, column))

    def apply_delta(
        self, relation: Relation, rows: List[Any], start_position: int
    ) -> int:
        """Index ``rows`` appended to ``relation`` starting at ``start_position``.

        Touches only this relation's indexes; returns how many index
        structures were patched.  Row positions continue the relation's
        0-based numbering, matching what the full build would assign.
        """
        schema = relation.schema
        patched = 0
        for (relation_name, column), index in self.hash_indexes.items():
            if relation_name != relation.name:
                continue
            position = schema.position(column)
            for offset, row in enumerate(rows):
                index.add_row(row[position], start_position + offset)
            patched += 1
        for (relation_name, column), index in self.sorted_indexes.items():
            if relation_name != relation.name:
                continue
            position = schema.position(column)
            for offset, row in enumerate(rows):
                index.add_row(row[position], start_position + offset)
            patched += 1
        return patched

    def apply_delete(
        self, relation: Relation, rows: List[Any], positions: List[int]
    ) -> int:
        """Drop index entries for ``rows`` deleted at physical ``positions``.

        The deletion mirror of :meth:`apply_delta`: touches only this
        relation's indexes, removes exactly the (value, position) pairs
        the deleted rows contributed — surviving positions never move,
        so nothing else needs rewriting.  Returns structures patched.
        """
        schema = relation.schema
        patched = 0
        for index_map in (self.hash_indexes, self.sorted_indexes):
            for (relation_name, column), index in index_map.items():
                if relation_name != relation.name:
                    continue
                column_position = schema.position(column)
                for row, row_position in zip(rows, positions):
                    index.remove_row(row[column_position], row_position)
                patched += 1
        return patched

    def size_bytes(self) -> int:
        total = sum(index.size_bytes() for index in self.hash_indexes.values())
        total += sum(index.size_bytes() for index in self.sorted_indexes.values())
        return total

    def index_count(self) -> int:
        return len(self.hash_indexes) + len(self.sorted_indexes)


def indexed_columns(catalog: Catalog) -> List[Tuple[str, str]]:
    """The (relation, column) pairs the TPC protocol indexes: PKs and FKs."""
    columns: List[Tuple[str, str]] = []
    for relation in catalog:
        schema = relation.schema
        for key_column in schema.primary_key:
            columns.append((schema.name, key_column))
        for fk in schema.foreign_keys:
            for fk_column in fk.columns:
                pair = (schema.name, fk_column)
                if pair not in columns:
                    columns.append(pair)
    return columns


def build_indexes(catalog: Catalog, kind: str = "both") -> IndexCatalog:
    """Build PK/FK indexes for every relation of ``catalog``.

    Args:
        catalog: the database to index.
        kind: "hash", "sorted" or "both" (both mirrors an RDBMS keeping a
            B-tree for constraints plus hash structures for joins).
    """
    indexes = IndexCatalog()
    started = time.perf_counter()
    for relation_name, column in indexed_columns(catalog):
        relation = catalog.relation(relation_name)
        if kind in ("hash", "both"):
            indexes.hash_indexes[(relation_name, column)] = HashIndex(relation, column)
        if kind in ("sorted", "both"):
            indexes.sorted_indexes[(relation_name, column)] = SortedIndex(relation, column)
    indexes.build_seconds = time.perf_counter() - started
    return indexes
