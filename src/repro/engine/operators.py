"""Physical operators of the RDBMS-style baseline engine (iterator model).

The reference systems in the paper (PostgreSQL, RDBMS-X, RDBMS-Y) evaluate
queries with binary join plans built from sequential/index scans, hash
joins, sort-merge joins, nested-loop joins and hash aggregation — exactly
the operators implemented here.  Rows are dictionaries keyed by qualified
column names (``alias.column``), so the same expression machinery used by
the TAG-join executor evaluates predicates and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.expressions import Expression
from ..algebra.logical import AggregateSpec, OutputColumn
from ..core import operations as ops
from ..relational.relation import Relation
from ..relational.types import NULL

RowDict = Dict[str, Any]


@dataclass
class OperatorStats:
    """Rows produced / consumed, for EXPLAIN-style diagnostics."""

    rows_out: int = 0
    rows_in: int = 0


class PhysicalOperator:
    """Base class: a restartable iterator of result rows."""

    def __init__(self) -> None:
        self.stats = OperatorStats()

    def rows(self) -> Iterator[RowDict]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[RowDict]:
        for row in self.rows():
            self.stats.rows_out += 1
            yield row

    def explain(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()


class SeqScan(PhysicalOperator):
    """Sequential scan of a relation under an alias, with pushed-down filters."""

    def __init__(
        self,
        relation: Relation,
        alias: str,
        predicates: Sequence[Expression] = (),
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__()
        self.relation = relation
        self.alias = alias
        self.predicates = list(predicates)
        self.columns = list(columns) if columns is not None else None

    def rows(self) -> Iterator[RowDict]:
        names = self.relation.schema.column_names
        keep = set(self.columns) if self.columns is not None else None
        for row in self.relation:
            context = {
                f"{self.alias}.{name}": value for name, value in zip(names, row)
            }
            self.stats.rows_in += 1
            if self.predicates and not ops.passes_filters(context, self.predicates):
                continue
            if keep is None:
                yield context
            else:
                yield {
                    key: value
                    for key, value in context.items()
                    if key.split(".", 1)[1] in keep
                }

    def describe(self) -> str:
        return f"SeqScan({self.relation.name} AS {self.alias}, filters={len(self.predicates)})"


class IndexScan(PhysicalOperator):
    """Equality index scan: returns the rows whose column equals a value."""

    def __init__(
        self,
        relation: Relation,
        alias: str,
        positions: Sequence[int],
        predicates: Sequence[Expression] = (),
    ) -> None:
        super().__init__()
        self.relation = relation
        self.alias = alias
        self.positions = list(positions)
        self.predicates = list(predicates)

    def rows(self) -> Iterator[RowDict]:
        names = self.relation.schema.column_names
        for position in self.positions:
            row = self.relation[position]
            context = {f"{self.alias}.{name}": value for name, value in zip(names, row)}
            self.stats.rows_in += 1
            if self.predicates and not ops.passes_filters(context, self.predicates):
                continue
            yield context

    def describe(self) -> str:
        return f"IndexScan({self.relation.name} AS {self.alias}, {len(self.positions)} hits)"


class Filter(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, predicates: Sequence[Expression]) -> None:
        super().__init__()
        self.child = child
        self.predicates = list(predicates)

    def rows(self) -> Iterator[RowDict]:
        for row in self.child:
            self.stats.rows_in += 1
            if ops.passes_filters(row, self.predicates):
                yield row

    def describe(self) -> str:
        return f"Filter({len(self.predicates)} predicates)"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)


class HashJoin(PhysicalOperator):
    """Classic build/probe equi-join on one or more key pairs."""

    def __init__(
        self,
        build: PhysicalOperator,
        probe: PhysicalOperator,
        build_keys: Sequence[str],
        probe_keys: Sequence[str],
    ) -> None:
        super().__init__()
        self.build = build
        self.probe = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)

    def rows(self) -> Iterator[RowDict]:
        table: Dict[Tuple[Any, ...], List[RowDict]] = {}
        for row in self.build:
            key = tuple(row.get(column) for column in self.build_keys)
            if any(part is NULL for part in key):
                continue
            table.setdefault(key, []).append(row)
            self.stats.rows_in += 1
        for row in self.probe:
            key = tuple(row.get(column) for column in self.probe_keys)
            if any(part is NULL for part in key):
                continue
            self.stats.rows_in += 1
            for match in table.get(key, ()):
                merged = dict(match)
                merged.update(row)
                yield merged

    def describe(self) -> str:
        return f"HashJoin({self.build_keys} = {self.probe_keys})"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.build, self.probe)


class SortMergeJoin(PhysicalOperator):
    """Sort both inputs on the join key, then merge (single-key joins)."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)

    def rows(self) -> Iterator[RowDict]:
        def sort_key(row: RowDict, keys: List[str]):
            return tuple(
                (str(type(row.get(column))), row.get(column)) for column in keys
            )

        left_rows = [
            row
            for row in self.left
            if not any(row.get(column) is NULL for column in self.left_keys)
        ]
        right_rows = [
            row
            for row in self.right
            if not any(row.get(column) is NULL for column in self.right_keys)
        ]
        self.stats.rows_in += len(left_rows) + len(right_rows)
        left_rows.sort(key=lambda row: sort_key(row, self.left_keys))
        right_rows.sort(key=lambda row: sort_key(row, self.right_keys))

        left_index = right_index = 0
        while left_index < len(left_rows) and right_index < len(right_rows):
            left_value = sort_key(left_rows[left_index], self.left_keys)
            right_value = sort_key(right_rows[right_index], self.right_keys)
            if left_value < right_value:
                left_index += 1
            elif left_value > right_value:
                right_index += 1
            else:
                # gather the equal runs on both sides and emit their product
                left_end = left_index
                while (
                    left_end < len(left_rows)
                    and sort_key(left_rows[left_end], self.left_keys) == left_value
                ):
                    left_end += 1
                right_end = right_index
                while (
                    right_end < len(right_rows)
                    and sort_key(right_rows[right_end], self.right_keys) == right_value
                ):
                    right_end += 1
                for i in range(left_index, left_end):
                    for j in range(right_index, right_end):
                        merged = dict(left_rows[i])
                        merged.update(right_rows[j])
                        yield merged
                left_index, right_index = left_end, right_end

    def describe(self) -> str:
        return f"SortMergeJoin({self.left_keys} = {self.right_keys})"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)


class NestedLoopJoin(PhysicalOperator):
    """Tuple-at-a-time join on an arbitrary predicate (or a cross product)."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        predicates: Sequence[Expression] = (),
    ) -> None:
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.predicates = list(predicates)

    def rows(self) -> Iterator[RowDict]:
        inner_rows = list(self.inner)
        self.stats.rows_in += len(inner_rows)
        for outer_row in self.outer:
            self.stats.rows_in += 1
            for inner_row in inner_rows:
                merged = dict(outer_row)
                merged.update(inner_row)
                if not self.predicates or ops.passes_filters(merged, self.predicates):
                    yield merged

    def describe(self) -> str:
        return f"NestedLoopJoin({len(self.predicates)} predicates)"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer, self.inner)


class Project(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, output: Sequence[OutputColumn]) -> None:
        super().__init__()
        self.child = child
        self.output = list(output)

    def rows(self) -> Iterator[RowDict]:
        for row in self.child:
            self.stats.rows_in += 1
            yield ops.evaluate_output_columns(self.output, row)

    def describe(self) -> str:
        return f"Project({[column.alias for column in self.output]})"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)


class HashAggregate(PhysicalOperator):
    """Hash GROUP BY with the shared partial-aggregate machinery."""

    def __init__(
        self,
        child: PhysicalOperator,
        group_columns: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        output: Sequence[OutputColumn] = (),
    ) -> None:
        super().__init__()
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self.output = list(output)

    def rows(self) -> Iterator[RowDict]:
        partials: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        samples: Dict[Tuple[Any, ...], RowDict] = {}
        for row in self.child:
            self.stats.rows_in += 1
            key = ops.group_key(self.group_columns, row)
            if key in partials:
                partials[key] = ops.accumulate_partial(partials[key], self.aggregates, row)
            else:
                partials[key] = ops.accumulate_partial(
                    ops.empty_partial(self.aggregates), self.aggregates, row
                )
                samples[key] = row
        if not partials and not self.group_columns:
            final = ops.finalize_partial(ops.empty_partial(self.aggregates), self.aggregates)
            yield final
            return
        for key, partial in partials.items():
            final = ops.finalize_partial(partial, self.aggregates)
            result = ops.evaluate_output_columns(self.output, samples[key])
            result.update(final)
            yield result

    def describe(self) -> str:
        return f"HashAggregate(group={self.group_columns}, aggs={len(self.aggregates)})"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)


class Distinct(PhysicalOperator):
    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__()
        self.child = child

    def rows(self) -> Iterator[RowDict]:
        seen = set()
        for row in self.child:
            self.stats.rows_in += 1
            key = tuple(sorted(row.items(), key=lambda item: item[0]))
            if key not in seen:
                seen.add(key)
                yield row

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)


class Materialize(PhysicalOperator):
    """Materialise a row list as an operator (used for subquery results)."""

    def __init__(self, rows_list: List[RowDict], label: str = "materialized") -> None:
        super().__init__()
        self._rows = rows_list
        self.label = label

    def rows(self) -> Iterator[RowDict]:
        return iter(self._rows)

    def describe(self) -> str:
        return f"Materialize({self.label}, {len(self._rows)} rows)"
