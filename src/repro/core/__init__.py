"""TAG-join: the paper's core contribution (plans, vertex programs, executor)."""

from .cartesian import CartesianProductA, cartesian_product_b, cartesian_product_rows
from .compiler import CompiledFragment, CompileError, compile_fragment
from .cyclic import CycleQueryProgram, CycleRelation, TriangleQueryProgram
from .executor import ExecutionError, QueryResult, StaleEngineError, TagJoinExecutor
from .hypergraph import (
    Hypergraph,
    HypergraphError,
    JoinVariable,
    build_hypergraph,
    connected_components,
    detect_simple_cycle,
)
from .jointree import (
    JoinTree,
    JoinTreeError,
    TreeEdge,
    build_join_tree,
    enumerate_rootings,
    reroot,
)
from .operations import CallablePredicate
from .tag_plan import (
    PlanEdge,
    PlanNode,
    TagPlan,
    TraversalStep,
    build_tag_plan,
    full_schedule,
    generate_label_list,
    generate_steps,
    reduction_schedule,
)
from .twoway import (
    AntiJoinProgram,
    JoinPair,
    OuterJoinKind,
    OuterJoinProgram,
    SemiJoinProgram,
    TwoWayJoinProgram,
)
from .vertex_program import (
    FragmentConfig,
    Phase,
    ScheduledStep,
    TagJoinProgram,
    build_schedule,
)

__all__ = [
    "AntiJoinProgram",
    "CallablePredicate",
    "CartesianProductA",
    "CompileError",
    "CompiledFragment",
    "CycleQueryProgram",
    "CycleRelation",
    "ExecutionError",
    "FragmentConfig",
    "Hypergraph",
    "HypergraphError",
    "JoinPair",
    "JoinTree",
    "JoinTreeError",
    "JoinVariable",
    "OuterJoinKind",
    "OuterJoinProgram",
    "Phase",
    "PlanEdge",
    "PlanNode",
    "QueryResult",
    "ScheduledStep",
    "SemiJoinProgram",
    "StaleEngineError",
    "TagJoinExecutor",
    "TagJoinProgram",
    "TagPlan",
    "TraversalStep",
    "TreeEdge",
    "TriangleQueryProgram",
    "TwoWayJoinProgram",
    "build_hypergraph",
    "build_join_tree",
    "build_schedule",
    "build_tag_plan",
    "cartesian_product_b",
    "cartesian_product_rows",
    "compile_fragment",
    "connected_components",
    "detect_simple_cycle",
    "enumerate_rootings",
    "full_schedule",
    "generate_label_list",
    "generate_steps",
    "reduction_schedule",
    "reroot",
]
