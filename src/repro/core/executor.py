"""The public TAG-join query executor.

:class:`TagJoinExecutor` is the library's main entry point: it owns a TAG
graph (built once, query-independently, from a relational catalog) and
evaluates :class:`~repro.algebra.logical.QuerySpec` blocks — or SQL text —
on top of any BSP engine configuration (single worker = the paper's
single-server experiments, several workers = the distributed experiments).

Dispatch logic (paper Section 6.4, "TAG-join algorithm"):

* subquery predicates are evaluated first (recursively) and folded into
  pushed-down filters (Section 7);
* a disconnected join graph is split into components whose results are
  combined with a Cartesian product (Section 6.3);
* a join graph that forms one simple cycle is evaluated by the
  worst-case-optimal heavy/light cycle algorithm (Sections 6.1-6.2);
* everything else (the common case: acyclic queries, and cyclic queries
  with acyclic attachments) runs through the join-tree-driven vertex
  program of Algorithm 2, with cycle-closing conditions verified at
  result-assembly time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner import PlanCache, PlanChoice
    from ..planner.cost import CostModelConfig
    from ..tag.statistics import CatalogStatistics

from ..algebra.expressions import Expression, col
from ..algebra.logical import AggregationClass, OutputColumn, QuerySpec
from ..bsp.aggregators import CollectAggregator
from ..bsp.engine import BSPEngine
from ..bsp.metrics import RunMetrics
from ..bsp.partition import HashPartitioner, Partitioner, SinglePartitioner
from ..exec.operations import deduplicate_rows
from ..exec.program import SlottedTagJoinProgram, register_slotted_group_aggregator
from ..relational.catalog import Catalog
from ..storage.rewrite import FragmentRewriter, decode_output_rows
from ..tag.encoder import TagGraph
from . import operations as ops
from .cartesian import cartesian_product_rows
from .compiler import CompiledFragment, compile_fragment, effective_aggregation_class
from .cyclic import CycleQueryProgram, CycleRelation
from .hypergraph import connected_components, detect_simple_cycle
from .subquery import compile_subquery_filters
from .vertex_program import (
    GLOBAL_GROUPS_AGGREGATOR,
    GLOBAL_OUTPUT_AGGREGATOR,
    TagJoinProgram,
    register_group_aggregator,
)


class ExecutionError(RuntimeError):
    """Raised when a query cannot be executed."""


class StaleEngineError(ExecutionError):
    """Raised when a retired executor is asked to run another query.

    The TAG graph is encoded per catalog *version*; after a bulk load (or
    an explicit :meth:`repro.api.Database.note_data_change`) the catalog
    version moves on and the executor's graph no longer reflects the
    data.  The database retires the executors it built against the old
    encoding and hands out fresh ones transparently; a directly captured
    reference to a retired executor fails loudly here instead of silently
    querying the stale encoding.  (Executors constructed by hand — outside
    a ``Database`` — are never retired; their callers own the encoding
    lifecycle, as the plan-cache invalidation tests do.)
    """


@dataclass
class QueryResult:
    """Result of one query execution."""

    rows: List[Dict[str, Any]]
    columns: List[str]
    metrics: RunMetrics
    aggregation_class: AggregationClass = AggregationClass.NONE

    def __len__(self) -> int:
        return len(self.rows)

    def to_tuples(self, columns: Optional[Sequence[str]] = None) -> List[Tuple[Any, ...]]:
        """Rows as tuples in a fixed column order (sorted, for comparisons).

        Decorate-sort-undecorate: the sort key is computed exactly once per
        row, never again during comparisons.  Each key part carries the
        value's type name alongside its string form — ``str`` alone made
        the order between e.g. NULL (``str(None) == 'None'``) and the
        string ``'None'``, or ``1`` and ``'1'``, depend on input order,
        so two executions of one query could sort identical multisets
        differently and fail an equality cross-check spuriously.
        """
        ordered = list(columns or self.columns)
        decorated = [
            (tuple((part.__class__.__name__, str(part)) for part in values), values)
            for values in (
                tuple(row.get(column) for column in ordered) for row in self.rows
            )
        ]
        decorated.sort(key=lambda pair: pair[0])
        return [values for _key, values in decorated]

    def single_value(self) -> Any:
        """Convenience accessor for scalar results (one row, one column)."""
        if len(self.rows) != 1:
            raise ExecutionError(f"expected a single row, got {len(self.rows)}")
        row = self.rows[0]
        if len(row) != 1:
            raise ExecutionError(f"expected a single column, got {sorted(row)}")
        return next(iter(row.values()))

    # ------------------------------------------------------------------
    # stable wire serialization (shared by the server, the client library
    # and the serving result-set cache — see repro.core.wire)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """A JSON-serialisable payload with explicit NULL/date/float handling.

        Rows are packed as value arrays in ``columns`` order; dates and
        non-finite floats are type-tagged so :meth:`from_json` restores
        the exact relational values (see :mod:`repro.core.wire`).
        """
        from .wire import encode_result_payload

        return encode_result_payload(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "QueryResult":
        """Rebuild a :class:`QueryResult` from a :meth:`to_json` payload.

        The reconstructed metrics carry the producer's timing summary
        (wall/compile seconds, cache counters) on a fresh
        :class:`~repro.bsp.metrics.RunMetrics`; superstep-level detail
        does not travel over the wire.
        """
        from .wire import decode_result_payload

        decoded = decode_result_payload(payload)
        metrics = RunMetrics(label="wire")
        summary = decoded["metrics"]
        metrics.wall_time_seconds = float(summary.get("wall_time_seconds", 0.0))
        metrics.compile_seconds = float(summary.get("compile_seconds", 0.0))
        metrics.plan_cache_hits = int(summary.get("plan_cache_hits", 0))
        metrics.plan_cache_misses = int(summary.get("plan_cache_misses", 0))
        return cls(
            rows=decoded["rows"],
            columns=decoded["columns"],
            metrics=metrics,
            aggregation_class=AggregationClass(decoded["aggregation_class"]),
        )


class TagJoinExecutor:
    """Evaluate SQL queries vertex-centrically over a TAG graph.

    Executions are fully concurrent: the encoded graph is immutable while
    queries run, every run's vertex scratch state lives in a per-run
    :class:`~repro.bsp.engine.RunState` (one fresh :class:`BSPEngine` per
    run), parameter bindings travel in a contextvar, and the plan cache has
    its own lock — so any number of threads (or sessions sharing one
    executor, or executors sharing one pre-encoded graph) may call
    :meth:`execute` simultaneously without serialization.  The only
    per-execution executor attribute, :attr:`last_plan_choice`, is
    thread-local so concurrent queries cannot clobber each other's planner
    verdicts.
    """

    def __init__(
        self,
        graph: TagGraph,
        catalog: Catalog,
        num_workers: int = 1,
        collect_output_centrally: bool = False,
        eager_partial_aggregation: bool = True,
        use_wco_cycles: bool = True,
        max_supersteps: int = 10_000,
        use_cost_based_planner: bool = True,
        enable_plan_cache: bool = True,
        plan_cache: Optional["PlanCache"] = None,
        cross_check_plans: bool = False,
        statistics: Optional["CatalogStatistics"] = None,
        cost_config: Optional["CostModelConfig"] = None,
        use_slotted_rows: bool = True,
        use_vectorized_kernel: bool = False,
        vectorized_batch_threshold: Optional[int] = None,
        cross_check_rows: bool = False,
        use_encoded_columns: bool = True,
        name: str = "tag",
    ) -> None:
        # local import: repro.planner depends on repro.core's submodules
        from ..planner import CostBasedPlanner, PlanCache

        self.name = name
        self.graph = graph
        self.catalog = catalog
        self.num_workers = num_workers
        self.collect_output_centrally = collect_output_centrally
        self.eager_partial_aggregation = eager_partial_aggregation
        self.use_wco_cycles = use_wco_cycles
        self.max_supersteps = max_supersteps
        self.use_cost_based_planner = use_cost_based_planner
        self.cross_check_plans = cross_check_plans
        #: run fragments over slotted tuple rows (the compiled hot path);
        #: False opts back onto the original dict-per-row vertex program
        self.use_slotted_rows = use_slotted_rows
        #: run fragments over columnar numpy batches (the vectorized
        #: superstep kernel layered on the slotted substrate); fragments
        #: that cannot be vectorized fall back per the flags above
        self.use_vectorized_kernel = use_vectorized_kernel
        #: table size at which the vectorized program converts a tuple-row
        #: table to columns (None = kernel default; 0 = always columnar,
        #: the setting the correctness suites use for maximal coverage)
        self.vectorized_batch_threshold = vectorized_batch_threshold
        #: execute every fragment on EVERY available row representation
        #: (dict, slotted, vectorized) and require identical results — a
        #: correctness harness, not a production mode
        self.cross_check_rows = cross_check_rows
        #: compile predicates/outputs onto the graph's encoded payloads
        #: (int32 string codes, epoch-day dates) and decode once at the
        #: result boundary; False opts back onto the per-row object path
        self.use_encoded_columns = use_encoded_columns
        self.planner = CostBasedPlanner(
            catalog,
            statistics=statistics,
            num_workers=num_workers,
            cost_config=cost_config,
        )
        if use_cost_based_planner:
            # collect statistics at load time, like index building — never
            # inside a query's timed window (they refresh on catalog changes)
            self.planner.statistics
        if plan_cache is None and enable_plan_cache:
            plan_cache = PlanCache()
        self.plan_cache = plan_cache
        # per-thread planner verdict (see the last_plan_choice property)
        self._thread_state = threading.local()
        #: the catalog version the executor was built against (the version
        #: its TAG encoding reflects) — observability plus retirement checks
        self.bound_catalog_version = catalog.version
        self._retired_reason: Optional[str] = None

    @property
    def last_plan_choice(self) -> Optional["PlanChoice"]:
        """The planner's verdict for this thread's most recent fragment.

        Thread-local: concurrent executions each see the verdict of their
        own query, and the plan cache pairs each compiled fragment with the
        choice produced alongside it rather than whichever execution wrote
        the attribute last.
        """
        return getattr(self._thread_state, "plan_choice", None)

    @last_plan_choice.setter
    def last_plan_choice(self, choice: Optional["PlanChoice"]) -> None:
        self._thread_state.plan_choice = choice

    def retire(self, reason: Optional[str] = None) -> None:
        """Mark this executor stale; further queries raise :class:`StaleEngineError`.

        Called by :meth:`repro.api.Database.note_data_change` when the
        catalog moves past the encoding this executor queries.
        """
        self._retired_reason = reason or (
            f"catalog {self.catalog.name!r} moved past version "
            f"{self.bound_catalog_version}"
        )

    @property
    def retired(self) -> bool:
        return self._retired_reason is not None

    def apply_delta(
        self,
        relation_name: str,
        new_rows: List[List[Any]],
        start_position: int,
        catalog_version: int,
    ) -> None:
        """Adopt a data-only delta already applied to the shared state.

        The database patches the TAG graph in place and updates the
        shared statistics before calling this, so the executor's own work
        is only re-binding: advance ``bound_catalog_version`` to the new
        catalog version.  Compiled plans stay cached (their keys depend
        only on the schema version) and the executor is *not* retired —
        the whole point of the delta path.
        """
        del relation_name, new_rows, start_position  # state is shared
        self.bound_catalog_version = catalog_version

    def apply_delete(
        self,
        relation_name: str,
        positions: List[int],
        deleted_rows: List[List[Any]],
        catalog_version: int,
    ) -> None:
        """Adopt a data-only delete already applied to the shared state.

        Mirror of :meth:`apply_delta`: the tuple vertices are already gone
        from the shared TAG graph and the statistics already folded the
        removal, so the executor only re-binds to the new catalog version.
        Compiled plans stay cached and the executor is *not* retired.
        """
        del relation_name, positions, deleted_rows  # state is shared
        self.bound_catalog_version = catalog_version

    def _check_not_stale(self) -> None:
        if self._retired_reason is not None:
            raise StaleEngineError(
                f"executor {self.name!r} was retired ({self._retired_reason}); "
                "re-resolve the engine through Database.engine() — sessions do "
                "this automatically on their next query"
            )

    def plan_cache_stats(self) -> Optional[Dict[str, Any]]:
        """Hit/miss counters of the plan cache (None when caching is off)."""
        if self.plan_cache is None:
            return None
        return self.plan_cache.stats.as_dict()

    def fragment_fingerprint(self, spec: QuerySpec) -> Optional[str]:
        """The plan-cache key ``spec`` compiles under, or ``None``.

        Exactly the fingerprint :meth:`_compile_or_fetch` would use for a
        top-level execution (no subquery-derived extra filters), so the
        persisted manifest records the same identity the live cache keys
        on.  ``None`` for uncacheable shapes or cache-less executors.
        """
        from ..planner.cache import fragment_cache_key, is_cacheable

        if self.plan_cache is None or spec.subqueries:
            return None
        if not is_cacheable(spec, {}, []):
            return None
        return fragment_cache_key(
            spec,
            self.catalog,
            extra_filters={},
            extra_residuals=[],
            use_cost_based_planner=self.use_cost_based_planner,
            eager_partial_aggregation=self.eager_partial_aggregation,
            collect_output_centrally=self.collect_output_centrally,
            num_workers=self.num_workers,
            use_encoded_columns=self.use_encoded_columns,
        )

    def prepare_plan(self, spec: QuerySpec) -> bool:
        """Compile ``spec`` into the plan cache without executing it.

        The warm-start hook: :meth:`repro.api.Database.warm_plan_cache`
        replays a persisted statement manifest through this method at
        startup so the first live execution of every known query shape is
        a cache hit.  Returns ``True`` when a compiled fragment is now
        cached (either freshly compiled or already present), ``False``
        when the spec is uncacheable or caching is disabled.  Subquery
        blocks are skipped — their pushed-down filters depend on inner
        results, so there is nothing reusable to warm.
        """
        from ..planner.cache import is_cacheable

        self._check_not_stale()
        if self.plan_cache is None:
            return False
        spec.validate(self.catalog)
        if spec.subqueries or not is_cacheable(spec, {}, []):
            return False
        if len(connected_components(spec)) > 1:
            return False
        if self.use_wco_cycles and not spec.group_by and not spec.aggregates:
            if detect_simple_cycle(spec) is not None:
                return False
        self._compile_or_fetch(spec, {}, [], RunMetrics(label=f"warm:{spec.name}"))
        return True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> QueryResult:
        """Execute a query block and return its result rows plus metrics.

        Safe to call from any number of threads at once: all per-run state
        is run-scoped, so executions over the shared immutable graph
        proceed without any serialization.
        """
        self._check_not_stale()
        spec.validate(self.catalog)
        metrics = RunMetrics(label=spec.name)
        started = time.perf_counter()
        result = self._execute_block(spec, metrics)
        metrics.wall_time_seconds = time.perf_counter() - started
        result.metrics = metrics
        return result

    def execute_sql(self, sql: str) -> QueryResult:
        """Parse, bind and execute a SQL query string."""
        from ..sql import parse_and_bind  # local import to avoid a hard dependency cycle

        spec = parse_and_bind(sql, self.catalog)
        return self.execute(spec)

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def explain(self, spec: QuerySpec, analyze: bool = False) -> str:
        """The chosen rooted join tree plus the planner's cost breakdown.

        With ``analyze=True`` the query is also executed and the plan is
        annotated with the observed row count, supersteps and message
        totals (EXPLAIN ANALYZE).  The analyze run uses the same run-scoped
        state as a regular execution, so it leaves no residue on the shared
        graph and may interleave freely with concurrent queries.
        """
        self._check_not_stale()
        spec.validate(self.catalog)
        lines: List[str] = [f"TAG-join plan for {spec.name!r}"]

        components = connected_components(spec)
        if len(components) > 1:
            lines.append(
                f"  disconnected join graph: {len(components)} components combined "
                "by Cartesian product"
            )
        cycle_order = None
        if self.use_wco_cycles and not spec.group_by and not spec.aggregates:
            cycle_order = detect_simple_cycle(spec)
        if cycle_order is not None:
            lines.append(
                "  simple cycle: worst-case-optimal heavy/light algorithm over "
                + " -> ".join(cycle_order)
            )
        elif len(components) == 1:
            # last_plan_choice is thread-local, so a concurrent execute on
            # another thread cannot pair this fragment with its verdict
            compiled = self._compile(spec, {}, [])
            choice = self.last_plan_choice
            tree = compiled.join_tree
            lines.append(f"  aggregation class: {compiled.aggregation_class.value}")
            representation = self._row_representation(compiled)
            descriptions = {
                "vectorized": "vectorized columnar batches (numpy array per slot)",
                "slotted": "slotted tuple rows (slot-compiled closures)",
                "dict": "dict rows (per-row name resolution)",
            }
            lines.append(f"  row representation: {descriptions[representation]}")
            lines.append(f"  join tree (root = {tree.root}):")
            lines.extend(self._render_tree(spec, tree, tree.root, depth=2))
            if tree.residual_conditions:
                lines.append(
                    "  residual join conditions: "
                    + "; ".join(repr(condition) for condition in tree.residual_conditions)
                )
            if choice is not None:
                cost = choice.cost
                lines.append(
                    "  cost model: "
                    f"reduction={cost.reduction_messages:.1f} msgs, "
                    f"collection={cost.collection_messages:.1f} msgs, "
                    f"cross-worker fraction={cost.cross_worker_fraction:.3f}, "
                    f"total={cost.total:.1f}"
                )
                considered = ", ".join(
                    f"{alias}={total:.1f}" for alias, total in sorted(choice.considered)
                )
                lines.append(f"  rootings considered: {considered}")
            else:
                lines.append("  cost model: abstained (root dictated by aggregation or trivial)")
        if spec.subqueries:
            lines.append(
                f"  subquery predicates: {len(spec.subqueries)} "
                "(evaluated first, folded into pushed-down filters)"
            )

        if analyze:
            result = self.execute(spec)
            metrics = result.metrics
            lines.append(
                "  actual: "
                f"{len(result.rows)} rows, {metrics.superstep_count} supersteps, "
                f"{metrics.total_messages} messages, "
                f"{metrics.total_network_bytes} network bytes, "
                f"{metrics.wall_time_seconds:.4f}s wall"
            )
        return "\n".join(lines)

    def _render_tree(self, spec: QuerySpec, tree, alias: str, depth: int) -> List[str]:
        table = spec.alias_map()[alias]
        annotations = [f"{self.catalog.relation(table).cardinality()} rows"]
        filter_count = len(spec.filters_for(alias))
        if filter_count:
            annotations.append(f"{filter_count} filter{'s' if filter_count > 1 else ''}")
        edge = tree.edge_to_parent(alias)
        via = ""
        if edge is not None:
            via = f" via {alias}.{edge.child_column} = {edge.parent}.{edge.parent_column}"
        lines = [f"{'  ' * depth}{alias} ({table}: {', '.join(annotations)}){via}"]
        for child in tree.children(alias):
            lines.extend(self._render_tree(spec, tree, child, depth + 1))
        return lines

    # ------------------------------------------------------------------
    # block dispatch
    # ------------------------------------------------------------------
    def _execute_block(self, spec: QuerySpec, metrics: RunMetrics) -> QueryResult:
        if spec.outer_joins:
            raise ExecutionError(
                "the multi-way TAG-join executor does not evaluate outer joins; "
                "use repro.core.twoway.OuterJoinProgram for two-way outer joins"
            )
        # 1. subqueries become pushed-down filters / residuals on the outer block
        extra_filters: Dict[str, List[Expression]] = {}
        extra_residuals: List[Expression] = []
        if spec.subqueries:
            extra_filters, extra_residuals = compile_subquery_filters(
                spec.subqueries, lambda inner: self._execute_nested(inner, metrics)
            )

        # 2. disconnected join graphs: evaluate components, combine by product
        components = connected_components(spec)
        if len(components) > 1:
            return self._execute_disconnected(
                spec, components, extra_filters, extra_residuals, metrics
            )

        # 3. pure simple cycles: worst-case-optimal heavy/light algorithm
        if self.use_wco_cycles and not spec.group_by and not spec.aggregates:
            cycle_order = detect_simple_cycle(spec)
            if cycle_order is not None:
                cycle_rows = self._execute_cycle(spec, cycle_order, extra_filters, metrics)
                if cycle_rows is not None:
                    return self._post_assemble(spec, cycle_rows, metrics, extra_residuals)

        # 4. the general case: join-tree-driven Algorithm 2
        return self._execute_fragment(spec, extra_filters, extra_residuals, metrics)

    def _execute_nested(self, inner: QuerySpec, metrics: RunMetrics) -> List[Dict[str, Any]]:
        inner.validate(self.catalog)
        result = self._execute_block(inner, metrics)
        return result.rows

    # ------------------------------------------------------------------
    # the main path: one connected, tree-shaped fragment
    # ------------------------------------------------------------------
    def _execute_fragment(
        self,
        spec: QuerySpec,
        extra_filters: Dict[str, List[Expression]],
        extra_residuals: List[Expression],
        metrics: RunMetrics,
        raw_rows: bool = False,
    ) -> QueryResult:
        compiled = self._compile_or_fetch(spec, extra_filters, extra_residuals, metrics)
        result = self._run_compiled(spec, compiled, metrics, raw_rows)
        if self.cross_check_plans and self.use_cost_based_planner:
            self._cross_check(spec, extra_filters, extra_residuals, result, raw_rows)
        if self.cross_check_rows:
            self._cross_check_representations(spec, compiled, result, raw_rows)
        return result

    def _cross_check_representations(
        self,
        spec: QuerySpec,
        compiled: CompiledFragment,
        result: QueryResult,
        raw_rows: bool,
    ) -> None:
        """Re-run the fragment on every *other* available row representation
        and require identical results (dict vs slotted vs vectorized)."""
        primary = self._row_representation(compiled)
        alternates = ["dict"]
        if compiled.slotted is not None:
            alternates.append("slotted")
        if compiled.vectorized is not None:
            alternates.append("vectorized")
        reference = result.to_tuples()
        for mode in alternates:
            if mode == primary:
                continue
            scratch = RunMetrics(label=f"{spec.name}:row-cross-check:{mode}")
            baseline = self._run_compiled(
                spec, compiled, scratch, raw_rows, force_rows=mode
            )
            if reference != baseline.to_tuples():
                raise ExecutionError(
                    f"row-representation cross-check failed for {spec.name!r}: "
                    f"{primary} path returned {len(result.rows)} rows, {mode} path "
                    f"{len(baseline.rows)} rows (or differing contents)"
                )

    # ------------------------------------------------------------------
    # compilation: plan cache in front of the cost-based planner
    # ------------------------------------------------------------------
    def _compile_or_fetch(
        self,
        spec: QuerySpec,
        extra_filters: Dict[str, List[Expression]],
        extra_residuals: List[Expression],
        metrics: RunMetrics,
    ) -> CompiledFragment:
        from ..planner.cache import fragment_cache_key, is_cacheable

        started = time.perf_counter()
        key: Optional[str] = None
        if self.plan_cache is not None:
            if is_cacheable(spec, extra_filters, extra_residuals):
                key = fragment_cache_key(
                    spec,
                    self.catalog,
                    extra_filters=extra_filters,
                    extra_residuals=extra_residuals,
                    use_cost_based_planner=self.use_cost_based_planner,
                    eager_partial_aggregation=self.eager_partial_aggregation,
                    collect_output_centrally=self.collect_output_centrally,
                    num_workers=self.num_workers,
                    use_encoded_columns=self.use_encoded_columns,
                )
                cached = self.plan_cache.lookup(key)
                if cached is not None:
                    compiled, choice = cached
                    self.last_plan_choice = choice
                    metrics.plan_cache_hits += 1
                    metrics.compile_seconds += time.perf_counter() - started
                    return compiled
                metrics.plan_cache_misses += 1
            else:
                self.plan_cache.note_bypass()
        compiled = self._compile(spec, extra_filters, extra_residuals)
        if key is not None:
            self.plan_cache.store(key, (compiled, self.last_plan_choice))
        metrics.compile_seconds += time.perf_counter() - started
        return compiled

    def _compile(
        self,
        spec: QuerySpec,
        extra_filters: Dict[str, List[Expression]],
        extra_residuals: List[Expression],
        cost_based: Optional[bool] = None,
    ) -> CompiledFragment:
        cost_based = self.use_cost_based_planner if cost_based is None else cost_based
        preferred_root: Optional[str] = None
        if cost_based:
            choice = self.planner.choose_root(spec, extra_filters)
            if choice is not None:
                preferred_root = choice.root
            self.last_plan_choice = choice
        elif not self.use_cost_based_planner:
            # heuristic-only executors never carry a stale verdict; the
            # cross-check's heuristic recompile must not clobber the real one
            self.last_plan_choice = None
        return compile_fragment(
            spec,
            self.catalog,
            extra_filters=extra_filters,
            extra_residuals=extra_residuals,
            eager_partial_aggregation=self.eager_partial_aggregation,
            collect_output_centrally=self.collect_output_centrally,
            preferred_root=preferred_root,
            use_encoded_columns=self.use_encoded_columns,
        )

    def _cross_check(
        self,
        spec: QuerySpec,
        extra_filters: Dict[str, List[Expression]],
        extra_residuals: List[Expression],
        result: QueryResult,
        raw_rows: bool,
    ) -> None:
        """Re-run the fragment with the heuristic root and require equal rows."""
        compiled = self._compile(spec, extra_filters, extra_residuals, cost_based=False)
        scratch = RunMetrics(label=f"{spec.name}:cross-check")
        baseline = self._run_compiled(spec, compiled, scratch, raw_rows)
        if result.to_tuples() != baseline.to_tuples():
            raise ExecutionError(
                f"plan cross-check failed for {spec.name!r}: cost-based plan returned "
                f"{len(result.rows)} rows, heuristic plan {len(baseline.rows)} rows "
                "(or differing contents)"
            )

    # ------------------------------------------------------------------
    # running one compiled fragment
    # ------------------------------------------------------------------
    def _row_representation(self, compiled: CompiledFragment) -> str:
        """Which row representation this executor runs ``compiled`` on."""
        if self.use_vectorized_kernel and compiled.vectorized is not None:
            return "vectorized"
        if self.use_slotted_rows and compiled.slotted is not None:
            return "slotted"
        return "dict"

    def _run_compiled(
        self,
        spec: QuerySpec,
        compiled: CompiledFragment,
        metrics: RunMetrics,
        raw_rows: bool = False,
        force_rows: Optional[str] = None,
    ) -> QueryResult:
        # pick the row representation: the vectorized columnar kernel when
        # enabled and compiled, else the slotted hot path, else dict rows;
        # ``force_rows`` pins one explicitly (cross-check harness)
        mode = force_rows or self._row_representation(compiled)
        slotted = compiled.slotted if mode in ("slotted", "vectorized") else None
        vectorized = compiled.vectorized if mode == "vectorized" else None
        engine = self._make_engine()
        if compiled.aggregation_class in (AggregationClass.GLOBAL, AggregationClass.SCALAR):
            if slotted is not None:
                register_slotted_group_aggregator(engine, slotted.aggregates)
            else:
                register_group_aggregator(engine, compiled.config.aggregates)
        if self.collect_output_centrally:
            engine.register_aggregator(CollectAggregator(GLOBAL_OUTPUT_AGGREGATOR))

        if vectorized is not None:
            from ..exec.vectorized.program import (
                DEFAULT_COLUMNAR_THRESHOLD,
                VectorizedTagJoinProgram,
            )

            threshold = self.vectorized_batch_threshold
            program = VectorizedTagJoinProgram(
                self.graph,
                compiled.config,
                slotted,
                vectorized,
                columnar_threshold=(
                    DEFAULT_COLUMNAR_THRESHOLD if threshold is None else threshold
                ),
            )
        elif slotted is not None:
            program = SlottedTagJoinProgram(self.graph, compiled.config, slotted)
        else:
            program = TagJoinProgram(self.graph, compiled.config)
        engine.run(program)
        metrics.merge(engine.last_metrics)

        if raw_rows or compiled.aggregation_class is AggregationClass.NONE:
            columns = [column.alias for column in compiled.config.output_columns]
            if slotted is not None:
                if vectorized is not None:
                    # columnar batches plus any sub-threshold tuple tables
                    produced = program.output_rows + program.collected_output_tuples()
                else:
                    produced = program.output_rows
                if spec.distinct and not raw_rows:
                    produced = deduplicate_rows(produced)
                # the only dict per row on the slotted/vectorized paths:
                # the public result boundary
                rows = [dict(zip(columns, values)) for values in produced]
            else:
                rows = program.output_rows
                if spec.distinct and not raw_rows:
                    rows = ops.deduplicate(rows)
            # decode-once: pass-through outputs of encoded columns flowed
            # as int32 codes until here, the public result boundary
            decode_output_rows(rows, compiled.output_decoders)
            return QueryResult(rows, columns, metrics, compiled.aggregation_class)

        columns = [column.alias for column in spec.output] + [
            aggregate.alias for aggregate in spec.aggregates
        ]
        if compiled.aggregation_class is AggregationClass.LOCAL:
            if slotted is not None:
                rows = [dict(zip(columns, values)) for values in program.local_groups]
            else:
                rows = program.local_groups
            decode_output_rows(rows, compiled.output_decoders)
            return QueryResult(rows, columns, metrics, compiled.aggregation_class)

        # GLOBAL / SCALAR: finalize the partial aggregates gathered globally
        groups = engine.aggregators.get(GLOBAL_GROUPS_AGGREGATOR).value()
        rows = []
        if slotted is not None:
            aggregates = slotted.aggregates
            for _key, (partial, sample) in groups.items():
                values = slotted.output(sample) + aggregates.finalize(partial)
                rows.append(dict(zip(columns, values)))
            if compiled.aggregation_class is AggregationClass.SCALAR and not rows:
                empty = aggregates.finalize(aggregates.empty())
                rows = [dict(zip(aggregates.aliases, empty))]
            decode_output_rows(rows, compiled.output_decoders)
            return QueryResult(rows, columns, metrics, compiled.aggregation_class)
        for _key, payload in groups.items():
            # evaluate the *rewritten* outputs: the sample row context holds
            # encoded values, which only the rewritten expressions read
            # correctly (pass-through codes are decoded just below)
            final = ops.finalize_partial(payload["partial"], compiled.config.aggregates)
            row = ops.evaluate_output_columns(
                compiled.config.output_columns, payload["sample"]
            )
            row.update(final)
            rows.append(row)
        if compiled.aggregation_class is AggregationClass.SCALAR and not rows:
            empty = ops.finalize_partial(
                ops.empty_partial(compiled.config.aggregates), compiled.config.aggregates
            )
            rows = [empty]
        decode_output_rows(rows, compiled.output_decoders)
        return QueryResult(rows, columns, metrics, compiled.aggregation_class)

    # ------------------------------------------------------------------
    # pure cycle queries
    # ------------------------------------------------------------------
    def _execute_cycle(
        self,
        spec: QuerySpec,
        cycle_order: List[str],
        extra_filters: Dict[str, List[Expression]],
        metrics: RunMetrics,
    ) -> Optional[List[Dict[str, Any]]]:
        """Run the heavy/light cycle program; None if the cycle shape is unusable."""
        alias_map = spec.alias_map()
        relations: List[CycleRelation] = []
        n = len(cycle_order)
        for index, alias in enumerate(cycle_order):
            previous_alias = cycle_order[(index - 1) % n]
            next_alias = cycle_order[(index + 1) % n]
            back_column = self._column_between(spec, alias, previous_alias)
            forward_column = self._column_between(spec, alias, next_alias)
            if back_column is None or forward_column is None:
                return None
            relations.append(
                CycleRelation(
                    alias=alias,
                    table=alias_map[alias],
                    back_column=back_column,
                    forward_column=forward_column,
                )
            )
        filters: Dict[str, List[Expression]] = {}
        for alias in spec.aliases():
            combined = list(spec.filters_for(alias)) + list(extra_filters.get(alias, []))
            if combined:
                filters[alias] = combined
        # the cycle program reads encoded tuple payloads: compile its
        # filters onto the codes and decode the joined rows on the way out
        # (the cycle result feeds legacy _post_assemble, which evaluates
        # un-rewritten residuals/outputs and needs decoded values)
        rewriter = FragmentRewriter.for_catalog(
            self.catalog, alias_map, use_codes=self.use_encoded_columns
        )
        if rewriter is not None:
            filters = rewriter.rewrite_filters(filters)
        engine = self._make_engine()
        program = CycleQueryProgram(self.graph, relations, filters=filters)
        rows = engine.run(program)
        metrics.merge(engine.last_metrics)
        if rewriter is not None and rows:
            decoders = rewriter.context_decoders
            for row in rows:
                for name, decoder in decoders.items():
                    if name in row:
                        row[name] = decoder(row[name])
        return rows

    @staticmethod
    def _column_between(spec: QuerySpec, alias: str, other: str) -> Optional[str]:
        columns = [
            condition.side(alias)
            for condition in spec.join_conditions
            if {condition.left_alias, condition.right_alias} == {alias, other}
        ]
        columns = [column for column in columns if column is not None]
        return columns[0] if len(columns) == 1 else None

    # ------------------------------------------------------------------
    # disconnected join graphs
    # ------------------------------------------------------------------
    def _execute_disconnected(
        self,
        spec: QuerySpec,
        components: List[List[str]],
        extra_filters: Dict[str, List[Expression]],
        extra_residuals: List[Expression],
        metrics: RunMetrics,
    ) -> QueryResult:
        partial_results: List[List[Dict[str, Any]]] = []
        for component in components:
            component_spec = self._component_spec(spec, component)
            component_filters = {
                alias: predicates
                for alias, predicates in extra_filters.items()
                if alias in component
            }
            result = self._execute_fragment(
                component_spec, component_filters, [], metrics, raw_rows=True
            )
            partial_results.append(result.rows)
        combined = partial_results[0]
        for rows in partial_results[1:]:
            combined = cartesian_product_rows(combined, rows)
        return self._post_assemble(spec, combined, metrics, extra_residuals)

    @staticmethod
    def _component_spec(spec: QuerySpec, aliases: List[str]) -> QuerySpec:
        keep = set(aliases)
        component = QuerySpec(name=f"{spec.name}[{'+'.join(aliases)}]")
        component.tables = [table for table in spec.tables if table.alias in keep]
        component.join_conditions = [
            condition
            for condition in spec.join_conditions
            if condition.left_alias in keep and condition.right_alias in keep
        ]
        component.filters = {
            alias: list(predicates)
            for alias, predicates in spec.filters.items()
            if alias in keep
        }
        # project every column the outer block still needs (outputs,
        # aggregates, residual predicates) so post-assembly can see them
        for alias in aliases:
            for column in sorted(spec.required_columns_of(alias)):
                qualified = f"{alias}.{column}"
                component.output.append(OutputColumn(col(qualified), qualified))
        return component

    # ------------------------------------------------------------------
    # Python-side assembly for rows produced outside Algorithm 2
    # ------------------------------------------------------------------
    def _post_assemble(
        self,
        spec: QuerySpec,
        rows: List[Dict[str, Any]],
        metrics: RunMetrics,
        extra_residuals: Optional[List[Expression]] = None,
    ) -> QueryResult:
        """Apply residual predicates, projection, aggregation and DISTINCT to raw rows."""
        rows = ops.rows_passing(rows, spec.residual_predicates)
        if extra_residuals:
            rows = ops.rows_passing(rows, extra_residuals)
        aggregation_class = effective_aggregation_class(spec, self.catalog)

        if not spec.aggregates:
            outputs = spec.output
            if outputs:
                produced = [ops.evaluate_output_columns(outputs, row) for row in rows]
            else:
                produced = rows
            columns = spec.result_columns()
            if spec.distinct:
                produced = ops.deduplicate(produced)
            return QueryResult(produced, columns, metrics, AggregationClass.NONE)

        group_columns = [
            f"{group_col.table}.{group_col.column}" if group_col.table else group_col.column
            for group_col in spec.group_by
        ]
        by_group: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        samples: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        for row in rows:
            key = ops.group_key(group_columns, row)
            if key in by_group:
                by_group[key] = ops.accumulate_partial(by_group[key], spec.aggregates, row)
            else:
                by_group[key] = ops.accumulate_partial(
                    ops.empty_partial(spec.aggregates), spec.aggregates, row
                )
                samples[key] = row
        produced = []
        for key, partial in by_group.items():
            final = ops.finalize_partial(partial, spec.aggregates)
            row = ops.evaluate_output_columns(spec.output, samples[key])
            row.update(final)
            produced.append(row)
        if aggregation_class is AggregationClass.SCALAR and not produced:
            produced = [
                ops.finalize_partial(ops.empty_partial(spec.aggregates), spec.aggregates)
            ]
        columns = [column.alias for column in spec.output] + [
            aggregate.alias for aggregate in spec.aggregates
        ]
        return QueryResult(produced, columns, metrics, aggregation_class)

    # ------------------------------------------------------------------
    def _make_engine(self) -> BSPEngine:
        partitioner: Partitioner
        if self.num_workers <= 1:
            partitioner = SinglePartitioner()
        else:
            partitioner = HashPartitioner(self.num_workers)
        return BSPEngine(self.graph, partitioner, max_supersteps=self.max_supersteps)
