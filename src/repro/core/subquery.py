"""Subquery evaluation for the TAG-join executor (paper Section 7).

EXISTS / NOT EXISTS / IN / NOT IN and scalar subqueries — correlated or
not — are evaluated as a pre-pass: the inner block runs through the same
vertex-centric executor (recursively), its result is condensed into a
membership set or a per-correlation-key scalar map, and the outer block
receives an extra pushed-down filter on the correlated alias.  This is the
semi-join / anti-join strategy the paper describes for IN / EXISTS
constructs, realised with a reverse lookup (evaluate the inner block once,
then probe it from every outer tuple vertex during the reduction phase).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Set, Tuple

from ..algebra.expressions import ColumnRef, Expression
from ..algebra.logical import OutputColumn, QuerySpec, SubqueryKind, SubqueryPredicate
from ..relational.types import NULL
from .operations import CallablePredicate


class SubqueryError(ValueError):
    """Raised when a subquery predicate cannot be evaluated."""


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compile_subquery_filters(
    subqueries: List[SubqueryPredicate],
    execute: Callable[[QuerySpec], List[Dict[str, Any]]],
) -> Tuple[Dict[str, List[Expression]], List[Expression]]:
    """Turn each subquery predicate into outer-block predicates.

    Each subquery is evaluated once (through ``execute``, so its cost is
    accounted vertex-centrically) and condensed into a membership /
    comparison check.  Checks touching a single outer alias become
    pushed-down filters on that alias (applied during the reduction phase,
    i.e. a semi-/anti-join); checks spanning several outer aliases become
    residual predicates applied at result assembly.

    Returns:
        ``(filters_by_alias, residual_predicates)``.
    """
    filters: Dict[str, List[Expression]] = {}
    residuals: List[Expression] = []
    for subquery in subqueries:
        alias, predicate = _compile_one(subquery, execute)
        referenced_aliases = {
            qualified.split(".", 1)[0]
            for qualified in predicate.columns()
            if "." in qualified
        }
        if len(referenced_aliases) == 1:
            filters.setdefault(next(iter(referenced_aliases)), []).append(predicate)
        elif not referenced_aliases:
            filters.setdefault(alias, []).append(predicate)
        else:
            residuals.append(predicate)
    return filters, residuals


# ----------------------------------------------------------------------
def _compile_one(
    subquery: SubqueryPredicate,
    execute: Callable[[QuerySpec], List[Dict[str, Any]]],
) -> Tuple[str, Expression]:
    if subquery.kind in (SubqueryKind.EXISTS, SubqueryKind.NOT_EXISTS):
        return _compile_exists(subquery, execute)
    if subquery.kind in (SubqueryKind.IN, SubqueryKind.NOT_IN):
        return _compile_in(subquery, execute)
    if subquery.kind is SubqueryKind.SCALAR:
        return _compile_scalar(subquery, execute)
    raise SubqueryError(f"unsupported subquery kind {subquery.kind}")


def _outer_alias(subquery: SubqueryPredicate) -> str:
    """The outer alias the resulting filter attaches to."""
    if subquery.correlation:
        return subquery.correlation[0].left_alias
    if subquery.outer_expr is not None:
        for qualified in sorted(subquery.outer_expr.columns()):
            if "." in qualified:
                return qualified.split(".", 1)[0]
    raise SubqueryError(
        "cannot determine the outer alias of an uncorrelated subquery predicate "
        "without an outer expression; attach it explicitly via correlation"
    )


def _inner_projection(subquery: SubqueryPredicate) -> List[Tuple[str, str]]:
    """(alias, column) pairs of the inner block's correlation columns."""
    return [
        (condition.right_alias, condition.right_column) for condition in subquery.correlation
    ]


def _prepare_inner(subquery: SubqueryPredicate, extra_columns: List[ColumnRef]) -> QuerySpec:
    """Clone the inner block, projecting the columns the outer filter needs."""
    inner = copy.deepcopy(subquery.query)
    inner.output = []
    for alias, column in _inner_projection(subquery):
        inner.output.append(OutputColumn(ColumnRef(column, alias), f"{alias}.{column}"))
    for reference in extra_columns:
        inner.output.append(OutputColumn(reference, reference.qualified))
    if not inner.aggregates:
        inner.distinct = True
    return inner


# ----------------------------------------------------------------------
# EXISTS / NOT EXISTS
# ----------------------------------------------------------------------
def _compile_exists(
    subquery: SubqueryPredicate,
    execute: Callable[[QuerySpec], List[Dict[str, Any]]],
) -> Tuple[str, Expression]:
    negated = subquery.kind is SubqueryKind.NOT_EXISTS
    if not subquery.correlation:
        rows = execute(_prepare_inner(subquery, []))
        exists = bool(rows)
        keep = exists if not negated else not exists
        predicate = CallablePredicate(
            lambda _context, keep=keep: keep, description="uncorrelated EXISTS"
        )
        return _outer_alias(subquery), predicate

    inner = _prepare_inner(subquery, [])
    rows = execute(inner)
    key_columns = [f"{alias}.{column}" for alias, column in _inner_projection(subquery)]
    matched: Set[Tuple[Any, ...]] = {
        tuple(row.get(column) for column in key_columns) for row in rows
    }
    outer_columns = [
        f"{condition.left_alias}.{condition.left_column}" for condition in subquery.correlation
    ]

    def check(context: Dict[str, Any]) -> bool:
        key = tuple(context.get(column) for column in outer_columns)
        if any(part is NULL for part in key):
            return negated  # NULL correlation key never matches
        found = key in matched
        return not found if negated else found

    predicate = CallablePredicate(
        check,
        referenced=frozenset(outer_columns),
        description=("NOT EXISTS" if negated else "EXISTS") + " semi-join",
    )
    return _outer_alias(subquery), predicate


# ----------------------------------------------------------------------
# IN / NOT IN
# ----------------------------------------------------------------------
def _compile_in(
    subquery: SubqueryPredicate,
    execute: Callable[[QuerySpec], List[Dict[str, Any]]],
) -> Tuple[str, Expression]:
    if subquery.outer_expr is None or subquery.inner_column is None:
        raise SubqueryError("IN subqueries need an outer expression and an inner column")
    negated = subquery.kind is SubqueryKind.NOT_IN
    inner = _prepare_inner(subquery, [subquery.inner_column])
    rows = execute(inner)
    inner_key = subquery.inner_column.qualified
    correlation_columns = [f"{alias}.{column}" for alias, column in _inner_projection(subquery)]
    outer_correlation = [
        f"{condition.left_alias}.{condition.left_column}" for condition in subquery.correlation
    ]

    values_by_key: Dict[Tuple[Any, ...], Set[Any]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in correlation_columns)
        values_by_key.setdefault(key, set()).add(row.get(inner_key))

    outer_expr = subquery.outer_expr

    def check(context: Dict[str, Any]) -> bool:
        value = outer_expr.evaluate(context)
        if value is NULL:
            return False if not negated else True
        key = tuple(context.get(column) for column in outer_correlation)
        members = values_by_key.get(key, set())
        found = value in members
        return not found if negated else found

    referenced = frozenset(outer_expr.columns()) | frozenset(outer_correlation)
    predicate = CallablePredicate(
        check, referenced=referenced, description=("NOT IN" if negated else "IN") + " subquery"
    )
    return _outer_alias(subquery), predicate


# ----------------------------------------------------------------------
# scalar subqueries (e.g. TPC-H q17's per-partkey average)
# ----------------------------------------------------------------------
def _compile_scalar(
    subquery: SubqueryPredicate,
    execute: Callable[[QuerySpec], List[Dict[str, Any]]],
) -> Tuple[str, Expression]:
    if subquery.outer_expr is None or subquery.comparison_op is None:
        raise SubqueryError("scalar subqueries need an outer expression and a comparison op")
    if len(subquery.query.aggregates) != 1:
        raise SubqueryError("scalar subqueries must compute exactly one aggregate")
    comparator = _COMPARATORS.get(subquery.comparison_op)
    if comparator is None:
        raise SubqueryError(f"unsupported comparison operator {subquery.comparison_op!r}")

    inner = copy.deepcopy(subquery.query)
    inner.output = []
    inner.group_by = [
        ColumnRef(column, alias) for alias, column in _inner_projection(subquery)
    ]
    for alias, column in _inner_projection(subquery):
        inner.output.append(OutputColumn(ColumnRef(column, alias), f"{alias}.{column}"))
    rows = execute(inner)

    aggregate_alias = subquery.query.aggregates[0].alias
    correlation_columns = [f"{alias}.{column}" for alias, column in _inner_projection(subquery)]
    outer_correlation = [
        f"{condition.left_alias}.{condition.left_column}" for condition in subquery.correlation
    ]
    scalar_by_key: Dict[Tuple[Any, ...], Any] = {}
    for row in rows:
        key = tuple(row.get(column) for column in correlation_columns)
        scalar_by_key[key] = row.get(aggregate_alias)

    outer_expr = subquery.outer_expr

    def check(context: Dict[str, Any]) -> bool:
        value = outer_expr.evaluate(context)
        key = tuple(context.get(column) for column in outer_correlation)
        scalar = scalar_by_key.get(key)
        if value is NULL or scalar is NULL or scalar is None:
            return False
        return comparator(value, scalar)

    referenced = frozenset(outer_expr.columns()) | frozenset(outer_correlation)
    predicate = CallablePredicate(
        check, referenced=referenced, description=f"scalar {subquery.comparison_op} subquery"
    )
    return _outer_alias(subquery), predicate
