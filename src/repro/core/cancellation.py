"""Per-request cooperative cancellation tokens.

A :class:`CancellationToken` is bound to the current execution context
(:func:`cancel_scope` / contextvar) by whoever owns the request's
lifetime — the serving layer binds one per admitted request with the
request's deadline — and *checked* at natural batch boundaries deep in
the engines: the BSP superstep loop and the iterator engine's operator
boundaries call :func:`check_cancelled`, which is one contextvar read
plus one flag/clock check.

Cancellation is cooperative on purpose.  Python threads cannot be killed,
so a deadline-exceeded query used to be *abandoned*: the serving worker
kept running it to completion, silently shrinking the effective pool.
With tokens, cancelling marks the flag and the running query raises
:class:`QueryCancelled` out of its next superstep, the worker returns to
the pool, and the server's ``abandoned_running`` gauge goes back to zero
— which the tests assert.

Tokens also carry an optional monotonic deadline so a query enforces its
own timeout even when nobody cancels it explicitly.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class QueryCancelled(RuntimeError):
    """The current query's cancellation token fired (cancel or deadline)."""

    def __init__(self, reason: str = "query cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class CancellationToken:
    """A cancel flag plus an optional monotonic deadline.

    ``cancel()`` may be called from any thread (a bare boolean store is
    atomic under the GIL and acceptable under free-threading: the flag
    only ever goes False→True and a stale read just delays the stop by
    one check interval).
    """

    __slots__ = ("cancelled", "deadline", "reason")

    def __init__(self, deadline: Optional[float] = None, reason: str = "") -> None:
        self.cancelled = False
        self.deadline = deadline  # absolute time.monotonic() instant
        self.reason = reason

    @classmethod
    def with_timeout(cls, seconds: float, reason: str = "") -> "CancellationToken":
        return cls(deadline=time.monotonic() + seconds, reason=reason)

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self.cancelled = True

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self) -> None:
        """Raise :class:`QueryCancelled` if cancelled or past the deadline."""
        if self.cancelled:
            raise QueryCancelled(self.reason or "query cancelled")
        if self.expired():
            raise QueryCancelled(self.reason or "deadline exceeded")

    def remaining(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


_CURRENT: "contextvars.ContextVar[Optional[CancellationToken]]" = contextvars.ContextVar(
    "repro_cancellation_token", default=None
)


def current_token() -> Optional[CancellationToken]:
    return _CURRENT.get()


@contextmanager
def cancel_scope(token: Optional[CancellationToken]) -> Iterator[Optional[CancellationToken]]:
    """Bind ``token`` for the duration of the block (context-local).

    The binding is contextvar-based, so concurrent sessions in other
    threads (or the same thread's nested scopes) never observe it.
    ``None`` is allowed and simply clears any outer binding.
    """
    handle = _CURRENT.set(token)
    try:
        yield token
    finally:
        _CURRENT.reset(handle)


def check_cancelled() -> None:
    """The hot-path check: no-op when no token is bound.

    Engines call this at batch boundaries — the BSP superstep loop top and
    the iterator engine's operator boundaries — so a cancelled or
    deadline-exceeded query stops within one superstep/operator, not at
    completion.
    """
    token = _CURRENT.get()
    if token is not None:
        token.check()


__all__ = [
    "CancellationToken",
    "QueryCancelled",
    "cancel_scope",
    "check_cancelled",
    "current_token",
]
