"""The TAG-join vertex program: paper Algorithm 2 plus result assembly.

One :class:`TagJoinProgram` instance executes one tree-shaped query
fragment over a TAG graph in three phases driven by the traversal schedule
produced from the TAG plan (Section 5):

* **reduction, bottom-up** — vertices send their id along the current
  step's edge label; recipients that pass their pushed-down filters mark
  the plan edge with the sender ids (a vertex-centric Yannakakis reducer,
  Lemma 5.1);
* **reduction, top-down** — the reversed schedule; messages only travel
  along marked edges, completing the full reduction;
* **collection, bottom-up** — vertices propagate partial result tables
  along marked edges; tuple vertices join the incoming table with their
  own tuple, attribute vertices union the pieces flowing through them.

After the last collection step the vertices holding the plan root's values
assemble the output: plain rows for join queries, per-group aggregates for
local aggregation (each group lives at its GROUP BY attribute vertex), or
partial aggregates sent to a global aggregator vertex for global / scalar
aggregation (Section 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import Expression
from ..algebra.logical import AggregateSpec, AggregationClass, OutputColumn
from ..bsp.aggregators import GroupAggregator
from ..bsp.engine import BSPEngine, SuperstepContext, VertexProgram
from ..bsp.graph import Graph, Vertex, VertexId
from ..tag.encoder import TUPLE_DATA_KEY, TagGraph
from . import operations as ops
from .tag_plan import PlanNode, TagPlan, TraversalStep


class Phase(enum.Enum):
    REDUCE_UP = "reduce_up"
    REDUCE_DOWN = "reduce_down"
    COLLECT = "collect"


@dataclass(frozen=True)
class ScheduledStep:
    """A traversal step tagged with the phase it belongs to."""

    phase: Phase
    step: TraversalStep


#: Name of the global aggregator used for global / scalar aggregation.
GLOBAL_GROUPS_AGGREGATOR = "tagjoin:groups"
#: Name of the collector used when the client asks for centralized output.
GLOBAL_OUTPUT_AGGREGATOR = "tagjoin:output"

# context.state(vertex) keys — live in the run's RunState, never on the
# shared graph, so concurrent executions of one graph cannot interfere
_MARKED_KEY = "tj_marked"  # plan edge id -> set of neighbour vertex ids
_VALUE_KEY = "tj_value"  # plan node id -> list of result rows


def _provenance_key(alias: Optional[str]) -> str:
    """Hidden row key recording which tuple vertex contributed an alias's columns."""
    return f"__vid.{alias}"


@dataclass
class FragmentConfig:
    """Everything the vertex program needs to execute one query fragment."""

    plan: TagPlan
    schedule: List[ScheduledStep]
    alias_tables: Dict[str, str]
    filters: Dict[str, List[Expression]] = field(default_factory=dict)
    required_columns: Dict[str, Optional[Set[str]]] = field(default_factory=dict)
    residual_predicates: List[Expression] = field(default_factory=list)
    output_columns: List[OutputColumn] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)
    group_by_columns: List[str] = field(default_factory=list)  # qualified names
    aggregation_class: AggregationClass = AggregationClass.NONE
    eager_partial_aggregation: bool = True
    collect_output_centrally: bool = False

    @property
    def start_node_id(self) -> str:
        if self.schedule:
            return self.schedule[0].step.source
        # single-node plans: the only relation node is both start and root
        relation_nodes = self.plan.relation_nodes()
        return relation_nodes[0].node_id

    @property
    def root_node_id(self) -> str:
        if self.schedule:
            return self.schedule[-1].step.target
        return self.start_node_id


def build_schedule(plan: TagPlan) -> List[ScheduledStep]:
    """Reduction (up, down) + collection (up) schedule for a plan."""
    from .tag_plan import reduction_schedule

    up_steps, down_steps = reduction_schedule(plan)
    schedule: List[ScheduledStep] = []
    schedule.extend(ScheduledStep(Phase.REDUCE_UP, step) for step in up_steps)
    schedule.extend(ScheduledStep(Phase.REDUCE_DOWN, step) for step in down_steps)
    schedule.extend(ScheduledStep(Phase.COLLECT, step) for step in up_steps)
    return schedule


class TagJoinProgram(VertexProgram):
    """Vertex-centric evaluation of one tree-shaped query fragment (Algorithm 2)."""

    def __init__(
        self,
        graph: TagGraph,
        config: FragmentConfig,
        alias_ranges: Optional[Dict[str, Tuple[int, Optional[int]]]] = None,
        alias_members: Optional[Dict[str, Set[int]]] = None,
        alias_excluded: Optional[Dict[str, Set[int]]] = None,
    ) -> None:
        """
        Args:
            alias_ranges: optional per-alias tuple-index windows
                ``alias -> (lo_exclusive, hi_inclusive | None)`` restricting
                which tuple vertices of that alias participate.  Tuple
                vertex ids encode their 1-based insertion index
                (``R_7`` is the 7th ``R`` tuple), so a window selects a
                contiguous slice of a relation's load history.  Seminaïve
                materialized-view refresh uses windows to evaluate each
                delta term ``Q(old, .., Δ_i, .., full)`` over only the
                relevant old/new vertices.  Aliases without an entry see
                the full relation.
            alias_members: optional per-alias tuple-index *membership* sets
                — an alias with an entry only accepts tuple vertices whose
                index is in the set.  Deletion-delta terms use this to pin
                one alias to exactly the deleted tuples (which are sparse,
                not a contiguous window).
            alias_excluded: optional per-alias tuple-index *exclusion* sets
                — tuple vertices whose index is in the set are rejected.
                The telescoping delete terms use this to keep earlier
                aliases on the "already deleted" side of the product.
        """
        self.graph = graph
        self.config = config
        self.alias_ranges: Dict[str, Tuple[int, Optional[int]]] = dict(alias_ranges or {})
        self.alias_members: Dict[str, Set[int]] = dict(alias_members or {})
        self.alias_excluded: Dict[str, Set[int]] = dict(alias_excluded or {})
        self.output_rows: List[Dict[str, Any]] = []
        self.local_groups: List[Dict[str, Any]] = []
        self._start_node = config.plan.node(config.start_node_id)
        self._root_node = config.plan.node(config.root_node_id)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def initial_active_vertices(self, graph: Graph):
        """Activate the tuple vertices of the start relation (rightmost leaf)."""
        start = self._start_node
        if not start.is_relation:
            raise ValueError("the TAG plan traversal must start at a relation node")
        candidates = graph.vertices_with_label(start.table)
        if (
            not self.config.filters.get(start.alias)
            and start.alias not in self.alias_ranges
            and start.alias not in self.alias_members
            and start.alias not in self.alias_excluded
        ):
            return candidates
        passing = []
        for vertex_id in candidates:
            vertex = graph.vertex(vertex_id)
            if self._tuple_passes_filters(vertex, start.alias):
                passing.append(vertex_id)
        return passing

    def compute(
        self,
        vertex: Vertex,
        messages: List[Any],
        graph: Graph,
        context: SuperstepContext,
    ) -> None:
        superstep = context.superstep
        schedule = self.config.schedule

        if superstep == 0:
            # initial active set: no incoming messages, send for step 0 (or
            # assemble immediately for single-relation plans).
            if not schedule:
                self._assemble(vertex, self._initial_value(vertex, self._start_node), context)
                return
            self._send(vertex, schedule[0], context, is_initial=True)
            return

        received = schedule[superstep - 1]
        accepted = self._receive(vertex, received, messages, context)
        if not accepted:
            return
        if superstep < len(schedule):
            self._send(vertex, schedule[superstep], context)
        else:
            # final superstep: the root's values are complete at this vertex
            rows = context.state(vertex).get(_VALUE_KEY, {}).get(received.step.target, [])
            self._assemble(vertex, rows, context)

    # ------------------------------------------------------------------
    # receive logic
    # ------------------------------------------------------------------
    def _receive(
        self,
        vertex: Vertex,
        scheduled: ScheduledStep,
        messages: List[Any],
        context: SuperstepContext,
    ) -> bool:
        step = scheduled.step
        target_node = self.config.plan.node(step.target)
        context.charge(len(messages))

        if scheduled.phase in (Phase.REDUCE_UP, Phase.REDUCE_DOWN):
            if target_node.is_relation and not self._tuple_passes_filters(
                vertex, target_node.alias
            ):
                return False
            marked = context.state(vertex).setdefault(_MARKED_KEY, {})
            marked[step.edge.edge_id] = set(messages)
            return True

        # collection phase: messages are partial result tables
        incoming: List[Dict[str, Any]] = []
        for table in messages:
            incoming.extend(table)
        if target_node.is_relation:
            # the paper's line 36 (v.value ⋈ {v.data}): joining the incoming
            # table with the vertex's own tuple keeps only the rows whose
            # contribution for this alias *is* this tuple.  Rows flowing back
            # from a sibling subtree may have been seeded by a different
            # tuple of the same relation sharing this join value; the
            # provenance tag added by ``_own_row`` identifies and drops them.
            own_row = self._own_row(vertex, target_node)
            provenance = _provenance_key(target_node.alias)
            if incoming:
                rows = [
                    ops.merge_rows(row, own_row)
                    for row in incoming
                    if row.get(provenance, vertex.vertex_id) == vertex.vertex_id
                ]
            else:
                rows = [own_row]
        else:
            rows = incoming
        context.charge(len(rows))
        values = context.state(vertex).setdefault(_VALUE_KEY, {})
        values[step.target] = rows
        return True

    # ------------------------------------------------------------------
    # send logic
    # ------------------------------------------------------------------
    def _send(
        self,
        vertex: Vertex,
        scheduled: ScheduledStep,
        context: SuperstepContext,
        is_initial: bool = False,
    ) -> None:
        step = scheduled.step
        label = step.label
        edges = self.graph.out_edges(vertex.vertex_id, label)
        context.charge(len(edges))

        if scheduled.phase is Phase.REDUCE_UP:
            for edge in edges:
                context.send(edge.target, vertex.vertex_id)
            return

        marked: Set[VertexId] = (
            context.state(vertex).get(_MARKED_KEY, {}).get(step.edge.edge_id, set())
        )
        if scheduled.phase is Phase.REDUCE_DOWN:
            for edge in edges:
                if edge.target in marked:
                    context.send(edge.target, vertex.vertex_id)
            return

        # collection phase: propagate this node's value along marked edges
        source_node = self.config.plan.node(step.source)
        values = context.state(vertex).get(_VALUE_KEY, {})
        table = values.get(step.source)
        if table is None and source_node.is_relation:
            table = [self._own_row(vertex, source_node)]
        if not table:
            return
        for edge in edges:
            if edge.target in marked:
                context.send(edge.target, table)

    # ------------------------------------------------------------------
    # result assembly (runs at the vertices holding the plan root's values)
    # ------------------------------------------------------------------
    def _assemble(
        self,
        vertex: Vertex,
        rows: List[Dict[str, Any]],
        context: SuperstepContext,
    ) -> None:
        config = self.config
        rows = ops.rows_passing(rows, config.residual_predicates)
        if not rows:
            return
        context.charge(len(rows))

        if config.aggregation_class is AggregationClass.NONE:
            produced = [ops.evaluate_output_columns(config.output_columns, row) for row in rows]
            if config.collect_output_centrally:
                for row in produced:
                    context.aggregate(GLOBAL_OUTPUT_AGGREGATOR, row)
            self.output_rows.extend(produced)
            return

        if config.aggregation_class is AggregationClass.LOCAL:
            # each group lives entirely at this attribute vertex
            partial = ops.partial_of_rows(config.aggregates, rows)
            final = ops.finalize_partial(partial, config.aggregates)
            group_row = ops.evaluate_output_columns(config.output_columns, rows[0])
            group_row.update(final)
            self.local_groups.append(group_row)
            return

        # GLOBAL / SCALAR: contribute to the global aggregator vertex
        if config.eager_partial_aggregation:
            by_group: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
            sample_rows: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
            for row in rows:
                key = ops.group_key(config.group_by_columns, row)
                if key in by_group:
                    by_group[key] = ops.accumulate_partial(by_group[key], config.aggregates, row)
                else:
                    by_group[key] = ops.accumulate_partial(
                        ops.empty_partial(config.aggregates), config.aggregates, row
                    )
                    sample_rows[key] = row
            for key, partial in by_group.items():
                context.aggregate(
                    GLOBAL_GROUPS_AGGREGATOR,
                    (key, {"partial": partial, "sample": sample_rows[key]}),
                )
        else:
            # lazy variant (ablation A03): ship every raw row to the aggregator
            for row in rows:
                key = ops.group_key(config.group_by_columns, row)
                partial = ops.accumulate_partial(
                    ops.empty_partial(config.aggregates), config.aggregates, row
                )
                context.aggregate(
                    GLOBAL_GROUPS_AGGREGATOR, (key, {"partial": partial, "sample": row})
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tuple_passes_filters(self, vertex: Vertex, alias: Optional[str]) -> bool:
        if alias is None:
            return True
        if self.alias_ranges and not self._vertex_in_range(vertex, alias):
            return False
        if (self.alias_members or self.alias_excluded) and not self._vertex_in_sets(
            vertex, alias
        ):
            return False
        predicates = self.config.filters.get(alias)
        if not predicates:
            return True
        tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
        if tuple_data is None:
            return True
        row = ops.row_context_for_tuple(alias, tuple_data)
        return ops.passes_filters(row, predicates)

    def _vertex_in_range(self, vertex: Vertex, alias: str) -> bool:
        window = self.alias_ranges.get(alias)
        if window is None:
            return True
        try:
            index = int(vertex.vertex_id.rsplit("_", 1)[1])
        except (IndexError, ValueError):
            return True  # not a tuple vertex id; windows don't apply
        lo_exclusive, hi_inclusive = window
        if index <= lo_exclusive:
            return False
        return hi_inclusive is None or index <= hi_inclusive

    def _vertex_in_sets(self, vertex: Vertex, alias: str) -> bool:
        members = self.alias_members.get(alias)
        excluded = self.alias_excluded.get(alias)
        if members is None and excluded is None:
            return True
        try:
            index = int(vertex.vertex_id.rsplit("_", 1)[1])
        except (IndexError, ValueError):
            return True  # not a tuple vertex id; sets don't apply
        if members is not None and index not in members:
            return False
        return excluded is None or index not in excluded

    def _own_row(self, vertex: Vertex, node: PlanNode) -> Dict[str, Any]:
        tuple_data = vertex.properties[TUPLE_DATA_KEY]
        columns = self.config.required_columns.get(node.alias)
        row = ops.project_tuple(node.alias, tuple_data, columns)
        row[_provenance_key(node.alias)] = vertex.vertex_id
        return row

    def _initial_value(self, vertex: Vertex, node: PlanNode) -> List[Dict[str, Any]]:
        if not self._tuple_passes_filters(vertex, node.alias):
            return []
        return [self._own_row(vertex, node)]

    # ------------------------------------------------------------------
    def result(self, graph: Graph, aggregators) -> Dict[str, Any]:
        return {
            "output_rows": self.output_rows,
            "local_groups": self.local_groups,
        }


def register_group_aggregator(engine: BSPEngine, aggregates: Sequence[AggregateSpec]) -> None:
    """Register the global GROUP BY aggregator used by GA / scalar queries."""

    def combine(current: Dict[str, Any], update: Dict[str, Any]) -> Dict[str, Any]:
        if current == 0:  # the GroupAggregator's neutral element
            return update
        merged = ops.merge_partials(current["partial"], update["partial"], list(aggregates))
        return {"partial": merged, "sample": current["sample"]}

    engine.register_aggregator(GroupAggregator(GLOBAL_GROUPS_AGGREGATOR, combine=combine))
