"""Vertex-centric two-way joins over a TAG graph (paper Section 4 and parts of 7).

These programs are the faithful, self-contained building blocks of the
paper's exposition:

* :class:`TwoWayJoinProgram` — natural equi-join of two relations on one or
  more attributes.  Single-attribute joins follow Section 4.1 (three
  supersteps: reduce, collect values, combine); multi-attribute joins add
  the Section 4.2 adjustment where one join attribute coordinates and
  intersects the remaining attribute values from both sides.  The result
  can be produced *factorized* (per join value, the two tuple lists) or
  *unfactorized* (their Cartesian product), which drives the A01 ablation.
* :class:`SemiJoinProgram` / :class:`AntiJoinProgram` — Section 7's
  semi-join and anti-join, used for EXISTS / NOT EXISTS subqueries.
* :class:`OuterJoinProgram` — left / right / full outer two-way joins.

The general multi-way algorithm lives in :mod:`repro.core.vertex_program`;
these classes are used directly by unit tests, the paper-figure
reconstructions, micro-benchmarks and the subquery evaluator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

from ..bsp.engine import VertexProgram
from ..bsp.graph import Graph, Vertex
from ..relational.types import NULL
from ..tag.encoder import TUPLE_DATA_KEY, TagGraph, edge_label


class OuterJoinKind(enum.Enum):
    LEFT = "left"
    RIGHT = "right"
    FULL = "full"


@dataclass
class JoinPair:
    """One equi-join condition ``left_table.left_column = right_table.right_column``."""

    left_column: str
    right_column: str


def _qualify(table: str, data: Dict[str, Any]) -> Dict[str, Any]:
    return {f"{table}.{column}": value for column, value in data.items()}


class TwoWayJoinProgram(VertexProgram):
    """R ⋈ S evaluated at the join-attribute vertices.

    Supersteps (single attribute, Section 4.1):

    0. every attribute vertex of the join attribute checks whether it has
       outgoing edges labelled both ``R.A`` and ``S.B``; if so it messages
       the tuple vertices on both sides (reduction), otherwise it
       deactivates itself;
    1. activated tuple vertices send their (projected) tuple back to the
       join-attribute vertex via the marked edge;
    2. the attribute vertex combines the values received from the two
       sides — the factorized representation — and, unless ``factorized``
       is requested, expands their Cartesian product into output tuples.

    With multiple join attributes the first pair coordinates: tuple
    vertices attach their remaining join-attribute values in superstep 1,
    the coordinator intersects them (Section 4.2) and only the agreeing
    combinations contribute to the output.
    """

    def __init__(
        self,
        graph: TagGraph,
        left_table: str,
        right_table: str,
        join_pairs: Sequence[JoinPair],
        factorized: bool = False,
    ) -> None:
        if not join_pairs:
            raise ValueError("a two-way join needs at least one join pair")
        self.graph = graph
        self.left_table = left_table
        self.right_table = right_table
        self.join_pairs = list(join_pairs)
        self.factorized = factorized
        self.primary = self.join_pairs[0]
        self.secondary = self.join_pairs[1:]
        self.left_label = edge_label(left_table, self.primary.left_column)
        self.right_label = edge_label(right_table, self.primary.right_column)
        self.output: List[Dict[str, Any]] = []
        self.factorized_output: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def initial_active_vertices(self, graph: Graph):
        """The attribute vertices of the (primary) join attribute."""
        candidates: Set[str] = set()
        for vertex_id in self.graph.attribute_vertex_ids():
            if graph.out_degree(vertex_id, self.left_label) or graph.out_degree(
                vertex_id, self.right_label
            ):
                candidates.add(vertex_id)
        return candidates

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep == 0:
            self._reduce(vertex, graph, context)
        elif context.superstep == 1:
            self._reply(vertex, messages, graph, context)
        elif context.superstep == 2:
            self._combine(vertex, messages, context)

    # superstep 0: reduction at the join-attribute vertex ----------------
    def _reduce(self, vertex: Vertex, graph: Graph, context) -> None:
        left_edges = graph.out_edges(vertex.vertex_id, self.left_label)
        right_edges = graph.out_edges(vertex.vertex_id, self.right_label)
        context.charge(len(left_edges) + len(right_edges))
        if not left_edges or not right_edges:
            return  # not a join value: deactivate silently
        for edge in left_edges:
            context.send(edge.target, (vertex.vertex_id, "left"))
        for edge in right_edges:
            context.send(edge.target, (vertex.vertex_id, "right"))

    # superstep 1: tuple vertices reply with their values ----------------
    def _reply(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        context.charge(len(messages))
        tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
        if tuple_data is None:
            return
        # secondary intersection keys stay *encoded* (code equality is value
        # equality under the catalog-global dictionary); the tuple payload
        # itself is decoded here because these rows go straight to the user
        decoded = dict(self.graph.decoded_tuple_data(vertex))
        for attribute_vertex_id, side in messages:
            secondary_values = tuple(
                tuple_data.get(pair.left_column if side == "left" else pair.right_column)
                for pair in self.secondary
            )
            context.send(attribute_vertex_id, (side, secondary_values, decoded))

    # superstep 2: combine at the join-attribute vertex -------------------
    def _combine(self, vertex: Vertex, messages: List[Any], context) -> None:
        context.charge(len(messages))
        left_by_secondary: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        right_by_secondary: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for side, secondary_values, tuple_data in messages:
            bucket = left_by_secondary if side == "left" else right_by_secondary
            bucket.setdefault(secondary_values, []).append(tuple_data)

        # Section 4.2: intersect the secondary attribute values of both sides
        agreeing = set(left_by_secondary) & set(right_by_secondary)
        if self.factorized:
            for key in agreeing:
                self.factorized_output.append(
                    {
                        "join_value": vertex.properties.get("value"),
                        "secondary": key,
                        "left": left_by_secondary[key],
                        "right": right_by_secondary[key],
                    }
                )
            context.charge(len(agreeing))
            return
        for key in agreeing:
            for left_tuple in left_by_secondary[key]:
                for right_tuple in right_by_secondary[key]:
                    row = _qualify(self.left_table, left_tuple)
                    row.update(_qualify(self.right_table, right_tuple))
                    self.output.append(row)
                    context.charge()

    def result(self, graph: Graph, aggregators) -> List[Dict[str, Any]]:
        return self.factorized_output if self.factorized else self.output


class SemiJoinProgram(VertexProgram):
    """R ⋉ S: the R-tuples that join with at least one S-tuple (Section 7).

    Supersteps: R-tuples ping their join-attribute vertex; the attribute
    vertex answers only when it also has an ``S.B`` edge; R-tuples that
    receive an answer form the result.
    """

    def __init__(
        self,
        graph: TagGraph,
        left_table: str,
        right_table: str,
        left_column: str,
        right_column: str,
        negated: bool = False,
    ) -> None:
        self.graph = graph
        self.left_table = left_table
        self.right_table = right_table
        self.left_label = edge_label(left_table, left_column)
        self.right_label = edge_label(right_table, right_column)
        self.left_column = left_column
        self.negated = negated
        self.matched: Set[str] = set()

    def initial_active_vertices(self, graph: Graph):
        return graph.vertices_with_label(self.left_table)

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep == 0:
            edges = graph.out_edges(vertex.vertex_id, self.left_label)
            context.charge(len(edges))
            for edge in edges:
                context.send(edge.target, vertex.vertex_id)
        elif context.superstep == 1:
            has_right = graph.out_degree(vertex.vertex_id, self.right_label) > 0
            context.charge(len(messages))
            if has_right:
                for sender in messages:
                    context.send(sender, True)
        elif context.superstep == 2:
            self.matched.add(vertex.vertex_id)

    def result(self, graph: Graph, aggregators) -> List[Dict[str, Any]]:
        rows = []
        for vertex_id in graph.vertices_with_label(self.left_table):
            vertex = graph.vertex(vertex_id)
            in_result = vertex_id in self.matched
            if self.negated:
                in_result = not in_result
            if in_result:
                rows.append(dict(self.graph.decoded_tuple_data(vertex)))
        return rows


class AntiJoinProgram(SemiJoinProgram):
    """R ▷ S: the R-tuples with no matching S-tuple (NOT EXISTS semantics)."""

    def __init__(
        self,
        graph: TagGraph,
        left_table: str,
        right_table: str,
        left_column: str,
        right_column: str,
    ) -> None:
        super().__init__(graph, left_table, right_table, left_column, right_column, negated=True)


class OuterJoinProgram(VertexProgram):
    """Two-way left / right / full outer join (paper Section 7, Outer Joins).

    The attribute vertex keeps computing when the preserved side is present
    even if the other side is missing, padding the missing side with NULLs.
    Dangling tuples of the preserved side whose join value has *no*
    attribute vertex connection at all (NULL join key) are added during
    result assembly, as the paper's full-outer-join discussion prescribes.
    """

    def __init__(
        self,
        graph: TagGraph,
        left_table: str,
        right_table: str,
        left_column: str,
        right_column: str,
        kind: OuterJoinKind = OuterJoinKind.LEFT,
    ) -> None:
        self.graph = graph
        self.left_table = left_table
        self.right_table = right_table
        self.left_column = left_column
        self.right_column = right_column
        self.kind = kind
        self.left_label = edge_label(left_table, left_column)
        self.right_label = edge_label(right_table, right_column)
        self.output: List[Dict[str, Any]] = []
        self._matched_left: Set[str] = set()
        self._matched_right: Set[str] = set()

    def initial_active_vertices(self, graph: Graph):
        candidates = set()
        for vertex_id in self.graph.attribute_vertex_ids():
            if graph.out_degree(vertex_id, self.left_label) or graph.out_degree(
                vertex_id, self.right_label
            ):
                candidates.add(vertex_id)
        return candidates

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep == 0:
            left_edges = graph.out_edges(vertex.vertex_id, self.left_label)
            right_edges = graph.out_edges(vertex.vertex_id, self.right_label)
            context.charge(len(left_edges) + len(right_edges))
            keep = False
            if self.kind is OuterJoinKind.LEFT:
                keep = bool(left_edges)
            elif self.kind is OuterJoinKind.RIGHT:
                keep = bool(right_edges)
            else:
                keep = bool(left_edges or right_edges)
            if not keep:
                return
            for edge in left_edges:
                context.send(edge.target, (vertex.vertex_id, "left"))
            for edge in right_edges:
                context.send(edge.target, (vertex.vertex_id, "right"))
        elif context.superstep == 1:
            tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
            if tuple_data is None:
                return
            context.charge(len(messages))
            decoded = dict(self.graph.decoded_tuple_data(vertex))
            for attribute_vertex_id, side in messages:
                context.send(attribute_vertex_id, (side, vertex.vertex_id, decoded))
        elif context.superstep == 2:
            left_rows = [(vid, data) for side, vid, data in messages if side == "left"]
            right_rows = [(vid, data) for side, vid, data in messages if side == "right"]
            context.charge(len(messages))
            self._matched_left.update(vid for vid, _ in left_rows if right_rows)
            self._matched_right.update(vid for vid, _ in right_rows if left_rows)
            if left_rows and right_rows:
                for _lvid, left_data in left_rows:
                    for _rvid, right_data in right_rows:
                        row = _qualify(self.left_table, left_data)
                        row.update(_qualify(self.right_table, right_data))
                        self.output.append(row)
            elif left_rows and self.kind in (OuterJoinKind.LEFT, OuterJoinKind.FULL):
                for _lvid, left_data in left_rows:
                    self.output.append(self._padded(left_data, left_side=True))
            elif right_rows and self.kind in (OuterJoinKind.RIGHT, OuterJoinKind.FULL):
                for _rvid, right_data in right_rows:
                    self.output.append(self._padded(right_data, left_side=False))

    def _padded(self, data: Dict[str, Any], left_side: bool) -> Dict[str, Any]:
        if left_side:
            row = _qualify(self.left_table, data)
            other_schema = self._schema_columns(self.right_table)
            row.update({f"{self.right_table}.{column}": NULL for column in other_schema})
        else:
            row = _qualify(self.right_table, data)
            other_schema = self._schema_columns(self.left_table)
            row.update({f"{self.left_table}.{column}": NULL for column in other_schema})
        return row

    def _schema_columns(self, table: str) -> List[str]:
        vertices = self.graph.tuple_vertices_of(table)
        if not vertices:
            return []
        sample = self.graph.vertex(vertices[0])
        return list(sample.properties[TUPLE_DATA_KEY])

    def result(self, graph: Graph, aggregators) -> List[Dict[str, Any]]:
        # add preserved-side tuples whose join key was NULL (never activated)
        preserve_left = self.kind in (OuterJoinKind.LEFT, OuterJoinKind.FULL)
        preserve_right = self.kind in (OuterJoinKind.RIGHT, OuterJoinKind.FULL)
        rows = list(self.output)
        if preserve_left:
            for vertex_id in graph.vertices_with_label(self.left_table):
                vertex = graph.vertex(vertex_id)
                # decode before the NULL test: encoded columns hold an
                # in-band sentinel, never the Python NULL itself
                data = self.graph.decoded_tuple_data(vertex)
                if data.get(self.left_column) is NULL:
                    rows.append(self._padded(dict(data), left_side=True))
        if preserve_right:
            for vertex_id in graph.vertices_with_label(self.right_table):
                vertex = graph.vertex(vertex_id)
                data = self.graph.decoded_tuple_data(vertex)
                if data.get(self.right_column) is NULL:
                    rows.append(self._padded(dict(data), left_side=False))
        return rows
