"""Vertex-centric Cartesian products (paper Section 6.3, Algorithms A and B).

Cartesian products arise when a query's join graph is disconnected, and as
the combination step of the "union of stars" decomposition (Section 6.4).
Both algorithms rely on a *global aggregator* vertex whose id every vertex
knows:

* **Algorithm A** — every tuple of both relations ships its data to the
  aggregator, which builds the product centrally: ``|R| + |S|``
  communication, ``|R| * |S|`` (sequential) computation.
* **Algorithm B** — the aggregator first gathers the ids of the R-tuple
  vertices and hands them to the S-tuple vertices, which then send their
  tuples directly to every R-tuple vertex; each R vertex combines the
  received tuples with its own, leaving the product distributed:
  ``O(|R| * |S|)`` communication and computation, but fully parallel.

In this reproduction the aggregator's broadcast of the id list is realised
by letting the S vertices read the aggregated value at the next superstep
(the engine charges the read as per-vertex computation rather than as
messages); the dominant ``|R| * |S|`` data traffic of Algorithm B is sent
as real messages and accounted exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..bsp.aggregators import CollectAggregator
from ..bsp.engine import BSPEngine, VertexProgram
from ..bsp.graph import Graph, Vertex
from ..bsp.metrics import RunMetrics
from ..tag.encoder import TUPLE_DATA_KEY, TagGraph


def _qualify(table: str, data: Dict[str, Any]) -> Dict[str, Any]:
    return {f"{table}.{column}": value for column, value in data.items()}


class CartesianProductA(VertexProgram):
    """Algorithm A: gather both relations at the global aggregator."""

    AGGREGATOR = "cartesian:algorithm_a"

    def __init__(self, engine: BSPEngine, graph: TagGraph, left_table: str, right_table: str) -> None:
        self.graph = graph
        self.left_table = left_table
        self.right_table = right_table
        engine.register_aggregator(CollectAggregator(self.AGGREGATOR))

    def initial_active_vertices(self, graph: Graph):
        return graph.vertices_with_label(self.left_table) + graph.vertices_with_label(
            self.right_table
        )

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep > 0:
            return
        tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
        if tuple_data is None:
            return
        context.charge()
        # rows leave the graph here, so decode dictionary/sentinel codes now
        context.aggregate(
            self.AGGREGATOR, (vertex.label, dict(self.graph.decoded_tuple_data(vertex)))
        )

    def result(self, graph: Graph, aggregators) -> List[Dict[str, Any]]:
        gathered = aggregators.get(self.AGGREGATOR).value()
        left_rows = [data for label, data in gathered if label == self.left_table]
        right_rows = [data for label, data in gathered if label == self.right_table]
        product = []
        for left in left_rows:
            for right in right_rows:
                row = _qualify(self.left_table, left)
                row.update(_qualify(self.right_table, right))
                product.append(row)
        return product


class _GatherIds(VertexProgram):
    """Phase 1 of Algorithm B: collect the ids of the left relation's vertices."""

    AGGREGATOR = "cartesian:left_ids"

    def __init__(self, engine: BSPEngine, left_table: str) -> None:
        self.left_table = left_table
        engine.register_aggregator(CollectAggregator(self.AGGREGATOR))

    def initial_active_vertices(self, graph: Graph):
        return graph.vertices_with_label(self.left_table)

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep > 0:
            return
        context.charge()
        context.aggregate(self.AGGREGATOR, vertex.vertex_id)

    def result(self, graph: Graph, aggregators) -> List[str]:
        return list(aggregators.get(self.AGGREGATOR).value())


class _ScatterAndCombine(VertexProgram):
    """Phase 2 of Algorithm B: S-tuples ship their data to every R-tuple vertex."""

    def __init__(
        self, graph: TagGraph, left_table: str, right_table: str, left_ids: Sequence[str]
    ) -> None:
        self.graph = graph
        self.left_table = left_table
        self.right_table = right_table
        self.left_ids = list(left_ids)
        self.rows_by_left_vertex: Dict[str, List[Dict[str, Any]]] = {}

    def initial_active_vertices(self, graph: Graph):
        return graph.vertices_with_label(self.right_table)

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep == 0:
            tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
            if tuple_data is None:
                return
            # decoded once at the send — the messages ARE the result rows
            decoded = dict(self.graph.decoded_tuple_data(vertex))
            context.charge(len(self.left_ids))
            for left_id in self.left_ids:
                context.send(left_id, decoded)
            return
        # superstep 1: R-tuple vertices combine the received S-tuples with their own
        if vertex.properties.get(TUPLE_DATA_KEY) is None:
            return
        own = self.graph.decoded_tuple_data(vertex)
        combined = []
        for right_data in messages:
            row = _qualify(self.left_table, own)
            row.update(_qualify(self.right_table, right_data))
            combined.append(row)
            context.charge()
        self.rows_by_left_vertex[vertex.vertex_id] = combined

    def result(self, graph: Graph, aggregators) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for combined in self.rows_by_left_vertex.values():
            rows.extend(combined)
        return rows


def cartesian_product_b(
    engine: BSPEngine,
    graph: TagGraph,
    left_table: str,
    right_table: str,
    metrics: Optional[RunMetrics] = None,
) -> List[Dict[str, Any]]:
    """Run Algorithm B end to end (two vertex programs), returning the product.

    The result is the union of the per-R-vertex partial products, i.e. the
    "distributed output" the paper describes; metrics for both phases are
    merged into ``metrics`` when provided.
    """
    gather = _GatherIds(engine, left_table)
    left_ids = engine.run(gather)
    if metrics is not None:
        metrics.merge(engine.last_metrics)
    scatter = _ScatterAndCombine(graph, left_table, right_table, left_ids)
    rows = engine.run(scatter)
    if metrics is not None:
        metrics.merge(engine.last_metrics)
    return rows


def cartesian_product_rows(
    left_rows: List[Dict[str, Any]], right_rows: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Plain-Python product of two row lists (used to combine the results of
    disconnected query components after each has been evaluated)."""
    product = []
    for left in left_rows:
        for right in right_rows:
            merged = dict(left)
            merged.update(right)
            product.append(merged)
    return product
