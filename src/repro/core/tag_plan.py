"""TAG traversal plans (paper Section 5.1) and step generation (Algorithm 1).

A TAG plan is a tree whose nodes are *relation nodes* (one per alias of the
join tree) and *attribute nodes* (one per join-tree edge, labelled with the
edge's join variable, plus an optional group-by attribute node used as the
plan root for local aggregation).  Plan edges connect an attribute node to
a relation node and carry the TAG graph edge label ``TABLE.column`` that
the vertex program sends messages along.

``generate_steps`` is the reproduction of Algorithm 1 (GenSteps): it
produces the connected bottom-up traversal of the plan starting from the
rightmost leaf.  The reduction phase runs these steps, then their reverse
(top-down), and the collection phase runs the bottom-up list again
(Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..relational.catalog import Catalog
from .jointree import JoinTree, TreeEdge


class PlanError(ValueError):
    """Raised for malformed TAG plans."""


RELATION_NODE = "relation"
ATTRIBUTE_NODE = "attribute"


@dataclass(frozen=True)
class PlanNode:
    """A node of the TAG plan (relation or attribute)."""

    node_id: str
    kind: str  # RELATION_NODE or ATTRIBUTE_NODE
    alias: Optional[str] = None  # relation nodes: the query alias
    table: Optional[str] = None  # relation nodes: the base relation name
    variable_name: Optional[str] = None  # attribute nodes: display name

    @property
    def is_relation(self) -> bool:
        return self.kind == RELATION_NODE

    @property
    def is_attribute(self) -> bool:
        return self.kind == ATTRIBUTE_NODE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_relation:
            return f"PlanNode({self.alias}:{self.table})"
        return f"PlanNode(<{self.variable_name}>)"


@dataclass(frozen=True)
class PlanEdge:
    """An edge of the TAG plan between an attribute node and a relation node.

    ``label`` is the TAG graph edge label ``TABLE.column`` used for
    messaging in both directions (the TAG encoding is undirected).
    """

    edge_id: str
    attribute_node: str
    relation_node: str
    label: str
    column: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanEdge({self.attribute_node} --{self.label}-- {self.relation_node})"


@dataclass(frozen=True)
class TraversalStep:
    """One traversal step: active vertices of ``source`` send along ``edge`` to ``target``."""

    edge: PlanEdge
    source: str
    target: str

    @property
    def label(self) -> str:
        return self.edge.label

    def reversed(self) -> "TraversalStep":
        return TraversalStep(self.edge, self.target, self.source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Step({self.source} --{self.label}--> {self.target})"


@dataclass
class TagPlan:
    """The TAG traversal plan of one connected, tree-shaped query fragment."""

    nodes: Dict[str, PlanNode] = field(default_factory=dict)
    edges: List[PlanEdge] = field(default_factory=list)
    root: Optional[str] = None
    # adjacency: parent node id -> ordered child node ids
    children: Dict[str, List[str]] = field(default_factory=dict)
    parent: Dict[str, Optional[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_node(self, node: PlanNode, parent_id: Optional[str]) -> PlanNode:
        if node.node_id in self.nodes:
            raise PlanError(f"duplicate plan node {node.node_id!r}")
        self.nodes[node.node_id] = node
        self.children[node.node_id] = []
        self.parent[node.node_id] = parent_id
        if parent_id is None:
            if self.root is not None:
                raise PlanError("plan already has a root")
            self.root = node.node_id
        else:
            self.children[parent_id].append(node.node_id)
        return node

    def add_edge(self, edge: PlanEdge) -> PlanEdge:
        self.edges.append(edge)
        return edge

    def edge_between(self, node_a: str, node_b: str) -> PlanEdge:
        for edge in self.edges:
            endpoints = {edge.attribute_node, edge.relation_node}
            if endpoints == {node_a, node_b}:
                return edge
        raise PlanError(f"no plan edge between {node_a!r} and {node_b!r}")

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> PlanNode:
        return self.nodes[node_id]

    def relation_nodes(self) -> List[PlanNode]:
        return [node for node in self.nodes.values() if node.is_relation]

    def attribute_nodes(self) -> List[PlanNode]:
        return [node for node in self.nodes.values() if node.is_attribute]

    def leaves(self) -> List[str]:
        return [node_id for node_id, childs in self.children.items() if not childs]

    def rightmost_leaf(self) -> str:
        """The leaf reached by always following the last child (Algorithm 1's start)."""
        current = self.root
        if current is None:
            raise PlanError("plan has no root")
        while self.children[current]:
            current = self.children[current][-1]
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagPlan(root={self.root}, {len(self.nodes)} nodes, {len(self.edges)} edges)"


# ----------------------------------------------------------------------
# plan construction from a join tree
# ----------------------------------------------------------------------
def relation_node_id(alias: str) -> str:
    return f"rel:{alias}"


def attribute_node_id(edge: TreeEdge) -> str:
    return f"attr:{edge.child}~{edge.parent}:{edge.variable.name}"


def build_tag_plan(
    tree: JoinTree,
    catalog: Catalog,
    alias_tables: Dict[str, str],
    group_by_root: Optional[Tuple[str, str]] = None,
) -> TagPlan:
    """Build a TAG plan from a join tree.

    Args:
        tree: rooted join tree over the query aliases.
        catalog: used only for validation of column names.
        alias_tables: alias -> base relation name.
        group_by_root: optional ``(alias, column)`` pair; when given, a
            fresh attribute node for that column is created *above* the
            root relation node and becomes the plan root.  This realises
            the paper's local-aggregation placement (Section 7, footnote 8):
            the GROUP BY attribute is the root so each of its attribute
            vertices ends up holding exactly its group's joined tuples.
    """
    plan = TagPlan()

    # optional group-by attribute root
    root_parent: Optional[str] = None
    if group_by_root is not None:
        group_alias, group_column = group_by_root
        if group_alias != tree.root:
            raise PlanError(
                "group_by_root alias must be the join tree root "
                f"({group_alias!r} != {tree.root!r})"
            )
        table = alias_tables[group_alias]
        _check_column(catalog, table, group_column)
        group_node = PlanNode(
            node_id=f"attr:groupby:{group_alias}.{group_column}",
            kind=ATTRIBUTE_NODE,
            variable_name=f"{group_alias}.{group_column}",
        )
        plan.add_node(group_node, parent_id=None)
        root_parent = group_node.node_id

    # relation node for the join tree root
    root_table = alias_tables[tree.root]
    root_node = PlanNode(
        node_id=relation_node_id(tree.root),
        kind=RELATION_NODE,
        alias=tree.root,
        table=root_table,
    )
    plan.add_node(root_node, parent_id=root_parent)
    if root_parent is not None:
        group_alias, group_column = group_by_root  # type: ignore[misc]
        plan.add_edge(
            PlanEdge(
                edge_id=f"pe:groupby:{group_alias}.{group_column}",
                attribute_node=root_parent,
                relation_node=root_node.node_id,
                label=f"{root_table}.{group_column}",
                column=group_column,
            )
        )

    # recursively attach children: child relation node hangs below a fresh
    # attribute node which hangs below the parent relation node
    def attach(parent_alias: str) -> None:
        for child_alias in tree.children(parent_alias):
            edge = tree.edge_to_parent(child_alias)
            if edge is None:
                raise PlanError(f"missing tree edge for {child_alias!r}")
            parent_table = alias_tables[parent_alias]
            child_table = alias_tables[child_alias]
            _check_column(catalog, parent_table, edge.parent_column)
            _check_column(catalog, child_table, edge.child_column)

            attr_node = PlanNode(
                node_id=attribute_node_id(edge),
                kind=ATTRIBUTE_NODE,
                variable_name=edge.variable.name,
            )
            plan.add_node(attr_node, parent_id=relation_node_id(parent_alias))
            plan.add_edge(
                PlanEdge(
                    edge_id=f"pe:{attr_node.node_id}:{parent_alias}",
                    attribute_node=attr_node.node_id,
                    relation_node=relation_node_id(parent_alias),
                    label=f"{parent_table}.{edge.parent_column}",
                    column=edge.parent_column,
                )
            )
            child_node = PlanNode(
                node_id=relation_node_id(child_alias),
                kind=RELATION_NODE,
                alias=child_alias,
                table=child_table,
            )
            plan.add_node(child_node, parent_id=attr_node.node_id)
            plan.add_edge(
                PlanEdge(
                    edge_id=f"pe:{attr_node.node_id}:{child_alias}",
                    attribute_node=attr_node.node_id,
                    relation_node=child_node.node_id,
                    label=f"{child_table}.{edge.child_column}",
                    column=edge.child_column,
                )
            )
            attach(child_alias)

    attach(tree.root)
    return plan


def _check_column(catalog: Catalog, table: str, column: str) -> None:
    schema = catalog.schema(table)
    if column not in schema:
        raise PlanError(f"relation {table!r} has no column {column!r}")


# ----------------------------------------------------------------------
# Algorithm 1: GenSteps — connected bottom-up traversal
# ----------------------------------------------------------------------
def generate_steps(plan: TagPlan) -> List[TraversalStep]:
    """Generate the connected bottom-up traversal of the plan (Algorithm 1).

    The returned list starts at the rightmost leaf and ends at the root,
    descending into sibling subtrees along the way so that every step
    starts from the node reached by the previous one.  Reversing each step
    of the reversed list yields the top-down pass used by the reduction
    phase's second half.
    """
    if plan.root is None:
        raise PlanError("plan has no root")
    if len(plan.nodes) == 1:
        return []

    # forward Euler walk: entry pushes are descents, exit pushes are ascents
    walk: List[TraversalStep] = []

    def dfs(node_id: str, in_step: Optional[TraversalStep], on_rightmost: bool) -> None:
        if in_step is not None:
            walk.append(in_step)
        child_ids = plan.children[node_id]
        for index, child_id in enumerate(child_ids):
            edge = plan.edge_between(node_id, child_id)
            descend = TraversalStep(edge, source=node_id, target=child_id)
            dfs(child_id, descend, on_rightmost and index == len(child_ids) - 1)
        if in_step is not None and not on_rightmost:
            walk.append(in_step.reversed())

    dfs(plan.root, None, True)

    # the bottom-up list is the reverse walk with every step flipped
    return [step.reversed() for step in reversed(walk)]


def generate_label_list(plan: TagPlan) -> List[str]:
    """The list of edge labels driving the vertex program (paper Figure 4(c))."""
    return [step.label for step in generate_steps(plan)]


def reduction_schedule(plan: TagPlan) -> Tuple[List[TraversalStep], List[TraversalStep]]:
    """Bottom-up and top-down step lists of the reduction phase."""
    up_steps = generate_steps(plan)
    down_steps = [step.reversed() for step in reversed(up_steps)]
    return up_steps, down_steps


def full_schedule(plan: TagPlan) -> List[TraversalStep]:
    """Reduction (up + down) followed by collection (up again): Algorithm 2's drive list."""
    up_steps, down_steps = reduction_schedule(plan)
    return up_steps + down_steps + up_steps
