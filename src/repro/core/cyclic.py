"""Worst-case-optimal vertex-centric evaluation of cycle queries (Section 6).

Implements the paper's triangle algorithm (Section 6.1) and its
generalisation to n-way cycles (Section 6.2):

* the computation starts at the attribute vertices of the first join
  variable ``X1`` and classifies each value as **heavy** (it occurs in more
  than ``theta`` tuples of ``R1``) or **light**;
* heavy values propagate their identity in both directions around the
  cycle, meeting at the attribute vertices of ``X_{ceil(n/2)+1}``;
* light values wake up their ``R1`` tuples, which start per-tuple
  propagations instead — bounding the replication by ``theta`` (equation
  (3) of the paper);
* the meeting vertices intersect what arrived from the two directions and
  emit the output tuples of every closed cycle.

With ``theta = sqrt(IN)`` the total message count stays within the AGM
bound (``IN^{3/2}`` for triangles, ``IN^{n/2}`` for n-cycles), which the
property-based tests assert.  Setting ``theta`` to +inf degenerates into
the "vanilla" algorithm of Section 6.1.1 (optimal for PK-FK joins), which
is what the theta-sweep ablation benchmark exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import Expression
from ..bsp.engine import VertexProgram
from ..bsp.graph import Graph, Vertex
from ..tag.encoder import TUPLE_DATA_KEY, TagGraph, edge_label
from . import operations as ops


@dataclass(frozen=True)
class CycleRelation:
    """One relation of a cycle query.

    ``back_column`` joins with the previous relation in the cycle (variable
    ``X_i``), ``forward_column`` with the next one (variable ``X_{i+1}``);
    the last relation's forward column closes the cycle on ``X_1``.
    """

    alias: str
    table: str
    back_column: str
    forward_column: str


@dataclass(frozen=True)
class _Hop:
    """One hop of a propagation path: who receives and along which label."""

    label: str  # graph edge label the *previous* node sends along
    kind: str  # "relation" or "attribute"
    alias: Optional[str] = None  # for relation hops


# context.state(vertex) key at the meeting vertices (run-scoped, not on the graph)
_MEET_KEY = "cycle_meet"


class CycleQueryProgram(VertexProgram):
    """Evaluate ``R1(X1,X2) ⋈ R2(X2,X3) ⋈ ... ⋈ Rn(Xn,X1)`` over a TAG graph."""

    def __init__(
        self,
        graph: TagGraph,
        relations: Sequence[CycleRelation],
        filters: Optional[Dict[str, List[Expression]]] = None,
        theta: Optional[float] = None,
        required_columns: Optional[Dict[str, Optional[Set[str]]]] = None,
    ) -> None:
        if len(relations) < 3:
            raise ValueError("a cycle query needs at least three relations")
        self.graph = graph
        self.relations = list(relations)
        self.filters = filters or {}
        self.required_columns = required_columns or {}
        total_input = sum(
            len(graph.tuple_vertices_of(relation.table)) for relation in self.relations
        )
        self.theta = theta if theta is not None else math.sqrt(max(1, total_input))
        self.output_rows: List[Dict[str, Any]] = []
        self._build_paths()

    # ------------------------------------------------------------------
    # path construction
    # ------------------------------------------------------------------
    def _build_paths(self) -> None:
        relations = self.relations
        n = len(relations)
        meet_index = math.ceil(n / 2) + 1  # 1-based variable index X_m

        # left path: X1 -> R1 -> X2 -> R2 -> ... -> X_m
        left: List[_Hop] = []
        for i in range(meet_index - 1):  # relations R1 .. R_{m-1}
            relation = relations[i]
            left.append(
                _Hop(edge_label(relation.table, relation.back_column), "relation", relation.alias)
            )
            left.append(_Hop(edge_label(relation.table, relation.forward_column), "attribute"))

        # right path: X1 -> Rn -> Xn -> R_{n-1} -> ... -> X_m
        right: List[_Hop] = []
        for i in range(n - 1, meet_index - 2, -1):  # relations Rn .. R_m
            relation = relations[i]
            right.append(
                _Hop(
                    edge_label(relation.table, relation.forward_column), "relation", relation.alias
                )
            )
            right.append(_Hop(edge_label(relation.table, relation.back_column), "attribute"))

        self._paths: Dict[str, List[_Hop]] = {"L": left, "R": right}
        self._first_relation = relations[0]
        self._start_label = edge_label(
            self._first_relation.table, self._first_relation.back_column
        )

    # ------------------------------------------------------------------
    def initial_active_vertices(self, graph: Graph):
        """The X1 attribute vertices (values appearing in R1's back column)."""
        return [
            vertex_id
            for vertex_id in self.graph.attribute_vertex_ids()
            if graph.out_degree(vertex_id, self._start_label) > 0
        ]

    def compute(self, vertex: Vertex, messages: List[Any], graph: Graph, context) -> None:
        if context.superstep == 0:
            self._start(vertex, graph, context)
            return
        for message in messages:
            self._process(vertex, message, graph, context)

    # ------------------------------------------------------------------
    # superstep 0: heavy/light classification at the X1 attribute vertices
    # ------------------------------------------------------------------
    def _start(self, vertex: Vertex, graph: Graph, context) -> None:
        degree = graph.out_degree(vertex.vertex_id, self._start_label)
        context.charge(degree)
        if degree == 0:
            return
        if degree > self.theta:
            # heavy: propagate the value's identity in both directions
            origin = ("heavy", vertex.vertex_id)
            self._forward(vertex, graph, context, "L", origin, hop_index=0, rows=[{}])
            self._forward(vertex, graph, context, "R", origin, hop_index=0, rows=[{}])
        else:
            # light: wake up the R1 tuples; they start per-tuple propagations
            for edge in graph.out_edges(vertex.vertex_id, self._start_label):
                context.send(edge.target, ("WAKE", vertex.vertex_id))
                context.charge()

    # ------------------------------------------------------------------
    def _process(self, vertex: Vertex, message: Tuple, graph: Graph, context) -> None:
        kind = message[0]
        if kind == "WAKE":
            self._wake(vertex, graph, context)
            return
        if kind == "FWD":
            # relay: forward the rows along the given path position without
            # processing a hop (used by light tuples to bounce off X1)
            _tag, direction, origin, hop_index, rows = message
            self._forward(vertex, graph, context, direction, origin, hop_index, rows)
            return
        _tag, direction, origin, hop_index, rows = message
        path = self._paths[direction]
        hop = path[hop_index]
        context.charge(len(rows))

        if hop.kind == "relation":
            tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
            if tuple_data is None:
                return
            if not self._passes(hop.alias, tuple_data):
                return
            own_row = ops.project_tuple(
                hop.alias, tuple_data, self.required_columns.get(hop.alias)
            )
            extended = [ops.merge_rows(row, own_row) for row in rows]
            self._forward(vertex, graph, context, direction, origin, hop_index + 1, extended)
            return

        # attribute hop
        if hop_index == len(path) - 1:
            self._meet(vertex, direction, origin, rows, context)
        else:
            self._forward(vertex, graph, context, direction, origin, hop_index + 1, rows)

    def _wake(self, vertex: Vertex, graph: Graph, context) -> None:
        """A light R1 tuple starts its own propagation (origin = its vertex id)."""
        relation = self._first_relation
        tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
        if tuple_data is None or not self._passes(relation.alias, tuple_data):
            return
        own_row = ops.project_tuple(
            relation.alias, tuple_data, self.required_columns.get(relation.alias)
        )
        origin = ("light", vertex.vertex_id)
        # left: continue from X2 onwards (hop index 1 in the left path)
        self._forward(vertex, graph, context, "L", origin, hop_index=1, rows=[own_row])
        # right: bounce off the X1 attribute vertex, which relays into Rn
        for edge in graph.out_edges(
            vertex.vertex_id, edge_label(relation.table, relation.back_column)
        ):
            context.send(edge.target, ("FWD", "R", origin, 0, [own_row]))
            context.charge()

    def _forward(
        self,
        vertex: Vertex,
        graph: Graph,
        context,
        direction: str,
        origin: Tuple[str, str],
        hop_index: int,
        rows: List[Dict[str, Any]],
    ) -> None:
        path = self._paths[direction]
        if hop_index >= len(path) or not rows:
            return
        label = path[hop_index].label
        edges = graph.out_edges(vertex.vertex_id, label)
        context.charge(len(edges))
        for edge in edges:
            context.send(edge.target, ("MSG", direction, origin, hop_index, rows))

    # ------------------------------------------------------------------
    # the meeting attribute vertices intersect both directions
    # ------------------------------------------------------------------
    def _meet(
        self,
        vertex: Vertex,
        direction: str,
        origin: Tuple[str, str],
        rows: List[Dict[str, Any]],
        context,
    ) -> None:
        store = context.state(vertex).setdefault(_MEET_KEY, {"L": {}, "R": {}})
        other = "R" if direction == "L" else "L"
        # join the new arrivals against what the other direction already sent
        other_rows = store[other].get(origin, [])
        for new_row in rows:
            for existing_row in other_rows:
                combined = ops.merge_rows(new_row, existing_row)
                if self._closes_cycle(combined):
                    self.output_rows.append(combined)
                    context.charge()
        store[direction].setdefault(origin, []).extend(rows)

    def _closes_cycle(self, row: Dict[str, Any]) -> bool:
        """Verify every join condition of the cycle on an assembled row.

        The propagation already enforces the conditions along each path;
        this re-check also enforces the two conditions at the junctions
        (X1 and X_m), which is what makes the meet an intersection.
        """
        relations = self.relations
        n = len(relations)
        for index, relation in enumerate(relations):
            next_relation = relations[(index + 1) % n]
            left_value = row.get(f"{relation.alias}.{relation.forward_column}")
            right_value = row.get(f"{next_relation.alias}.{next_relation.back_column}")
            if left_value is None or right_value is None or left_value != right_value:
                return False
        return True

    # ------------------------------------------------------------------
    def _relation_by_alias(self, alias: Optional[str]) -> CycleRelation:
        for relation in self.relations:
            if relation.alias == alias:
                return relation
        raise KeyError(f"unknown cycle alias {alias!r}")

    def _passes(self, alias: str, tuple_data: Dict[str, Any]) -> bool:
        predicates = self.filters.get(alias)
        if not predicates:
            return True
        row = ops.row_context_for_tuple(alias, tuple_data)
        return ops.passes_filters(row, predicates)

    def result(self, graph: Graph, aggregators) -> List[Dict[str, Any]]:
        return self.output_rows


class TriangleQueryProgram(CycleQueryProgram):
    """The triangle query R(A,B) ⋈ S(B,C) ⋈ T(C,A) (paper Section 6.1)."""

    def __init__(
        self,
        graph: TagGraph,
        r: Tuple[str, str, str],
        s: Tuple[str, str, str],
        t: Tuple[str, str, str],
        theta: Optional[float] = None,
        filters: Optional[Dict[str, List[Expression]]] = None,
    ) -> None:
        """Each of ``r``, ``s``, ``t`` is ``(table, back_column, forward_column)``.

        For the canonical triangle: ``r = ("R", "A", "B")``, ``s = ("S", "B",
        "C")``, ``t = ("T", "C", "A")``.
        """
        relations = [
            CycleRelation(alias=r[0], table=r[0], back_column=r[1], forward_column=r[2]),
            CycleRelation(alias=s[0], table=s[0], back_column=s[1], forward_column=s[2]),
            CycleRelation(alias=t[0], table=t[0], back_column=t[1], forward_column=t[2]),
        ]
        super().__init__(graph, relations, filters=filters, theta=theta)
