"""Join trees (GHD with single-relation bags) for TAG plans.

For acyclic queries the GYO elimination order yields a join tree directly
(paper Section 5.1).  For cyclic queries we follow the paper's two-step
TAG-join strategy in a simplified but sound form: a spanning tree of the
join graph drives the traversal, the join conditions not represented by
spanning-tree edges ("residual" conditions, e.g. the cycle-closing edge of
TPC-H Q5) are verified when results are assembled.  Pure cycle queries are
additionally recognised upstream and dispatched to the worst-case-optimal
algorithm of Section 6 (see :mod:`repro.core.cyclic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.logical import JoinCondition, QuerySpec
from .hypergraph import Hypergraph, JoinVariable, alias_adjacency, build_hypergraph


class JoinTreeError(ValueError):
    """Raised when a join tree cannot be constructed."""


@dataclass
class TreeEdge:
    """A join-tree edge ``child -- parent`` connected through ``variable``."""

    child: str
    parent: str
    variable: JoinVariable

    @property
    def child_column(self) -> str:
        column = self.variable.column_of(self.child)
        if column is None:
            raise JoinTreeError(
                f"variable {self.variable.name} has no column for alias {self.child!r}"
            )
        return column

    @property
    def parent_column(self) -> str:
        column = self.variable.column_of(self.parent)
        if column is None:
            raise JoinTreeError(
                f"variable {self.variable.name} has no column for alias {self.parent!r}"
            )
        return column


@dataclass
class JoinTree:
    """A rooted join tree over the aliases of a query."""

    root: str
    parent: Dict[str, Optional[str]]
    edges: List[TreeEdge]
    residual_conditions: List[JoinCondition] = field(default_factory=list)
    is_acyclic_query: bool = True

    # ------------------------------------------------------------------
    def children(self, alias: str) -> List[str]:
        return [edge.child for edge in self.edges if edge.parent == alias]

    def edge_to_parent(self, alias: str) -> Optional[TreeEdge]:
        for edge in self.edges:
            if edge.child == alias:
                return edge
        return None

    def aliases(self) -> List[str]:
        return list(self.parent)

    def depth_first_order(self) -> List[str]:
        """Preorder of aliases starting from the root."""
        order: List[str] = []

        def visit(alias: str) -> None:
            order.append(alias)
            for child in self.children(alias):
                visit(child)

        visit(self.root)
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = ", ".join(
            f"{edge.child}-[{edge.variable.name}]->{edge.parent}" for edge in self.edges
        )
        return f"JoinTree(root={self.root}, {rendered})"


def build_join_tree(
    spec: QuerySpec,
    hypergraph: Optional[Hypergraph] = None,
    preferred_root: Optional[str] = None,
) -> JoinTree:
    """Build a join tree for (the connected join graph of) ``spec``.

    Acyclic queries get a GYO-derived join tree; cyclic queries get a
    BFS spanning tree plus residual conditions.  ``preferred_root`` (an
    alias) re-roots the tree, which the executor uses to place the
    collection phase's final values where aggregation wants them.
    """
    hypergraph = hypergraph or build_hypergraph(spec)
    aliases = spec.aliases()
    if not aliases:
        raise JoinTreeError("query has no tables")
    if len(aliases) == 1:
        alias = aliases[0]
        return JoinTree(root=alias, parent={alias: None}, edges=[], residual_conditions=[])

    acyclic, elimination = hypergraph.gyo_reduction()
    if acyclic:
        tree = _tree_from_elimination(spec, hypergraph, elimination)
    else:
        tree = _spanning_tree(spec, hypergraph)
        tree.is_acyclic_query = False
    if preferred_root and preferred_root in tree.parent and preferred_root != tree.root:
        tree = reroot(tree, preferred_root)
    tree.residual_conditions = _uncovered_conditions(spec, tree)
    return tree


# ----------------------------------------------------------------------
# acyclic case: GYO elimination order -> join tree
# ----------------------------------------------------------------------
def _tree_from_elimination(
    spec: QuerySpec,
    hypergraph: Hypergraph,
    elimination: Sequence[Tuple[str, Optional[str]]],
) -> JoinTree:
    parent: Dict[str, Optional[str]] = {}
    edges: List[TreeEdge] = []
    root = None
    for alias, witness in elimination:
        parent[alias] = witness
        if witness is None:
            root = alias
            continue
        variable = _choose_variable(spec, hypergraph, alias, witness)
        if variable is not None:
            edges.append(TreeEdge(child=alias, parent=witness, variable=variable))
        else:
            # ear with no shared variable (cross-product inside a "connected"
            # component should not happen; guard anyway)
            raise JoinTreeError(
                f"no shared join variable between {alias!r} and its witness {witness!r}"
            )
    if root is None:
        raise JoinTreeError("GYO elimination produced no root")
    return JoinTree(root=root, parent=parent, edges=edges)


# ----------------------------------------------------------------------
# cyclic case: spanning tree + residual conditions
# ----------------------------------------------------------------------
def _spanning_tree(spec: QuerySpec, hypergraph: Hypergraph) -> JoinTree:
    adjacency = alias_adjacency(spec)
    aliases = spec.aliases()
    root = aliases[0]
    parent: Dict[str, Optional[str]] = {root: None}
    edges: List[TreeEdge] = []
    frontier = [root]
    while frontier:
        current = frontier.pop(0)
        for neighbour in sorted(adjacency[current]):
            if neighbour in parent:
                continue
            variable = _choose_variable(spec, hypergraph, neighbour, current)
            if variable is None:
                continue
            parent[neighbour] = current
            edges.append(TreeEdge(child=neighbour, parent=current, variable=variable))
            frontier.append(neighbour)
    missing = [alias for alias in aliases if alias not in parent]
    if missing:
        raise JoinTreeError(
            f"join graph is disconnected; aliases {missing} unreachable from {root!r} "
            "(split the query into connected components first)"
        )
    return JoinTree(root=root, parent=parent, edges=edges)


def _choose_variable(
    spec: QuerySpec, hypergraph: Hypergraph, child: str, parent: str
) -> Optional[JoinVariable]:
    """Pick the join variable connecting ``child`` and ``parent``.

    Prefer a variable backed by an explicit join condition between the two
    aliases; fall back to any variable shared by both hyperedges.
    """
    direct: List[JoinVariable] = []
    for condition in spec.join_conditions:
        if {condition.left_alias, condition.right_alias} == {child, parent}:
            for variable in hypergraph.variables:
                if (
                    variable.column_of(child) is not None
                    and variable.column_of(parent) is not None
                    and (condition.left_alias, condition.left_column) in variable.members
                ):
                    direct.append(variable)
    if direct:
        return direct[0]
    shared = [
        variable
        for variable in hypergraph.shared_variables(child, parent)
        if variable.column_of(child) is not None and variable.column_of(parent) is not None
    ]
    return shared[0] if shared else None


# ----------------------------------------------------------------------
# rerooting & coverage
# ----------------------------------------------------------------------
def reroot(tree: JoinTree, new_root: str) -> JoinTree:
    """Re-root a join tree at ``new_root`` (edges keep their variables)."""
    if new_root not in tree.parent:
        raise JoinTreeError(f"unknown alias {new_root!r}")
    adjacency: Dict[str, List[TreeEdge]] = {alias: [] for alias in tree.parent}
    for edge in tree.edges:
        adjacency[edge.child].append(edge)
        adjacency[edge.parent].append(edge)
    parent: Dict[str, Optional[str]] = {new_root: None}
    edges: List[TreeEdge] = []
    frontier = [new_root]
    visited = {new_root}
    while frontier:
        current = frontier.pop(0)
        for edge in adjacency[current]:
            other = edge.parent if edge.child == current else edge.child
            if other in visited:
                continue
            visited.add(other)
            parent[other] = current
            edges.append(TreeEdge(child=other, parent=current, variable=edge.variable))
            frontier.append(other)
    return JoinTree(
        root=new_root,
        parent=parent,
        edges=edges,
        residual_conditions=list(tree.residual_conditions),
        is_acyclic_query=tree.is_acyclic_query,
    )


def enumerate_rootings(tree: JoinTree) -> List[JoinTree]:
    """Every rooting of ``tree``, in deterministic (alias-sorted) order.

    Re-rooting preserves the edge set, edge variables and residual-condition
    coverage, so each returned tree evaluates the same query; only the
    traversal (and therefore the message volume) differs.  This is the
    search space of :class:`repro.planner.planner.CostBasedPlanner`.
    """
    return [
        tree if alias == tree.root else reroot(tree, alias)
        for alias in sorted(tree.parent)
    ]


def _uncovered_conditions(spec: QuerySpec, tree: JoinTree) -> List[JoinCondition]:
    """Join conditions not enforced by the tree traversal.

    A condition ``a1.c1 = a2.c2`` (with join variable *v*) is enforced when
    ``a1`` and ``a2`` are connected in the subgraph of tree edges whose
    chosen variable is *v* (equality then holds transitively through the
    shared attribute vertices).  Everything else must be re-checked at
    result-assembly time.
    """
    residual: List[JoinCondition] = []
    for condition in spec.join_conditions:
        variable_edges = [
            edge
            for edge in tree.edges
            if (condition.left_alias, condition.left_column) in edge.variable.members
            and (condition.right_alias, condition.right_column) in edge.variable.members
        ]
        adjacency: Dict[str, Set[str]] = {}
        for edge in variable_edges:
            adjacency.setdefault(edge.child, set()).add(edge.parent)
            adjacency.setdefault(edge.parent, set()).add(edge.child)
        if _connected(adjacency, condition.left_alias, condition.right_alias):
            continue
        residual.append(condition)
    return residual


def _connected(adjacency: Dict[str, Set[str]], start: str, goal: str) -> bool:
    if start == goal:
        return True
    if start not in adjacency:
        return False
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency.get(current, ()):
            if neighbour == goal:
                return True
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return False
