"""Row-level helpers shared by the TAG-join vertex programs and the executors.

Covers the "beyond equi-joins" machinery of paper Section 7: pushing
selections and projections, and the three aggregation styles (local,
global, scalar) with partial-aggregate representations that can be merged
across vertices / workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import Expression, RowContext
from ..algebra.logical import AggFunc, AggregateSpec, OutputColumn
from ..relational.types import NULL

RowDict = Dict[str, Any]


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallablePredicate(Expression):
    """Adapter turning a Python callable into an Expression-compatible predicate.

    The TAG-join compiler uses these to inject subquery semi-join / anti-join
    membership checks as per-alias filters (paper Section 7, Subqueries):
    the callable receives the row context of a single tuple vertex.
    """

    function: Callable[[RowContext], bool]
    referenced: FrozenSet[str] = frozenset()
    description: str = "callable"

    def evaluate(self, context: RowContext) -> bool:
        return self.function(context)

    def columns(self) -> FrozenSet[str]:
        return self.referenced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallablePredicate({self.description})"


def row_context_for_tuple(alias: str, tuple_data: Dict[str, Any]) -> RowContext:
    """Qualify a tuple vertex's data with its alias: ``{alias.column: value}``."""
    return {f"{alias}.{column}": value for column, value in tuple_data.items()}


def passes_filters(context: RowContext, predicates: Sequence[Expression]) -> bool:
    return all(predicate.evaluate(context) for predicate in predicates)


def project_tuple(alias: str, tuple_data: Dict[str, Any], columns: Optional[Set[str]]) -> RowDict:
    """Alias-qualified projection of a tuple (None -> keep every column)."""
    if columns is None:
        return row_context_for_tuple(alias, tuple_data)
    return {
        f"{alias}.{column}": value
        for column, value in tuple_data.items()
        if column in columns
    }


def merge_rows(left: RowDict, right: RowDict) -> RowDict:
    """Combine two partial result rows (qualified keys never collide across aliases)."""
    merged = dict(left)
    merged.update(right)
    return merged


# ----------------------------------------------------------------------
# partial aggregates
# ----------------------------------------------------------------------
class AggregationError(ValueError):
    """Raised when aggregate finalisation is impossible (e.g. empty AVG)."""


def empty_partial(aggregates: Sequence[AggregateSpec]) -> Dict[str, Any]:
    """Neutral partial-aggregate payload for a list of aggregate specs."""
    partial: Dict[str, Any] = {}
    for aggregate in aggregates:
        if aggregate.function in (AggFunc.COUNT,):
            partial[aggregate.alias] = 0
        elif aggregate.function is AggFunc.SUM:
            partial[aggregate.alias] = 0
        elif aggregate.function is AggFunc.AVG:
            partial[aggregate.alias] = (0, 0)  # (sum, count)
        elif aggregate.function is AggFunc.MIN:
            partial[aggregate.alias] = None
        elif aggregate.function is AggFunc.MAX:
            partial[aggregate.alias] = None
        elif aggregate.function is AggFunc.COUNT_DISTINCT:
            partial[aggregate.alias] = frozenset()
        else:  # pragma: no cover - exhaustive over AggFunc
            raise AggregationError(f"unsupported aggregate {aggregate.function}")
    return partial


def accumulate_partial(
    partial: Dict[str, Any], aggregates: Sequence[AggregateSpec], row: RowContext
) -> Dict[str, Any]:
    """Fold one row into a partial-aggregate payload (returns a new payload)."""
    updated = dict(partial)
    for aggregate in aggregates:
        alias = aggregate.alias
        if aggregate.function is AggFunc.COUNT and aggregate.argument is None:
            updated[alias] = updated[alias] + 1
            continue
        value = aggregate.argument.evaluate(row) if aggregate.argument is not None else None
        if aggregate.function is AggFunc.COUNT:
            if value is not NULL:
                updated[alias] = updated[alias] + 1
        elif aggregate.function is AggFunc.SUM:
            if value is not NULL:
                updated[alias] = updated[alias] + value
        elif aggregate.function is AggFunc.AVG:
            if value is not NULL:
                total, count = updated[alias]
                updated[alias] = (total + value, count + 1)
        elif aggregate.function is AggFunc.MIN:
            if value is not NULL and (updated[alias] is None or value < updated[alias]):
                updated[alias] = value
        elif aggregate.function is AggFunc.MAX:
            if value is not NULL and (updated[alias] is None or value > updated[alias]):
                updated[alias] = value
        elif aggregate.function is AggFunc.COUNT_DISTINCT:
            if value is not NULL:
                updated[alias] = updated[alias] | {value}
    return updated


def partial_of_rows(
    aggregates: Sequence[AggregateSpec], rows: Iterable[RowContext]
) -> Dict[str, Any]:
    partial = empty_partial(aggregates)
    for row in rows:
        partial = accumulate_partial(partial, aggregates, row)
    return partial


def merge_partials(
    left: Dict[str, Any], right: Dict[str, Any], aggregates: Sequence[AggregateSpec]
) -> Dict[str, Any]:
    """Combine two partial payloads (associative & commutative)."""
    merged: Dict[str, Any] = {}
    for aggregate in aggregates:
        alias = aggregate.alias
        left_value, right_value = left[alias], right[alias]
        if aggregate.function in (AggFunc.COUNT, AggFunc.SUM):
            merged[alias] = left_value + right_value
        elif aggregate.function is AggFunc.AVG:
            merged[alias] = (left_value[0] + right_value[0], left_value[1] + right_value[1])
        elif aggregate.function is AggFunc.MIN:
            candidates = [v for v in (left_value, right_value) if v is not None]
            merged[alias] = min(candidates) if candidates else None
        elif aggregate.function is AggFunc.MAX:
            candidates = [v for v in (left_value, right_value) if v is not None]
            merged[alias] = max(candidates) if candidates else None
        elif aggregate.function is AggFunc.COUNT_DISTINCT:
            merged[alias] = left_value | right_value
    return merged


def finalize_partial(
    partial: Dict[str, Any], aggregates: Sequence[AggregateSpec]
) -> Dict[str, Any]:
    """Turn a partial payload into final aggregate values."""
    final: Dict[str, Any] = {}
    for aggregate in aggregates:
        alias = aggregate.alias
        value = partial[alias]
        if aggregate.function is AggFunc.AVG:
            total, count = value
            final[alias] = total / count if count else NULL
        elif aggregate.function is AggFunc.COUNT_DISTINCT:
            final[alias] = len(value)
        elif aggregate.function in (AggFunc.MIN, AggFunc.MAX):
            final[alias] = value if value is not None else NULL
        else:
            final[alias] = value
    return final


def aggregate_rows(
    aggregates: Sequence[AggregateSpec], rows: Iterable[RowContext]
) -> Dict[str, Any]:
    """Full (non-partial) aggregation of a row collection."""
    return finalize_partial(partial_of_rows(aggregates, rows), aggregates)


# ----------------------------------------------------------------------
# output assembly
# ----------------------------------------------------------------------
def group_key(group_columns: Sequence[str], row: RowContext) -> Tuple[Any, ...]:
    """Extract the GROUP BY key of a row (columns given as qualified names)."""
    return tuple(row.get(column) for column in group_columns)


def evaluate_output_columns(
    output: Sequence[OutputColumn], row: RowContext
) -> Dict[str, Any]:
    return {column.alias: column.expression.evaluate(row) for column in output}


def rows_passing(rows: Iterable[RowContext], predicates: Sequence[Expression]) -> List[RowContext]:
    if not predicates:
        return list(rows)
    return [row for row in rows if all(predicate.evaluate(row) for predicate in predicates)]


#: sentinel prefixing the keys of shape-mismatched rows so they can never
#: collide with a fixed-order value tuple of the reference shape
_MIXED_SHAPE = object()


def deduplicate(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Remove duplicate result rows (SELECT DISTINCT).

    The column order is computed once from the first row and every
    same-shaped row is keyed on its fixed-order value tuple — not on a
    per-row ``sorted(row.items())`` rebuild, which re-sorted the column
    names for every single row.  Rows with a different column set (they do
    not occur on the executor paths, where all rows of one result share
    one shape) fall back to the old sorted-items key, kept distinct from
    value keys by a sentinel.
    """
    seen = set()
    unique: List[Dict[str, Any]] = []
    reference_keys = None
    columns: Tuple[str, ...] = ()
    for row in rows:
        if reference_keys is None:
            reference_keys = row.keys()
            columns = tuple(sorted(reference_keys))
        if row.keys() == reference_keys:
            key: Tuple[Any, ...] = tuple(map(row.__getitem__, columns))
        else:
            key = (_MIXED_SHAPE, tuple(sorted(row.items(), key=lambda item: item[0])))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique
