"""Query hypergraphs, acyclicity, fractional edge covers and the AGM bound.

A join query is viewed as a hypergraph whose vertices are *join variables*
(equivalence classes of ``alias.column`` pairs connected by equi-join
conditions) and whose hyperedges are the relation occurrences (aliases),
each containing the join variables it mentions.  This module provides:

* construction of the hypergraph from a :class:`~repro.algebra.logical.QuerySpec`;
* the GYO ear-removal test for (alpha-)acyclicity;
* fractional edge covers via linear programming (scipy) and the AGM bound,
  used by the worst-case-optimal cyclic algorithm and by the cost
  assertions in the test suite (paper Sections 6.1-6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np
from scipy.optimize import linprog

from ..algebra.logical import QuerySpec


class HypergraphError(ValueError):
    """Raised for malformed hypergraphs (e.g. unknown aliases)."""


@dataclass(frozen=True)
class JoinVariable:
    """An equivalence class of ``(alias, column)`` pairs joined by equality.

    The TAG plan creates one attribute node per join variable; in the TAG
    graph a join variable is realised by the attribute vertices shared by
    the participating columns.
    """

    members: FrozenSet[Tuple[str, str]]

    @property
    def name(self) -> str:
        """Stable display name: the lexicographically first member."""
        alias, column = min(self.members)
        return f"{alias}.{column}"

    def column_of(self, alias: str) -> Optional[str]:
        """The column of ``alias`` belonging to this variable (None if absent)."""
        for member_alias, member_column in self.members:
            if member_alias == alias:
                return member_column
        return None

    def aliases(self) -> Set[str]:
        return {alias for alias, _ in self.members}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Var({self.name}: {sorted(self.members)})"


class _UnionFind:
    """Union-find over (alias, column) pairs."""

    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(self, item: Tuple[str, str]) -> Tuple[str, str]:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, left: Tuple[str, str], right: Tuple[str, str]) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root

    def groups(self) -> List[Set[Tuple[str, str]]]:
        by_root: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())


@dataclass
class Hypergraph:
    """Hypergraph of a join query: variables plus alias -> variable-set edges."""

    variables: List[JoinVariable] = field(default_factory=list)
    edges: Dict[str, Set[JoinVariable]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def aliases(self) -> List[str]:
        return list(self.edges)

    def variables_of(self, alias: str) -> Set[JoinVariable]:
        try:
            return self.edges[alias]
        except KeyError:
            raise HypergraphError(f"unknown alias {alias!r}") from None

    def shared_variables(self, left_alias: str, right_alias: str) -> Set[JoinVariable]:
        return self.variables_of(left_alias) & self.variables_of(right_alias)

    def variable_named(self, name: str) -> JoinVariable:
        for variable in self.variables:
            if variable.name == name:
                return variable
        raise HypergraphError(f"unknown join variable {name!r}")

    # ------------------------------------------------------------------
    # acyclicity: GYO ear removal
    # ------------------------------------------------------------------
    def gyo_reduction(self) -> Tuple[bool, List[Tuple[str, Optional[str]]]]:
        """Run the GYO ear-removal algorithm.

        Returns ``(is_acyclic, elimination_order)`` where the elimination
        order is a list of ``(removed_alias, witness_alias)`` pairs; the
        witness is the hyperedge into which the ear was absorbed (None for
        the final remaining edge).  The elimination order doubles as a join
        tree: each ear's parent is its witness.
        """
        remaining: Dict[str, Set[JoinVariable]] = {
            alias: set(variables) for alias, variables in self.edges.items()
        }
        order: List[Tuple[str, Optional[str]]] = []
        changed = True
        while changed and len(remaining) > 1:
            changed = False
            for alias in list(remaining):
                variables = remaining[alias]
                # isolated variables (in no other edge) can be ignored
                exclusive = {
                    variable
                    for variable in variables
                    if all(
                        variable not in other_vars
                        for other_alias, other_vars in remaining.items()
                        if other_alias != alias
                    )
                }
                shared = variables - exclusive
                witness = None
                if not shared:
                    # edge disconnected from the rest: it is trivially an ear
                    witness_candidates = [a for a in remaining if a != alias]
                    witness = witness_candidates[0] if witness_candidates else None
                else:
                    for other_alias, other_vars in remaining.items():
                        if other_alias == alias:
                            continue
                        if shared <= other_vars:
                            witness = other_alias
                            break
                    if witness is None:
                        continue
                order.append((alias, witness))
                del remaining[alias]
                changed = True
                break
        if len(remaining) == 1:
            last_alias = next(iter(remaining))
            order.append((last_alias, None))
            return True, order
        return False, order

    def is_acyclic(self) -> bool:
        acyclic, _ = self.gyo_reduction()
        return acyclic

    # ------------------------------------------------------------------
    # fractional edge cover / AGM bound (paper Section 6.4.1)
    # ------------------------------------------------------------------
    def fractional_edge_cover(self) -> Dict[str, float]:
        """Minimum fractional edge cover weights via linear programming.

        Minimise sum of weights subject to: for every join variable, the
        total weight of hyperedges containing it is >= 1, weights >= 0.
        """
        aliases = self.aliases
        if not aliases:
            return {}
        if not self.variables:
            # no join variables: each relation must still be "covered" once
            return {alias: 1.0 for alias in aliases}
        costs = np.ones(len(aliases))
        constraint_matrix = []
        for variable in self.variables:
            row = [-1.0 if variable in self.edges[alias] else 0.0 for alias in aliases]
            constraint_matrix.append(row)
        upper_bounds = [-1.0] * len(self.variables)
        result = linprog(
            costs,
            A_ub=np.array(constraint_matrix),
            b_ub=np.array(upper_bounds),
            bounds=[(0, None)] * len(aliases),
            method="highs",
        )
        if not result.success:
            raise HypergraphError(f"edge cover LP failed: {result.message}")
        return {alias: float(weight) for alias, weight in zip(aliases, result.x)}

    def fractional_edge_cover_number(self) -> float:
        return sum(self.fractional_edge_cover().values())

    def agm_bound(self, cardinalities: Dict[str, int]) -> float:
        """AGM bound: product of |R_i|^{w_i} under the optimal fractional cover."""
        weights = self.fractional_edge_cover()
        bound = 1.0
        for alias, weight in weights.items():
            cardinality = max(1, cardinalities.get(alias, 1))
            bound *= cardinality ** weight
        return bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypergraph({len(self.edges)} edges, {len(self.variables)} variables)"


def build_hypergraph(spec: QuerySpec) -> Hypergraph:
    """Construct the query hypergraph of a :class:`QuerySpec`.

    Join variables are the equivalence classes induced by the equi-join
    conditions; every alias becomes a hyperedge containing the variables of
    its columns that participate in some join condition.
    """
    union_find = _UnionFind()
    for condition in spec.join_conditions:
        left = (condition.left_alias, condition.left_column)
        right = (condition.right_alias, condition.right_column)
        union_find.union(left, right)
    variables = [JoinVariable(frozenset(group)) for group in union_find.groups()]
    variables.sort(key=lambda variable: variable.name)

    edges: Dict[str, Set[JoinVariable]] = {alias: set() for alias in spec.aliases()}
    for variable in variables:
        for alias, _column in variable.members:
            if alias in edges:
                edges[alias].add(variable)
    return Hypergraph(variables=variables, edges=edges)


def alias_adjacency(spec: QuerySpec) -> Dict[str, Set[str]]:
    """Adjacency of the *join graph* over aliases (one node per alias)."""
    adjacency: Dict[str, Set[str]] = {alias: set() for alias in spec.aliases()}
    for condition in spec.join_conditions:
        adjacency[condition.left_alias].add(condition.right_alias)
        adjacency[condition.right_alias].add(condition.left_alias)
    return adjacency


def connected_components(spec: QuerySpec) -> List[List[str]]:
    """Connected components of the join graph (each needs a Cartesian product)."""
    adjacency = alias_adjacency(spec)
    seen: Set[str] = set()
    components: List[List[str]] = []
    for alias in spec.aliases():
        if alias in seen:
            continue
        component = []
        frontier = [alias]
        seen.add(alias)
        while frontier:
            current = frontier.pop()
            component.append(current)
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        components.append(sorted(component))
    return components


def detect_simple_cycle(spec: QuerySpec) -> Optional[List[str]]:
    """If the join graph is one simple cycle over all aliases, return it in order.

    Used to dispatch pure cycle queries (triangle, n-way cycle) to the
    worst-case-optimal algorithm of Section 6.1/6.2.  Returns None when the
    query is not a single simple cycle.
    """
    adjacency = alias_adjacency(spec)
    aliases = spec.aliases()
    if len(aliases) < 3:
        return None
    if any(len(neighbours) != 2 for neighbours in adjacency.values()):
        return None
    # walk the cycle
    start = aliases[0]
    order = [start]
    previous, current = None, start
    while True:
        neighbours = [n for n in adjacency[current] if n != previous]
        if not neighbours:
            return None
        next_alias = neighbours[0]
        if next_alias == start:
            break
        order.append(next_alias)
        previous, current = current, next_alias
        if len(order) > len(aliases):
            return None
    return order if len(order) == len(aliases) else None
