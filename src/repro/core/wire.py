"""Stable wire serialization for query values and result sets.

The serving layer (``repro.serve``) ships :class:`QueryResult` objects,
parameter bindings and loaded rows across a JSON-line protocol, and the
server's result-set cache stores the encoded payloads verbatim.  Plain
``json.dumps`` is not enough for the relational value domains:

* **NULL** — SQL NULL maps to JSON ``null`` in both directions (the only
  value for which ``None`` appears on the wire).
* **dates** — JSON has no date type; a bare ISO string would come back as
  a *string*, silently changing the domain of e.g. ``O_ORDERDATE`` and the
  behaviour of every comparison against it.
* **floats** — finite floats round-trip natively (JSON numbers preserve
  the int/float distinction in Python), but ``nan``/``inf``/``-inf`` are
  not valid strict JSON and would either crash encoding or emit
  non-portable literals.

Following the type-tagged sort-key convention the differential harness
uses (a value is its *type name* plus its rendering, never the rendering
alone), non-native values are encoded as a small tag object::

    datetime.date(1995, 3, 15)  ->  {"$t": "date", "v": "1995-03-15"}
    float("nan")                ->  {"$t": "float", "v": "nan"}
    float("inf")                ->  {"$t": "float", "v": "inf"}

Everything else (``None``/bool/int/str and finite floats) passes through
as its native JSON form.  Relational values are always scalars, so a dict
can never collide with a genuine value and the ``$t`` marker is
unambiguous.  :func:`decode_value` also accepts untagged ISO scalars
wherever a tag would be produced, so hand-written JSON clients can send
plain values and still interoperate.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Dict, Iterable, List, Sequence

#: the tag key of non-native value encodings; never a relational value itself
TAG_KEY = "$t"

#: wire-format version stamped into result payloads; bump on breaking change
WIRE_VERSION = 1


class WireFormatError(ValueError):
    """Raised when a payload does not follow the wire conventions."""


# ----------------------------------------------------------------------
# scalar values
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode one relational value into its JSON-serialisable form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {TAG_KEY: "float", "v": "nan"}
        return {TAG_KEY: "float", "v": "inf" if value > 0 else "-inf"}
    if isinstance(value, _dt.datetime):  # before date: datetime is a date subclass
        return {TAG_KEY: "date", "v": value.date().isoformat()}
    if isinstance(value, _dt.date):
        return {TAG_KEY: "date", "v": value.isoformat()}
    raise WireFormatError(
        f"value {value!r} of type {type(value).__name__} has no wire encoding"
    )


def decode_value(value: Any) -> Any:
    """Decode one wire value back into its Python relational form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict) and TAG_KEY in value:
        tag = value[TAG_KEY]
        raw = value.get("v")
        if tag == "date":
            try:
                return _dt.date.fromisoformat(str(raw))
            except ValueError as exc:
                raise WireFormatError(f"malformed date payload {raw!r}") from exc
        if tag == "float":
            if raw == "nan":
                return float("nan")
            if raw == "inf":
                return float("inf")
            if raw == "-inf":
                return float("-inf")
            try:
                return float(raw)  # tolerated: a tagged finite float
            except (TypeError, ValueError) as exc:
                raise WireFormatError(f"malformed float payload {raw!r}") from exc
        raise WireFormatError(f"unknown wire tag {tag!r}")
    raise WireFormatError(f"cannot decode wire value {value!r}")


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(value) for value in row]


def decode_row(row: Sequence[Any]) -> List[Any]:
    return [decode_value(value) for value in row]


def encode_params(params: Any) -> Any:
    """Encode a parameter binding (mapping, sequence or None) for the wire."""
    if params is None:
        return None
    if isinstance(params, dict):
        return {str(name): encode_value(value) for name, value in params.items()}
    if isinstance(params, (list, tuple)):
        return [encode_value(value) for value in params]
    raise WireFormatError(f"parameters must be a mapping or sequence, got {params!r}")


def decode_params(params: Any) -> Any:
    """Decode a wire parameter binding back into execute() form."""
    if params is None:
        return None
    if isinstance(params, dict):
        return {name: decode_value(value) for name, value in params.items()}
    if isinstance(params, list):
        return [decode_value(value) for value in params]
    raise WireFormatError(f"parameters must be a mapping or sequence, got {params!r}")


# ----------------------------------------------------------------------
# result sets
# ----------------------------------------------------------------------
def encode_result_payload(result: Any) -> Dict[str, Any]:
    """The JSON payload of a :class:`~repro.core.executor.QueryResult`.

    Rows travel column-major-ordered but row-major-packed: a list of value
    arrays in ``columns`` order, which is both smaller than repeated dicts
    and immune to key-order ambiguity.  A compact metrics summary rides
    along so clients can report server-side timings.
    """
    columns = list(result.columns)
    metrics = result.metrics
    return {
        "wire_version": WIRE_VERSION,
        "columns": columns,
        "rows": [encode_row([row.get(column) for column in columns]) for row in result.rows],
        "row_count": len(result.rows),
        "aggregation_class": result.aggregation_class.value,
        "metrics": {
            "wall_time_seconds": metrics.wall_time_seconds,
            "compile_seconds": metrics.compile_seconds,
            "plan_cache_hits": metrics.plan_cache_hits,
            "plan_cache_misses": metrics.plan_cache_misses,
            "supersteps": metrics.superstep_count,
            "messages": metrics.total_messages,
        },
    }


def decode_result_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate + decode a result payload into plain Python pieces.

    Returns a dict with ``columns`` (list of names), ``rows`` (list of
    value dicts, like executor results), ``aggregation_class`` (string)
    and ``metrics`` (plain dict).  Raises :class:`WireFormatError` on any
    structural problem, so a corrupted cache entry or a lying server is
    caught at the boundary instead of deep inside result handling.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(f"result payload must be an object, got {payload!r}")
    version = payload.get("wire_version", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire_version {version!r} (this build speaks {WIRE_VERSION})"
        )
    for field in ("columns", "rows"):
        if field not in payload:
            raise WireFormatError(f"result payload missing {field!r}")
    columns = payload["columns"]
    rows = payload["rows"]
    if not isinstance(columns, list) or not all(isinstance(c, str) for c in columns):
        raise WireFormatError("result payload 'columns' must be a list of names")
    if not isinstance(rows, list):
        raise WireFormatError("result payload 'rows' must be a list")
    decoded_rows: List[Dict[str, Any]] = []
    for row in rows:
        if not isinstance(row, list) or len(row) != len(columns):
            raise WireFormatError(
                f"result row {row!r} does not match the {len(columns)}-column header"
            )
        decoded_rows.append(dict(zip(columns, decode_row(row))))
    declared = payload.get("row_count")
    if declared is not None and declared != len(decoded_rows):
        raise WireFormatError(
            f"result payload declares {declared} rows but carries {len(decoded_rows)}"
        )
    metrics = payload.get("metrics") or {}
    if not isinstance(metrics, dict):
        raise WireFormatError("result payload 'metrics' must be an object")
    return {
        "columns": list(columns),
        "rows": decoded_rows,
        "aggregation_class": payload.get("aggregation_class", "none"),
        "metrics": dict(metrics),
    }


def canonical_params_key(params: Any) -> str:
    """A deterministic string form of a parameter binding, for cache keys."""
    import json

    return json.dumps(encode_params(params), sort_keys=True, separators=(",", ":"))


def iter_encoded_rows(rows: Iterable[Sequence[Any]]) -> List[List[Any]]:
    """Encode raw load_rows-style row sequences (used by write requests).

    Batches made only of JSON-native values (None/bool/int/str/finite
    float — the overwhelmingly common ingest case, and the WAL logs every
    ingest batch) skip the per-value ``encode_value`` call; one exotic
    value anywhere falls the whole batch back to the tagged encoding.
    """
    materialized = rows if isinstance(rows, list) else list(rows)
    for row in materialized:
        for value in row:
            if value is None:
                continue
            cls = value.__class__
            if cls is int or cls is str or cls is bool:
                continue
            if cls is float and math.isfinite(value):
                continue
            return [encode_row(inner) for inner in materialized]
    return [list(row) for row in materialized]
