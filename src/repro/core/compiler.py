"""Compile a :class:`QuerySpec` into a TAG-join execution fragment.

The compiler realises the query planning side of the paper: it builds the
query hypergraph, derives a join tree (GHD with single-relation bags),
chooses the plan root according to the aggregation style (Section 7),
constructs the TAG traversal plan (Section 5.1) and packages filters,
projections and aggregation metadata into a
:class:`~repro.core.vertex_program.FragmentConfig` the vertex program runs
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.fragment import SlottedFragment
    from ..exec.vectorized.fragment import VectorizedFragment

from ..algebra.expressions import ColumnRef, Comparison, Expression, col
from ..algebra.logical import AggregationClass, JoinCondition, OutputColumn, QuerySpec
from ..relational.catalog import Catalog
from ..storage.rewrite import FragmentRewriter
from .hypergraph import build_hypergraph
from .jointree import JoinTree, build_join_tree
from .tag_plan import TagPlan, build_tag_plan
from .vertex_program import FragmentConfig, build_schedule


class CompileError(ValueError):
    """Raised when a query cannot be compiled to a TAG-join fragment."""


@dataclass
class CompiledFragment:
    """A fragment config together with the structures it was derived from.

    ``slotted`` is the compiled slotted-row execution plan (schemas, merge
    closures, slot-compiled filters/outputs/aggregates) derived from the
    same schedule; it rides along in the plan cache so warm executions get
    ready-to-run closures.  None only for configs that cannot be
    specialised — the executor falls back to the dict-row program then.

    ``vectorized`` is the columnar twin: whole-batch residual masks,
    output gathers and ``np.unique``-based aggregate reductions compiled
    against the same schemas.  It also rides in the plan cache (warm hits
    return ready batch closures) and is None exactly when ``slotted`` is —
    or when numpy is unavailable.
    """

    config: FragmentConfig
    join_tree: JoinTree
    plan: TagPlan
    aggregation_class: AggregationClass
    slotted: Optional["SlottedFragment"] = None
    vectorized: Optional["VectorizedFragment"] = None
    #: alias -> decoder for pass-through outputs of encoded columns; the
    #: executor applies these exactly once, at the public result boundary
    output_decoders: Dict[str, Callable[[Any], Any]] = field(default_factory=dict)


def choose_group_by_root(
    spec: QuerySpec, catalog: Catalog
) -> Optional[Tuple[str, str]]:
    """Pick the ``(alias, column)`` whose attribute vertices host local aggregation.

    Returns None when the query's aggregation is not local or the group-by
    column's domain is not materialised as attribute vertices (floats /
    long text), in which case the executor falls back to global
    aggregation through the aggregator vertex.
    """
    if spec.aggregation_class(catalog) is not AggregationClass.LOCAL:
        return None
    candidates = list(spec.group_by)
    if len(candidates) > 1:
        # multi-column local aggregation: root at the determining (PK) column
        alias_map = spec.alias_map()
        for candidate in candidates:
            if candidate.table is None:
                continue
            schema = catalog.schema(alias_map[candidate.table])
            if schema.is_primary_key(candidate.column):
                candidates = [candidate]
                break
        else:
            candidates = candidates[:1]
    group_col = candidates[0]
    if group_col.table is None:
        return None
    table = spec.alias_map()[group_col.table]
    schema = catalog.schema(table)
    if group_col.column not in schema:
        raise CompileError(f"GROUP BY references unknown column {group_col.qualified}")
    if not schema.column(group_col.column).materialise_as_vertex:
        return None
    return (group_col.table, group_col.column)


def effective_aggregation_class(spec: QuerySpec, catalog: Catalog) -> AggregationClass:
    """The aggregation class actually used for execution.

    Local aggregation downgrades to global when its group key cannot be
    hosted at attribute vertices (same policy the paper's loading section
    applies to floats / long strings).
    """
    declared = spec.aggregation_class(catalog)
    if declared is AggregationClass.LOCAL and choose_group_by_root(spec, catalog) is None:
        return AggregationClass.GLOBAL
    return declared


def default_output_columns(spec: QuerySpec, required: Dict[str, Set[str]]) -> List[OutputColumn]:
    """SELECT-* style outputs when the query declares none."""
    outputs: List[OutputColumn] = []
    for alias in spec.aliases():
        for column in sorted(required.get(alias, set())):
            qualified = f"{alias}.{column}"
            outputs.append(OutputColumn(col(qualified), qualified))
    return outputs


def residual_expressions(conditions: List[JoinCondition]) -> List[Expression]:
    """Turn uncovered join conditions into equality predicates over result rows."""
    return [
        Comparison(
            "=",
            ColumnRef(condition.left_column, condition.left_alias),
            ColumnRef(condition.right_column, condition.right_alias),
        )
        for condition in conditions
    ]


def compile_fragment(
    spec: QuerySpec,
    catalog: Catalog,
    extra_filters: Optional[Dict[str, List[Expression]]] = None,
    extra_residuals: Optional[List[Expression]] = None,
    eager_partial_aggregation: bool = True,
    collect_output_centrally: bool = False,
    preferred_root: Optional[str] = None,
    use_encoded_columns: bool = True,
) -> CompiledFragment:
    """Compile a connected, non-degenerate query block into a fragment.

    Args:
        spec: the query block (must have a connected join graph).
        catalog: the relational catalog backing the TAG graph.
        extra_filters: additional per-alias predicates (e.g. subquery
            membership checks injected by the executor).
        eager_partial_aggregation: pre-aggregate at the root vertices
            before contacting the global aggregator (ablation A03).
        collect_output_centrally: ship output rows to a collector
            aggregator instead of leaving them distributed.
        preferred_root: force the join tree root to a specific alias.
        use_encoded_columns: compile predicates/outputs/aggregates onto the
            graph's encoded payloads (int32 string codes, epoch-day dates).
            False keeps the object path: every encoded access is wrapped in
            a decode, which is always correct but per-row slow.
    """
    if not spec.tables:
        raise CompileError("query has no tables")
    if not spec.is_connected():
        raise CompileError(
            "query join graph is disconnected; split into components before compiling"
        )

    aggregation_class = effective_aggregation_class(spec, catalog)
    group_root = choose_group_by_root(spec, catalog)
    if group_root is not None:
        preferred_root = group_root[0]
    elif preferred_root is None:
        preferred_root = spec.tables[0].alias

    hypergraph = build_hypergraph(spec)
    join_tree = build_join_tree(spec, hypergraph, preferred_root=preferred_root)
    alias_tables = spec.alias_map()
    plan = build_tag_plan(join_tree, catalog, alias_tables, group_by_root=group_root)
    schedule = build_schedule(plan)

    filters: Dict[str, List[Expression]] = {}
    for alias in spec.aliases():
        combined = list(spec.filters_for(alias))
        if extra_filters and alias in extra_filters:
            combined.extend(extra_filters[alias])
        if combined:
            filters[alias] = combined

    required: Dict[str, Set[str]] = {
        alias: spec.required_columns_of(alias) for alias in spec.aliases()
    }

    residuals = list(spec.residual_predicates)
    residuals.extend(residual_expressions(join_tree.residual_conditions))
    if extra_residuals:
        residuals.extend(extra_residuals)
        # make sure the columns these predicates inspect survive projection
        for predicate in extra_residuals:
            for qualified in predicate.columns():
                if "." in qualified:
                    alias, column = qualified.split(".", 1)
                    if alias in required:
                        required[alias].add(column)

    output_columns = list(spec.output)
    if not output_columns and not spec.aggregates:
        output_columns = default_output_columns(spec, required)

    group_by_columns = [
        f"{group_col.table}.{group_col.column}" if group_col.table else group_col.column
        for group_col in spec.group_by
    ]

    # rewrite the whole expression surface onto the encoded representation:
    # filters/residuals compare int32 codes, pass-through outputs keep
    # flowing as codes (decoded once by the executor at the boundary) and
    # aggregate arguments decode at the aggregation site
    aggregates = list(spec.aggregates)
    output_decoders: Dict[str, Callable[[Any], Any]] = {}
    rewriter = FragmentRewriter.for_catalog(
        catalog, alias_tables, use_codes=use_encoded_columns
    )
    if rewriter is not None:
        filters = rewriter.rewrite_filters(filters)
        residuals = rewriter.rewrite_predicates(residuals)
        output_columns, output_decoders = rewriter.rewrite_outputs(output_columns)
        aggregates = rewriter.rewrite_aggregates(aggregates)

    config = FragmentConfig(
        plan=plan,
        schedule=schedule,
        alias_tables=alias_tables,
        filters=filters,
        required_columns={alias: columns for alias, columns in required.items()},
        residual_predicates=residuals,
        output_columns=output_columns,
        aggregates=aggregates,
        group_by_columns=group_by_columns,
        aggregation_class=aggregation_class,
        eager_partial_aggregation=eager_partial_aggregation,
        collect_output_centrally=collect_output_centrally,
    )
    # derive the slotted-row execution plan once, here, so plan-cache hits
    # (and every execution after the first) start from compiled closures
    from ..exec.fragment import compile_slotted_fragment  # local: breaks import cycle

    try:
        # the vectorized subpackage hard-imports numpy below its top level;
        # without numpy the fragment simply compiles with vectorized=None
        # and the executor runs the slotted/dict program instead
        from ..exec.vectorized.fragment import compile_vectorized_fragment
    except ImportError:  # pragma: no cover - numpy-less environments only
        compile_vectorized_fragment = None  # type: ignore[assignment]

    slotted = compile_slotted_fragment(config, catalog)
    vectorized = (
        compile_vectorized_fragment(config, slotted)
        if compile_vectorized_fragment is not None
        else None
    )
    return CompiledFragment(
        config=config,
        join_tree=join_tree,
        plan=plan,
        aggregation_class=aggregation_class,
        slotted=slotted,
        vectorized=vectorized,
        output_decoders=output_decoders,
    )
