"""SQL front-end: lexer, parser and binder producing QuerySpec IR."""

from ..algebra.logical import QuerySpec
from ..relational.catalog import Catalog
from .ast import SelectStatement
from .binder import Binder, SqlBindError, bind_sql
from .lexer import SqlSyntaxError, Token, TokenType, tokenize
from .parser import Parser, parse_sql


def parse_and_bind(sql: str, catalog: Catalog, name: str = "query") -> QuerySpec:
    """Parse SQL text and bind it against ``catalog`` in one call."""
    return bind_sql(parse_sql(sql), catalog, name=name)


__all__ = [
    "Binder",
    "Parser",
    "SelectStatement",
    "SqlBindError",
    "SqlSyntaxError",
    "Token",
    "TokenType",
    "bind_sql",
    "parse_and_bind",
    "parse_sql",
    "tokenize",
]
