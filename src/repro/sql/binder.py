"""Bind a parsed SQL statement against a catalog, producing a QuerySpec.

The binder performs name resolution (aliases, unqualified columns,
correlated references to the outer block), splits the WHERE clause into
pushed-down single-relation filters, equi-join conditions, residual
multi-relation predicates and subquery predicates, and classifies the
SELECT list into plain output columns and aggregates — i.e. it produces
exactly the :class:`~repro.algebra.logical.QuerySpec` IR the TAG-join
compiler and the baseline engines consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from ..algebra.parameters import ParameterRef
from ..algebra.logical import (
    AggFunc,
    AggregateSpec,
    JoinCondition,
    JoinType,
    OuterJoinSpec,
    OutputColumn,
    QuerySpec,
    SubqueryKind,
    SubqueryPredicate,
    TableRef,
)
from ..relational.catalog import Catalog
from . import ast as sql_ast


class SqlBindError(ValueError):
    """Raised when a statement cannot be bound against the catalog."""


_ARITHMETIC_OPS = {"+", "-", "*", "/", "%"}
_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}
_AGG_FUNCTIONS = {
    "COUNT": AggFunc.COUNT,
    "SUM": AggFunc.SUM,
    "AVG": AggFunc.AVG,
    "MIN": AggFunc.MIN,
    "MAX": AggFunc.MAX,
}


class _Scope:
    """Alias/column resolution scope, chained to the outer query's scope."""

    def __init__(
        self, catalog: Catalog, tables: Sequence[TableRef], outer: Optional["_Scope"] = None
    ) -> None:
        self.catalog = catalog
        self.tables = list(tables)
        self.outer = outer
        self.alias_map = {table.alias: table.table for table in tables}
        self._column_owners: Dict[str, List[str]] = {}
        for table in tables:
            for column in catalog.schema(table.table).column_names:
                self._column_owners.setdefault(column, []).append(table.alias)

    def owns_alias(self, alias: str) -> bool:
        return alias in self.alias_map

    def resolve(self, node: sql_ast.ColumnNode) -> Tuple[str, str, bool]:
        """Resolve to ``(alias, column, is_outer)``."""
        if node.table is not None:
            if self.owns_alias(node.table):
                self._check_column(node.table, node.column)
                return node.table, node.column, False
            if self.outer is not None:
                alias, column, _ = self.outer.resolve(node)
                return alias, column, True
            raise SqlBindError(f"unknown table alias {node.table!r}")
        owners = self._column_owners.get(node.column, [])
        if len(owners) == 1:
            return owners[0], node.column, False
        if len(owners) > 1:
            raise SqlBindError(f"ambiguous column {node.column!r}: {owners}")
        if self.outer is not None:
            alias, column, _ = self.outer.resolve(node)
            return alias, column, True
        raise SqlBindError(f"unknown column {node.column!r}")

    def _check_column(self, alias: str, column: str) -> None:
        schema = self.catalog.schema(self.alias_map[alias])
        if column != "*" and column not in schema:
            raise SqlBindError(f"relation {self.alias_map[alias]!r} has no column {column!r}")


class Binder:
    """Binds :class:`~repro.sql.ast.SelectStatement` trees to QuerySpecs."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    def bind(self, statement: sql_ast.SelectStatement, name: str = "query") -> QuerySpec:
        return self._bind_select(statement, outer_scope=None, name=name)

    # ------------------------------------------------------------------
    def _bind_select(
        self,
        statement: sql_ast.SelectStatement,
        outer_scope: Optional[_Scope],
        name: str,
    ) -> QuerySpec:
        spec = QuerySpec(name=name)
        sources = list(statement.sources) + [join.source for join in statement.joins]
        for source in sources:
            if source.table not in self.catalog:
                raise SqlBindError(f"unknown relation {source.table!r}")
            spec.tables.append(TableRef(source.table, source.alias))
        scope = _Scope(self.catalog, spec.tables, outer=outer_scope)

        if statement.having is not None:
            raise SqlBindError("HAVING is not supported by this SQL subset")

        # WHERE clause plus every JOIN ... ON condition
        conjuncts: List[sql_ast.ExprNode] = []
        if statement.where is not None:
            conjuncts.extend(_split_and(statement.where))
        outer_join_marks: List[Tuple[sql_ast.ExprNode, str]] = []
        for join in statement.joins:
            for conjunct in _split_and(join.condition):
                conjuncts.append(conjunct)
                if join.kind != "inner":
                    outer_join_marks.append((conjunct, join.kind))
        for conjunct in conjuncts:
            self._bind_conjunct(spec, scope, conjunct)

        # outer-join markings (recorded for engines that support them)
        for conjunct, kind in outer_join_marks:
            condition = self._as_join_condition(scope, conjunct)
            if condition is None:
                raise SqlBindError("outer join conditions must be single equi-joins")
            join_type = {
                "left": JoinType.LEFT_OUTER,
                "right": JoinType.RIGHT_OUTER,
                "full": JoinType.FULL_OUTER,
            }[kind]
            spec.outer_joins.append(OuterJoinSpec(condition, join_type))

        # SELECT list
        spec.distinct = statement.distinct
        for item in statement.items:
            self._bind_select_item(spec, scope, item)

        # GROUP BY
        for group_expr in statement.group_by:
            if not isinstance(group_expr, sql_ast.ColumnNode):
                raise SqlBindError("GROUP BY supports plain column references only")
            alias, column, is_outer = scope.resolve(group_expr)
            if is_outer:
                raise SqlBindError("GROUP BY cannot reference the outer query")
            spec.group_by.append(ColumnRef(column, alias))
        return spec

    # ------------------------------------------------------------------
    # SELECT list
    # ------------------------------------------------------------------
    def _bind_select_item(
        self, spec: QuerySpec, scope: _Scope, item: sql_ast.SelectItem
    ) -> None:
        expression = item.expression
        if isinstance(expression, sql_ast.ColumnNode) and expression.column == "*":
            self._expand_star(spec, scope, expression.table)
            return
        if isinstance(expression, sql_ast.FuncNode):
            function = _AGG_FUNCTIONS.get(expression.name)
            if function is None:
                raise SqlBindError(f"unsupported function {expression.name!r}")
            if expression.distinct:
                if function is not AggFunc.COUNT:
                    raise SqlBindError("DISTINCT is only supported inside COUNT()")
                function = AggFunc.COUNT_DISTINCT
            argument = (
                self._bind_scalar(scope, expression.argument)
                if expression.argument is not None
                else None
            )
            alias = item.alias or f"{expression.name.lower()}_{len(spec.aggregates) + 1}"
            spec.aggregates.append(AggregateSpec(function, argument, alias))
            return
        if _contains_aggregate(expression):
            raise SqlBindError(
                "aggregates must appear as top-level SELECT items in this SQL subset"
            )
        bound = self._bind_scalar(scope, expression)
        alias = item.alias
        if alias is None:
            if isinstance(bound, ColumnRef):
                alias = bound.column
            else:
                alias = f"expr_{len(spec.output) + 1}"
        spec.output.append(OutputColumn(bound, alias))

    def _expand_star(self, spec: QuerySpec, scope: _Scope, table: Optional[str]) -> None:
        aliases = [table] if table else [ref.alias for ref in spec.tables]
        for alias in aliases:
            if alias not in scope.alias_map:
                raise SqlBindError(f"unknown table alias {alias!r}")
            schema = self.catalog.schema(scope.alias_map[alias])
            for column in schema.column_names:
                spec.output.append(
                    OutputColumn(ColumnRef(column, alias), f"{alias}.{column}")
                )

    # ------------------------------------------------------------------
    # WHERE conjuncts
    # ------------------------------------------------------------------
    def _bind_conjunct(
        self, spec: QuerySpec, scope: _Scope, conjunct: sql_ast.ExprNode
    ) -> None:
        # subquery predicates
        if isinstance(conjunct, sql_ast.ExistsNode):
            self._bind_exists(spec, scope, conjunct, negated=False)
            return
        if isinstance(conjunct, sql_ast.NotNode) and isinstance(
            conjunct.operand, sql_ast.ExistsNode
        ):
            self._bind_exists(spec, scope, conjunct.operand, negated=True)
            return
        if isinstance(conjunct, sql_ast.InSubqueryNode):
            self._bind_in_subquery(spec, scope, conjunct)
            return
        if isinstance(conjunct, sql_ast.BinaryOpNode) and isinstance(
            conjunct.right, sql_ast.ScalarSubqueryNode
        ):
            self._bind_scalar_subquery(spec, scope, conjunct)
            return

        # plain equi-join condition between two aliases of this block?
        condition = self._as_join_condition(scope, conjunct)
        if condition is not None:
            spec.join_conditions.append(condition)
            return

        # otherwise: a filter; attach to its single alias or keep as residual
        bound = self._bind_scalar(scope, conjunct)
        aliases = _referenced_aliases(bound)
        local_aliases = {alias for alias in aliases if scope.owns_alias(alias)}
        if len(local_aliases) == 1 and aliases == local_aliases:
            spec.add_filter(next(iter(local_aliases)), bound)
        else:
            spec.residual_predicates.append(bound)

    def _as_join_condition(
        self, scope: _Scope, conjunct: sql_ast.ExprNode
    ) -> Optional[JoinCondition]:
        if not isinstance(conjunct, sql_ast.BinaryOpNode) or conjunct.op != "=":
            return None
        if not (
            isinstance(conjunct.left, sql_ast.ColumnNode)
            and isinstance(conjunct.right, sql_ast.ColumnNode)
        ):
            return None
        left_alias, left_column, left_outer = scope.resolve(conjunct.left)
        right_alias, right_column, right_outer = scope.resolve(conjunct.right)
        if left_outer or right_outer:
            return None  # correlated equality, handled by the subquery machinery
        if left_alias == right_alias:
            return None
        return JoinCondition(left_alias, left_column, right_alias, right_column)

    # ------------------------------------------------------------------
    # subquery predicates
    # ------------------------------------------------------------------
    def _bind_exists(
        self,
        spec: QuerySpec,
        scope: _Scope,
        node: sql_ast.ExistsNode,
        negated: bool,
    ) -> None:
        inner_spec, correlation = self._bind_subquery(scope, node.subquery)
        kind = SubqueryKind.NOT_EXISTS if negated else SubqueryKind.EXISTS
        spec.subqueries.append(
            SubqueryPredicate(kind=kind, query=inner_spec, correlation=correlation)
        )

    def _bind_in_subquery(
        self, spec: QuerySpec, scope: _Scope, node: sql_ast.InSubqueryNode
    ) -> None:
        inner_spec, correlation = self._bind_subquery(scope, node.subquery)
        if len(inner_spec.output) != 1:
            raise SqlBindError("IN subqueries must select exactly one column")
        inner_column = inner_spec.output[0].expression
        if not isinstance(inner_column, ColumnRef):
            raise SqlBindError("IN subqueries must select a plain column")
        outer_expr = self._bind_scalar(scope, node.operand)
        kind = SubqueryKind.NOT_IN if node.negated else SubqueryKind.IN
        spec.subqueries.append(
            SubqueryPredicate(
                kind=kind,
                query=inner_spec,
                outer_expr=outer_expr,
                inner_column=inner_column,
                correlation=correlation,
            )
        )

    def _bind_scalar_subquery(
        self, spec: QuerySpec, scope: _Scope, node: sql_ast.BinaryOpNode
    ) -> None:
        if node.op not in _COMPARISON_OPS:
            raise SqlBindError("scalar subqueries must appear in comparisons")
        subquery_node = node.right
        assert isinstance(subquery_node, sql_ast.ScalarSubqueryNode)
        inner_spec, correlation = self._bind_subquery(scope, subquery_node.subquery)
        if len(inner_spec.aggregates) != 1 or inner_spec.output:
            raise SqlBindError("scalar subqueries must compute exactly one aggregate")
        outer_expr = self._bind_scalar(scope, node.left)
        spec.subqueries.append(
            SubqueryPredicate(
                kind=SubqueryKind.SCALAR,
                query=inner_spec,
                outer_expr=outer_expr,
                comparison_op=node.op,
                correlation=correlation,
            )
        )

    def _bind_subquery(
        self, scope: _Scope, statement: sql_ast.SelectStatement
    ) -> Tuple[QuerySpec, List[JoinCondition]]:
        """Bind an inner block and pull out its correlation conditions.

        Equality conjuncts of the inner WHERE clause that reference exactly
        one outer column and one inner column are removed from the inner
        spec and returned as correlation conditions (outer side left,
        inner side right), matching the forward-lookup evaluation strategy
        of paper Section 7.
        """
        inner_spec = self._bind_select(statement, outer_scope=scope, name="subquery")
        correlation: List[JoinCondition] = []
        remaining_residuals: List[Expression] = []
        inner_aliases = set(inner_spec.aliases())
        for predicate in inner_spec.residual_predicates:
            condition = _correlation_condition(predicate, inner_aliases)
            if condition is not None:
                correlation.append(condition)
            else:
                remaining_residuals.append(predicate)
        inner_spec.residual_predicates = remaining_residuals

        # filters that slipped through referencing outer aliases only
        for alias in list(inner_spec.filters):
            if alias not in inner_aliases:
                raise SqlBindError(
                    f"subquery filter references alias {alias!r} outside the subquery"
                )
        return inner_spec, correlation

    # ------------------------------------------------------------------
    # scalar expression binding
    # ------------------------------------------------------------------
    def _bind_scalar(self, scope: _Scope, node: sql_ast.ExprNode) -> Expression:
        if isinstance(node, sql_ast.LiteralNode):
            return Literal(node.value)
        if isinstance(node, sql_ast.ColumnNode):
            alias, column, _is_outer = scope.resolve(node)
            return ColumnRef(column, alias)
        if isinstance(node, sql_ast.BinaryOpNode):
            left = self._bind_scalar(scope, node.left)
            right = self._bind_scalar(scope, node.right)
            if node.op in _ARITHMETIC_OPS:
                return Arithmetic(node.op, left, right)
            if node.op in _COMPARISON_OPS:
                return Comparison(node.op, left, right)
            raise SqlBindError(f"unsupported operator {node.op!r}")
        if isinstance(node, sql_ast.BoolOpNode):
            operands = [self._bind_scalar(scope, operand) for operand in node.operands]
            return And(operands) if node.op == "AND" else Or(operands)
        if isinstance(node, sql_ast.NotNode):
            return Not(self._bind_scalar(scope, node.operand))
        if isinstance(node, sql_ast.IsNullNode):
            return IsNull(self._bind_scalar(scope, node.operand), node.negated)
        if isinstance(node, sql_ast.BetweenNode):
            return Between(
                self._bind_scalar(scope, node.operand),
                self._bind_scalar(scope, node.low),
                self._bind_scalar(scope, node.high),
            )
        if isinstance(node, sql_ast.LikeNode):
            return Like(self._bind_scalar(scope, node.operand), node.pattern, node.negated)
        if isinstance(node, sql_ast.InListNode):
            values = tuple(
                ParameterRef(value.name)
                if isinstance(value, sql_ast.ParameterNode)
                else value
                for value in node.values
            )
            return InList(self._bind_scalar(scope, node.operand), values, node.negated)
        if isinstance(node, sql_ast.ParameterNode):
            return ParameterRef(node.name)
        if isinstance(node, (sql_ast.ExistsNode, sql_ast.InSubqueryNode, sql_ast.ScalarSubqueryNode)):
            raise SqlBindError(
                "subqueries may only appear as top-level WHERE conjuncts in this SQL subset"
            )
        if isinstance(node, sql_ast.FuncNode):
            raise SqlBindError("aggregate functions cannot appear inside WHERE expressions")
        raise SqlBindError(f"unsupported expression node {type(node).__name__}")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _split_and(node: sql_ast.ExprNode) -> List[sql_ast.ExprNode]:
    if isinstance(node, sql_ast.BoolOpNode) and node.op == "AND":
        conjuncts: List[sql_ast.ExprNode] = []
        for operand in node.operands:
            conjuncts.extend(_split_and(operand))
        return conjuncts
    return [node]


def _contains_aggregate(node: sql_ast.ExprNode) -> bool:
    if isinstance(node, sql_ast.FuncNode):
        return True
    if isinstance(node, sql_ast.BinaryOpNode):
        return _contains_aggregate(node.left) or _contains_aggregate(node.right)
    if isinstance(node, sql_ast.BoolOpNode):
        return any(_contains_aggregate(operand) for operand in node.operands)
    if isinstance(node, sql_ast.NotNode):
        return _contains_aggregate(node.operand)
    return False


def _referenced_aliases(expression: Expression) -> Set[str]:
    aliases = set()
    for qualified in expression.columns():
        if "." in qualified:
            aliases.add(qualified.split(".", 1)[0])
    return aliases


def _correlation_condition(
    predicate: Expression, inner_aliases: Set[str]
) -> Optional[JoinCondition]:
    """Detect ``outer.column = inner.column`` equality predicates."""
    if not isinstance(predicate, Comparison) or predicate.op not in ("=", "=="):
        return None
    left, right = predicate.left, predicate.right
    if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
        return None
    left_inner = left.table in inner_aliases
    right_inner = right.table in inner_aliases
    if left_inner and not right_inner:
        return JoinCondition(right.table, right.column, left.table, left.column)
    if right_inner and not left_inner:
        return JoinCondition(left.table, left.column, right.table, right.column)
    return None


def bind_sql(statement: sql_ast.SelectStatement, catalog: Catalog, name: str = "query") -> QuerySpec:
    return Binder(catalog).bind(statement, name=name)
