"""SQL lexer for the subset of SQL used by the TPC-style workloads."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL text."""


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"
    END = "end"


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "AS", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN", "LIKE",
    "IS", "NULL", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "ON",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "DATE", "ASC", "DESC", "UNION",
    "ALL", "CASE", "WHEN", "THEN", "ELSE", "END", "INTERVAL", "TRUE", "FALSE",
}

_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(sql: str) -> List[Token]:
    """Split a SQL string into tokens (keywords are upper-cased)."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        character = sql[index]
        if character.isspace():
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if character == "'":
            end = index + 1
            literal_chars = []
            while end < length:
                if sql[end] == "'" and end + 1 < length and sql[end + 1] == "'":
                    literal_chars.append("'")
                    end += 2
                    continue
                if sql[end] == "'":
                    break
                literal_chars.append(sql[end])
                end += 1
            if end >= length:
                raise SqlSyntaxError(f"unterminated string literal at position {index}")
            tokens.append(Token(TokenType.STRING, "".join(literal_chars), index))
            index = end + 1
            continue
        if character.isdigit() or (
            character == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue
        if character == "?":
            # positional parameter placeholder; names are assigned by the parser
            tokens.append(Token(TokenType.PARAMETER, "", index))
            index += 1
            continue
        if character == ":":
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            if end == index + 1:
                raise SqlSyntaxError(f"expected a parameter name after ':' at position {index}")
            tokens.append(Token(TokenType.PARAMETER, sql[index + 1 : end], index))
            index = end
            continue
        if character.isalpha() or character == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue
        matched_operator = next(
            (operator for operator in _OPERATORS if sql.startswith(operator, index)), None
        )
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, index))
            index += len(matched_operator)
            continue
        if character in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, character, index))
            index += 1
            continue
        raise SqlSyntaxError(f"unexpected character {character!r} at position {index}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens
