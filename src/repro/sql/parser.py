"""Recursive-descent parser for the supported SQL subset.

Supported grammar (roughly the fragment exercised by the TPC-style
workloads of the paper):

* ``SELECT [DISTINCT] <select list> FROM <tables> [JOIN ... ON ...]``
* ``WHERE`` with AND/OR/NOT, comparisons, BETWEEN, LIKE, IN (value list or
  subquery), EXISTS / NOT EXISTS, IS [NOT] NULL, scalar subqueries, and
  arithmetic over columns and literals (including ``DATE 'YYYY-MM-DD'``);
* ``GROUP BY``, aggregate functions COUNT / SUM / AVG / MIN / MAX
  (optionally DISTINCT), ``HAVING``;
* ``ORDER BY`` and ``LIMIT`` are parsed but ignored by the engines, exactly
  as the paper's experiments drop them (Section 8.1.1).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, List, Optional

from .ast import (
    BetweenNode,
    BinaryOpNode,
    BoolOpNode,
    ColumnNode,
    ExistsNode,
    ExprNode,
    FuncNode,
    InListNode,
    InSubqueryNode,
    IsNullNode,
    JoinClause,
    LikeNode,
    LiteralNode,
    NotNode,
    OrderItem,
    ParameterNode,
    ScalarSubqueryNode,
    SelectItem,
    SelectStatement,
    TableSource,
)
from .lexer import SqlSyntaxError, Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISON_OPERATORS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class Parser:
    """A hand-written recursive-descent SQL parser."""

    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._index = 0
        self._positional_parameters = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def _expect_keyword(self, *keywords: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.KEYWORD or token.value not in keywords:
            raise SqlSyntaxError(f"expected {'/'.join(keywords)}, found {token.value!r}")
        return token

    def _expect_punctuation(self, symbol: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.PUNCTUATION or token.value != symbol:
            raise SqlSyntaxError(f"expected {symbol!r}, found {token.value!r}")
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self._peek().matches_keyword(*keywords):
            return self._advance()
        return None

    def _accept_punctuation(self, symbol: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == symbol:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse(self) -> SelectStatement:
        statement = self._parse_select()
        self._accept_punctuation(";")
        if self._peek().type is not TokenType.END:
            raise SqlSyntaxError(f"unexpected trailing token {self._peek().value!r}")
        return statement

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        statement = SelectStatement()
        if self._accept_keyword("DISTINCT"):
            statement.distinct = True
        statement.items = self._parse_select_list()
        self._expect_keyword("FROM")
        statement.sources.append(self._parse_table_source())
        while True:
            if self._accept_punctuation(","):
                statement.sources.append(self._parse_table_source())
                continue
            join = self._try_parse_join()
            if join is not None:
                statement.joins.append(join)
                continue
            break
        if self._accept_keyword("WHERE"):
            statement.where = self._parse_expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            statement.group_by.append(self._parse_expression())
            while self._accept_punctuation(","):
                statement.group_by.append(self._parse_expression())
        if self._accept_keyword("HAVING"):
            statement.having = self._parse_expression()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            statement.order_by.append(self._parse_order_item())
            while self._accept_punctuation(","):
                statement.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError(f"expected a number after LIMIT, found {token.value!r}")
            statement.limit = int(token.value)
        return statement

    def _parse_select_list(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punctuation(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return SelectItem(ColumnNode("*"), None)
        expression = self._parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias_token = self._advance()
            alias = alias_token.value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return SelectItem(expression, alias)

    def _parse_table_source(self) -> TableSource:
        token = self._advance()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise SqlSyntaxError(f"expected a table name, found {token.value!r}")
        table = token.value
        alias = table
        if self._accept_keyword("AS"):
            alias = self._advance().value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableSource(table, alias)

    def _try_parse_join(self) -> Optional[JoinClause]:
        kind = "inner"
        start = self._index
        if self._accept_keyword("INNER"):
            kind = "inner"
        elif self._accept_keyword("LEFT"):
            kind = "left"
            self._accept_keyword("OUTER")
        elif self._accept_keyword("RIGHT"):
            kind = "right"
            self._accept_keyword("OUTER")
        elif self._accept_keyword("FULL"):
            kind = "full"
            self._accept_keyword("OUTER")
        if not self._accept_keyword("JOIN"):
            self._index = start
            return None
        source = self._parse_table_source()
        self._expect_keyword("ON")
        condition = self._parse_expression()
        return JoinClause(source, kind, condition)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expression, descending)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ExprNode:
        return self._parse_or()

    def _parse_or(self) -> ExprNode:
        operands = [self._parse_and()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BoolOpNode("OR", tuple(operands))

    def _parse_and(self) -> ExprNode:
        operands = [self._parse_not()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BoolOpNode("AND", tuple(operands))

    def _parse_not(self) -> ExprNode:
        if self._accept_keyword("NOT"):
            return NotNode(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ExprNode:
        if self._peek().matches_keyword("EXISTS"):
            self._advance()
            self._expect_punctuation("(")
            subquery = self._parse_select()
            self._expect_punctuation(")")
            return ExistsNode(subquery)
        operand = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPERATORS:
            operator = self._advance().value
            right = self._parse_comparison_rhs()
            return BinaryOpNode(operator, operand, right)
        negated = False
        if token.matches_keyword("NOT"):
            lookahead = self._peek(1)
            if lookahead.matches_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
                token = self._peek()
        if token.matches_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            result: ExprNode = BetweenNode(operand, low, high)
            return NotNode(result) if negated else result
        if token.matches_keyword("IN"):
            self._advance()
            self._expect_punctuation("(")
            if self._peek().matches_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_punctuation(")")
                return InSubqueryNode(operand, subquery, negated)
            values = [self._parse_literal_value()]
            while self._accept_punctuation(","):
                values.append(self._parse_literal_value())
            self._expect_punctuation(")")
            return InListNode(operand, tuple(values), negated)
        if token.matches_keyword("LIKE"):
            self._advance()
            pattern_token = self._advance()
            if pattern_token.type is not TokenType.STRING:
                raise SqlSyntaxError("LIKE expects a string literal pattern")
            return LikeNode(operand, pattern_token.value, negated)
        if token.matches_keyword("IS"):
            self._advance()
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNullNode(operand, is_negated)
        return operand

    def _parse_comparison_rhs(self) -> ExprNode:
        if self._peek().type is TokenType.PUNCTUATION and self._peek().value == "(":
            if self._peek(1).matches_keyword("SELECT"):
                self._advance()
                subquery = self._parse_select()
                self._expect_punctuation(")")
                return ScalarSubqueryNode(subquery)
        return self._parse_additive()

    def _parse_additive(self) -> ExprNode:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                operator = self._advance().value
                right = self._parse_term()
                left = BinaryOpNode(operator, left, right)
            else:
                return left

    def _parse_term(self) -> ExprNode:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                operator = self._advance().value
                right = self._parse_factor()
                left = BinaryOpNode(operator, left, right)
            else:
                return left

    def _parse_factor(self) -> ExprNode:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._parse_factor()
            return BinaryOpNode("-", LiteralNode(0), operand)
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            if self._peek().matches_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_punctuation(")")
                return ScalarSubqueryNode(subquery)
            expression = self._parse_expression()
            self._expect_punctuation(")")
            return expression
        if token.type is TokenType.NUMBER:
            self._advance()
            value: Any = float(token.value) if "." in token.value else int(token.value)
            return LiteralNode(value)
        if token.type is TokenType.STRING:
            self._advance()
            return LiteralNode(token.value)
        if token.matches_keyword("NULL"):
            self._advance()
            return LiteralNode(None)
        if token.matches_keyword("TRUE"):
            self._advance()
            return LiteralNode(True)
        if token.matches_keyword("FALSE"):
            self._advance()
            return LiteralNode(False)
        if token.matches_keyword("DATE"):
            self._advance()
            literal = self._advance()
            if literal.type is not TokenType.STRING:
                raise SqlSyntaxError("DATE expects a quoted ISO date")
            return LiteralNode(_dt.date.fromisoformat(literal.value))
        if token.type is TokenType.PARAMETER:
            return self._parse_parameter()
        if token.matches_keyword(*_AGGREGATE_KEYWORDS):
            return self._parse_aggregate()
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column()
        raise SqlSyntaxError(f"unexpected token {token.value!r} in expression")

    def _parse_aggregate(self) -> ExprNode:
        name = self._advance().value
        self._expect_punctuation("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        token = self._peek()
        argument: Optional[ExprNode]
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            argument = None
        else:
            argument = self._parse_expression()
        self._expect_punctuation(")")
        return FuncNode(name, argument, distinct)

    def _parse_column(self) -> ExprNode:
        first = self._advance().value
        if self._accept_punctuation("."):
            second = self._advance()
            if second.type is TokenType.OPERATOR and second.value == "*":
                return ColumnNode("*", first)
            return ColumnNode(second.value, first)
        return ColumnNode(first)

    def _parse_parameter(self) -> ParameterNode:
        token = self._advance()
        if token.value:
            return ParameterNode(token.value)
        name = f"p{self._positional_parameters}"
        self._positional_parameters += 1
        return ParameterNode(name, positional=True)

    def _parse_literal_value(self) -> Any:
        token = self._peek()
        if token.type is TokenType.PARAMETER:
            return self._parse_parameter()
        self._advance()
        if token.type is TokenType.NUMBER:
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            return token.value
        if token.matches_keyword("DATE"):
            literal = self._advance()
            return _dt.date.fromisoformat(literal.value)
        raise SqlSyntaxError(f"expected a literal or parameter, found {token.value!r}")


def parse_sql(sql: str) -> SelectStatement:
    """Parse SQL text into a :class:`SelectStatement`."""
    return Parser(sql).parse()
