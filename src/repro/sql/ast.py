"""Syntax tree of the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class ExprNode:
    """Base class of syntactic expression nodes."""


@dataclass(frozen=True)
class ColumnNode(ExprNode):
    column: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class LiteralNode(ExprNode):
    value: Any


@dataclass(frozen=True)
class ParameterNode(ExprNode):
    """A query parameter: named (``:name``) or positional (``?``).

    Positional placeholders are assigned the synthetic names ``p0, p1, ...``
    in lexical order by the parser, so downstream machinery deals in named
    parameters only.
    """

    name: str
    positional: bool = False


@dataclass(frozen=True)
class BinaryOpNode(ExprNode):
    """Arithmetic or comparison binary operation."""

    op: str
    left: ExprNode
    right: ExprNode


@dataclass(frozen=True)
class BoolOpNode(ExprNode):
    op: str  # "AND" | "OR"
    operands: Tuple[ExprNode, ...]


@dataclass(frozen=True)
class NotNode(ExprNode):
    operand: ExprNode


@dataclass(frozen=True)
class IsNullNode(ExprNode):
    operand: ExprNode
    negated: bool = False


@dataclass(frozen=True)
class BetweenNode(ExprNode):
    operand: ExprNode
    low: ExprNode
    high: ExprNode


@dataclass(frozen=True)
class LikeNode(ExprNode):
    operand: ExprNode
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class InListNode(ExprNode):
    operand: ExprNode
    values: Tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubqueryNode(ExprNode):
    operand: ExprNode
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class ExistsNode(ExprNode):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class FuncNode(ExprNode):
    """Aggregate function call (COUNT/SUM/AVG/MIN/MAX)."""

    name: str
    argument: Optional[ExprNode]  # None for COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class ScalarSubqueryNode(ExprNode):
    subquery: "SelectStatement"


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class SelectItem:
    expression: ExprNode
    alias: Optional[str] = None


@dataclass
class TableSource:
    table: str
    alias: str


@dataclass
class JoinClause:
    source: TableSource
    kind: str  # "inner" | "left" | "right" | "full"
    condition: ExprNode


@dataclass
class OrderItem:
    expression: ExprNode
    descending: bool = False


@dataclass
class SelectStatement:
    items: List[SelectItem] = field(default_factory=list)
    sources: List[TableSource] = field(default_factory=list)
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[ExprNode] = None
    group_by: List[ExprNode] = field(default_factory=list)
    having: Optional[ExprNode] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
