"""Append-only global string dictionary.

The encoded store maps every distinct string in the catalog's active
domain to a dense ``int32`` code.  The dictionary is *global* (one per
:class:`~repro.relational.catalog.Catalog`) rather than per column: TAG
attribute vertices are shared across relations and columns whenever the
underlying value is equal (Section 3 of the paper), so code equality
must coincide with value equality catalog-wide.  A per-column dictionary
would break cross-relation joins on codes.

The dictionary only ever grows — delta ingest appends new entries and
never rewrites existing ones — so a code, once assigned, is stable for
the lifetime of the catalog.  Compiled plans may therefore bake concrete
codes into predicate closures and stay valid across data versions.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

#: In-band sentinel for SQL NULL in code-encoded columns.  Valid codes are
#: always >= 0, so any negative value reads as NULL.
NULL_CODE = -1

#: Returned by :meth:`StringDictionary.code_of` for strings that were never
#: interned.  Distinct from :data:`NULL_CODE` so "unknown value" (matches
#: nothing) and "NULL" (matches IS NULL) cannot be conflated.
MISSING_CODE = -2


class StringDictionary:
    """Thread-safe append-only value <-> code mapping.

    Reads (:meth:`code_of`, :meth:`value`) are lock-free — dict/list reads
    are atomic under the GIL and entries are published only after they are
    fully constructed.  Writes take a lock so concurrent interning (e.g.
    two sessions compiling plans with fresh literals) cannot assign the
    same code twice.
    """

    __slots__ = ("_codes", "_values", "_bytes", "_lock")

    def __init__(self) -> None:
        self._codes: Dict[str, int] = {}
        self._values: List[str] = []
        self._bytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._values)

    @property
    def size_bytes(self) -> int:
        """Total bytes of dictionary payload (sum of entry lengths)."""
        return self._bytes

    def intern(self, value: str) -> Tuple[int, int]:
        """Get-or-add ``value``; returns ``(code, added_bytes)``.

        ``added_bytes`` is the dictionary growth caused by this call — the
        entry's byte length on first occurrence, 0 afterwards — which is
        how the encoded byte accounting amortises dictionary storage over
        the whole catalog.
        """
        code = self._codes.get(value)
        if code is not None:
            return code, 0
        with self._lock:
            code = self._codes.get(value)
            if code is not None:
                return code, 0
            code = len(self._values)
            self._values.append(value)
            added = len(value.encode("utf-8", "surrogatepass"))
            self._bytes += added
            # publish last: readers only see codes whose value slot exists
            self._codes[value] = code
            return code, added

    def code_for(self, value: str) -> int:
        """Get-or-add ``value`` and return its code."""
        return self.intern(value)[0]

    def code_of(self, value: str) -> int:
        """Lookup-only: the code of ``value`` or :data:`MISSING_CODE`."""
        return self._codes.get(value, MISSING_CODE)

    def value(self, code: int) -> str:
        """The string a code decodes to."""
        return self._values[code]

    def values_snapshot(self) -> List[str]:
        """A point-in-time copy of the dictionary payload (for side tables)."""
        return list(self._values)
