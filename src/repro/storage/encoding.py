"""Column codecs: native-dtype encodings for strings, dates and NULLs.

The encode-once/decode-once contract of the storage layer:

* **strings / text** become ``int32`` codes into the catalog-global
  :class:`~repro.storage.dictionary.StringDictionary`
  (NULL -> :data:`~repro.storage.dictionary.NULL_CODE`);
* **dates** become days-since-1970-01-01 ``int32``
  (NULL -> :data:`DATE_NULL_SENTINEL`), matching the days-since-epoch
  convention :func:`repro.relational.types.coerce_date` already accepts;
* **ints / floats / bools** stay raw (they are native dtypes already).

Values are encoded once at ingest and decoded once at the public result
boundary; everything in between — filters, joins, group-bys, the TAG
graph's tuple payloads — operates on the integer codes.
"""

from __future__ import annotations

import datetime as _dt
import operator as _operator
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..relational.types import NULL, DataType, value_size_bytes
from .dictionary import MISSING_CODE, NULL_CODE, StringDictionary

#: In-band sentinel for NULL in epoch-day encoded date columns.  Any real
#: date is within a few hundred thousand days of the epoch, so INT32_MIN
#: never collides and orders before every valid day.
DATE_NULL_SENTINEL = -(2**31)

_EPOCH_ORDINAL = _dt.date(1970, 1, 1).toordinal()

#: Column encoding kinds.
RAW = "raw"
CODE = "code"  # dictionary-encoded strings
EPOCH_DAY = "epoch_day"  # sentinel-encoded dates

#: Fixed per-value footprint of an encoded slot (int32 code / epoch day).
CODE_BYTES = 4


def kind_of(dtype: DataType) -> str:
    """The encoding kind used for a relational domain."""
    if dtype in (DataType.STRING, DataType.TEXT):
        return CODE
    if dtype is DataType.DATE:
        return EPOCH_DAY
    return RAW


def date_to_epoch_day(value: _dt.date) -> int:
    return value.toordinal() - _EPOCH_ORDINAL


def epoch_day_to_date(days: int) -> _dt.date:
    return _dt.date.fromordinal(days + _EPOCH_ORDINAL)


def _as_int(value: Any) -> Optional[int]:
    """``value`` as a plain int when it is integral (incl. numpy ints)."""
    if isinstance(value, bool):
        return None
    try:
        return _operator.index(value)
    except TypeError:
        return None


class ColumnCodec:
    """Encode/decode one column's values per its :func:`kind_of` kind."""

    __slots__ = ("kind", "dtype", "dictionary")

    def __init__(self, dtype: DataType, dictionary: StringDictionary) -> None:
        self.dtype = dtype
        self.kind = kind_of(dtype)
        self.dictionary = dictionary

    @property
    def is_encoded(self) -> bool:
        return self.kind != RAW

    @property
    def null_sentinel(self) -> Optional[int]:
        if self.kind == CODE:
            return NULL_CODE
        if self.kind == EPOCH_DAY:
            return DATE_NULL_SENTINEL
        return None

    def encode(self, value: Any) -> Any:
        """Encoded representation of a coerced value (get-or-add)."""
        if self.kind == CODE:
            if value is NULL:
                return NULL_CODE
            return self.dictionary.code_for(value if isinstance(value, str) else str(value))
        if self.kind == EPOCH_DAY:
            if value is NULL:
                return DATE_NULL_SENTINEL
            return date_to_epoch_day(value)
        return value

    def encode_with_bytes(self, value: Any) -> Tuple[Any, int]:
        """Encode plus the value's encoded storage footprint in bytes.

        Encoded kinds cost a fixed 4-byte slot plus — on the *global* first
        occurrence of a string — the dictionary entry itself (amortised:
        later occurrences anywhere in the catalog cost the slot only).
        Raw kinds keep the legacy :func:`value_size_bytes` accounting.
        """
        if self.kind == CODE:
            if value is NULL:
                return NULL_CODE, CODE_BYTES
            code, added = self.dictionary.intern(
                value if isinstance(value, str) else str(value)
            )
            return code, CODE_BYTES + added
        if self.kind == EPOCH_DAY:
            if value is NULL:
                return DATE_NULL_SENTINEL, CODE_BYTES
            return date_to_epoch_day(value), CODE_BYTES
        return value, value_size_bytes(value, self.dtype)

    def slot_bytes(self, value: Any) -> int:
        """The storage a value's slot occupies, excluding amortised
        dictionary growth.  This is the byte credit a tombstone delete
        gives back: dictionary entries are catalog-global and never freed,
        so only the per-slot footprint returns."""
        if self.is_encoded:
            return CODE_BYTES
        return value_size_bytes(value, self.dtype)

    def encode_lookup(self, value: Any) -> Any:
        """Encode without growing the dictionary; unseen strings map to
        :data:`~repro.storage.dictionary.MISSING_CODE` (matches nothing)."""
        if self.kind == CODE:
            if value is NULL:
                return NULL_CODE
            return self.dictionary.code_of(value if isinstance(value, str) else str(value))
        if self.kind == EPOCH_DAY:
            if value is NULL:
                return DATE_NULL_SENTINEL
            return date_to_epoch_day(value)
        return value

    def decode(self, value: Any) -> Any:
        """Decoded value; tolerant of ``None`` (outer-join padding) and of
        already-decoded values so boundary decoding is idempotent."""
        if self.kind == RAW or value is NULL:
            return value
        code = _as_int(value)
        if code is None:
            return value
        if self.kind == CODE:
            if code < 0:
                return NULL
            return self.dictionary.value(code)
        if code == DATE_NULL_SENTINEL:
            return NULL
        return epoch_day_to_date(code)


class RelationCodec:
    """Per-schema bundle of column codecs."""

    __slots__ = ("schema", "codecs", "by_name", "encoded_columns")

    def __init__(self, schema: Any, dictionary: StringDictionary) -> None:
        self.schema = schema
        self.codecs = tuple(ColumnCodec(column.dtype, dictionary) for column in schema.columns)
        self.by_name: Dict[str, ColumnCodec] = {
            column.name: codec for column, codec in zip(schema.columns, self.codecs)
        }
        self.encoded_columns = tuple(
            column.name
            for column, codec in zip(schema.columns, self.codecs)
            if codec.is_encoded
        )

    @property
    def has_encoded(self) -> bool:
        return bool(self.encoded_columns)

    def codec_for(self, column: str) -> Optional[ColumnCodec]:
        return self.by_name.get(column)

    def decoder_for(self, column: str) -> Optional[Callable[[Any], Any]]:
        """Boundary decoder for an *encoded* column, None for raw ones."""
        codec = self.by_name.get(column)
        if codec is None or not codec.is_encoded:
            return None
        return codec.decode

    def encode_values(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Encode a column-name keyed value dict (unknown keys pass through)."""
        if not self.encoded_columns:
            return dict(values)
        encoded = dict(values)
        for name in self.encoded_columns:
            if name in encoded:
                encoded[name] = self.by_name[name].encode(encoded[name])
        return encoded

    def decode_values(self, values: Dict[str, Any]) -> Dict[str, Any]:
        if not self.encoded_columns:
            return dict(values)
        decoded = dict(values)
        for name in self.encoded_columns:
            if name in decoded:
                decoded[name] = self.by_name[name].decode(decoded[name])
        return decoded

    def encode_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        return tuple(codec.encode(value) for codec, value in zip(self.codecs, row))

    def decode_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        return tuple(codec.decode(value) for codec, value in zip(self.codecs, row))


class CatalogEncoding:
    """The catalog's encoding state: one global dictionary + schema codecs.

    Owned by :class:`~repro.relational.catalog.Catalog`; every relation
    added to the catalog binds an encoded column store against this object
    so codes agree across relations (shared TAG attribute vertices).
    """

    def __init__(self) -> None:
        self.dictionary = StringDictionary()
        # keyed by id(schema); the strong schema reference keeps the id valid
        self._codecs: Dict[int, Tuple[Any, RelationCodec]] = {}

    def codec_for(self, schema: Any) -> RelationCodec:
        entry = self._codecs.get(id(schema))
        if entry is not None and entry[0] is schema:
            return entry[1]
        codec = RelationCodec(schema, self.dictionary)
        self._codecs[id(schema)] = (schema, codec)
        return codec

    def stats(self) -> Dict[str, int]:
        return {
            "dictionary_entries": len(self.dictionary),
            "dictionary_bytes": self.dictionary.size_bytes,
        }


__all__ = [
    "CODE",
    "CODE_BYTES",
    "DATE_NULL_SENTINEL",
    "EPOCH_DAY",
    "MISSING_CODE",
    "NULL_CODE",
    "RAW",
    "CatalogEncoding",
    "ColumnCodec",
    "RelationCodec",
    "date_to_epoch_day",
    "epoch_day_to_date",
    "kind_of",
]
