"""Per-relation encoded column store.

Each encoded column keeps a packed ``int32`` code array plus a validity
bitmap, appended to in lockstep with the relation's row list.  The store
is the source of exact NDV (one set of distinct codes per column — the
"dictionary sizes" statistics read for free) and of the encoded byte
accounting that replaces the object-size estimate in
:func:`repro.relational.types.value_size_bytes`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Optional, Sequence, Set

from ..relational.types import NULL
from .encoding import RelationCodec

try:  # numpy is optional at this layer; code arrays degrade to memoryviews
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments only
    _np = None


class EncodedColumn:
    """One column's encoded values: int32 codes + validity bitmap."""

    __slots__ = ("name", "codec", "_codes", "_validity", "_distinct", "_null_count")

    def __init__(self, name: str, codec: Any) -> None:
        self.name = name
        self.codec = codec
        self._codes = array("i")
        self._validity = bytearray()
        self._distinct: Set[int] = set()
        self._null_count = 0

    def __len__(self) -> int:
        return len(self._codes)

    def append(self, value: Any) -> int:
        """Encode and append one coerced value; returns its byte footprint."""
        encoded, nbytes = self.codec.encode_with_bytes(value)
        index = len(self._codes)
        self._codes.append(encoded)
        byte_index, bit = divmod(index, 8)
        if byte_index >= len(self._validity):
            self._validity.append(0)
        if value is NULL:
            self._null_count += 1
        else:
            self._validity[byte_index] |= 1 << bit
            self._distinct.add(encoded)
        return nbytes

    @property
    def null_count(self) -> int:
        return self._null_count

    @property
    def ndv(self) -> int:
        """Exact number of distinct non-NULL values (distinct codes)."""
        return len(self._distinct)

    @property
    def validity_bitmap(self) -> bytes:
        return bytes(self._validity)

    def code_at(self, index: int) -> int:
        return self._codes[index]

    def codes_array(self):
        """The codes as a zero-copy ``int32`` numpy view (or memoryview)."""
        if _np is not None:
            return _np.frombuffer(self._codes, dtype=_np.int32, count=len(self._codes))
        return memoryview(self._codes)


class RelationEncodedStore:
    """Columnar encoded backing for one relation.

    Maintained by :meth:`repro.relational.relation.Relation.insert` (the
    single mutation chokepoint), so the row list and the code arrays can
    never drift apart.  Byte totals cover *all* columns — raw columns at
    their native width, encoded columns at 4 bytes per slot plus the
    amortised dictionary growth they caused.
    """

    __slots__ = ("schema", "codec", "columns", "_row_count", "_total_bytes")

    def __init__(self, schema: Any, codec: RelationCodec) -> None:
        self.schema = schema
        self.codec = codec
        self.columns: Dict[str, EncodedColumn] = {
            name: EncodedColumn(name, codec.by_name[name])
            for name in codec.encoded_columns
        }
        self._row_count = 0
        self._total_bytes = 0

    def __len__(self) -> int:
        return self._row_count

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def append_row(self, row: Sequence[Any]) -> int:
        """Account one coerced row; returns its encoded byte footprint."""
        row_bytes = 0
        for column, codec, value in zip(self.schema.columns, self.codec.codecs, row):
            if codec.is_encoded:
                row_bytes += self.columns[column.name].append(value)
            else:
                row_bytes += codec.encode_with_bytes(value)[1]
        self._row_count += 1
        self._total_bytes += row_bytes
        return row_bytes

    def rebuild(self, rows: Sequence[Sequence[Any]]) -> None:
        """Re-encode from scratch (deletes rewrite the backing row list)."""
        self.columns = {
            name: EncodedColumn(name, self.codec.by_name[name])
            for name in self.codec.encoded_columns
        }
        self._row_count = 0
        self._total_bytes = 0
        for row in rows:
            self.append_row(row)

    def column(self, name: str) -> Optional[EncodedColumn]:
        return self.columns.get(name)

    def ndv(self, name: str) -> Optional[int]:
        """Exact distinct-value count for an encoded column, else None."""
        column = self.columns.get(name)
        return column.ndv if column is not None else None


__all__ = ["EncodedColumn", "RelationEncodedStore"]
