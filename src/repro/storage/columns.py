"""Per-relation encoded column store.

Each encoded column keeps a packed ``int32`` code array plus a validity
bitmap, appended to in lockstep with the relation's row list.  The store
is the source of exact NDV (one set of distinct codes per column — the
"dictionary sizes" statistics read for free) and of the encoded byte
accounting that replaces the object-size estimate in
:func:`repro.relational.types.value_size_bytes`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Optional, Sequence

from ..relational.types import NULL
from .encoding import RelationCodec

try:  # numpy is optional at this layer; code arrays degrade to memoryviews
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments only
    _np = None


class EncodedColumn:
    """One column's encoded values: int32 codes + validity bitmap.

    Deletes are *tombstones*: :meth:`mark_deleted` clears the row's
    validity bit and drops its code from the live refcounts without
    rewriting the code array, so every surviving row keeps its physical
    index.  After a delete the bitmap therefore reads "live AND non-NULL"
    (a dead slot looks like NULL); :attr:`null_count` counts live NULLs
    only, and :attr:`ndv` stays exact because distinct codes are
    refcounted, not set-membership.
    """

    __slots__ = ("name", "codec", "_codes", "_validity", "_distinct", "_null_count")

    def __init__(self, name: str, codec: Any) -> None:
        self.name = name
        self.codec = codec
        self._codes = array("i")
        self._validity = bytearray()
        #: live occurrences per distinct code (exact NDV under deletion)
        self._distinct: Dict[int, int] = {}
        self._null_count = 0

    def __len__(self) -> int:
        return len(self._codes)

    def append(self, value: Any) -> int:
        """Encode and append one coerced value; returns its byte footprint."""
        encoded, nbytes = self.codec.encode_with_bytes(value)
        index = len(self._codes)
        self._codes.append(encoded)
        byte_index, bit = divmod(index, 8)
        if byte_index >= len(self._validity):
            self._validity.append(0)
        if value is NULL:
            self._null_count += 1
        else:
            self._validity[byte_index] |= 1 << bit
            self._distinct[encoded] = self._distinct.get(encoded, 0) + 1
        return nbytes

    def mark_deleted(self, index: int, value: Any) -> int:
        """Tombstone one slot; returns the encoded bytes it gave back.

        The code stays in the array (positions must not shift); only the
        accounting — validity bit, live NULL count, distinct refcount —
        moves.  Dictionary entries are catalog-global and never freed, so
        the byte credit is the slot width, not the amortised growth.
        """
        byte_index, bit = divmod(index, 8)
        if value is NULL:
            self._null_count -= 1
        else:
            self._validity[byte_index] &= ~(1 << bit)
            code = self._codes[index]
            remaining = self._distinct.get(code, 0) - 1
            if remaining > 0:
                self._distinct[code] = remaining
            else:
                self._distinct.pop(code, None)
        return self.codec.slot_bytes(value)

    def restore(self, index: int, value: Any) -> int:
        """Undo :meth:`mark_deleted` (delete rollback); returns slot bytes."""
        byte_index, bit = divmod(index, 8)
        if value is NULL:
            self._null_count += 1
        else:
            self._validity[byte_index] |= 1 << bit
            code = self._codes[index]
            self._distinct[code] = self._distinct.get(code, 0) + 1
        return self.codec.slot_bytes(value)

    @property
    def null_count(self) -> int:
        return self._null_count

    @property
    def ndv(self) -> int:
        """Exact number of distinct live non-NULL values (distinct codes)."""
        return len(self._distinct)

    @property
    def validity_bitmap(self) -> bytes:
        return bytes(self._validity)

    def code_at(self, index: int) -> int:
        return self._codes[index]

    def codes_array(self):
        """The codes as a zero-copy ``int32`` numpy view (or memoryview)."""
        if _np is not None:
            return _np.frombuffer(self._codes, dtype=_np.int32, count=len(self._codes))
        return memoryview(self._codes)


class RelationEncodedStore:
    """Columnar encoded backing for one relation.

    Maintained by :meth:`repro.relational.relation.Relation.insert` (the
    single mutation chokepoint), so the row list and the code arrays can
    never drift apart.  Byte totals cover *all* columns — raw columns at
    their native width, encoded columns at 4 bytes per slot plus the
    amortised dictionary growth they caused.
    """

    __slots__ = ("schema", "codec", "columns", "_row_count", "_total_bytes")

    def __init__(self, schema: Any, codec: RelationCodec) -> None:
        self.schema = schema
        self.codec = codec
        self.columns: Dict[str, EncodedColumn] = {
            name: EncodedColumn(name, codec.by_name[name])
            for name in codec.encoded_columns
        }
        self._row_count = 0
        self._total_bytes = 0

    def __len__(self) -> int:
        return self._row_count

    def delete_row(self, position: int, row: Sequence[Any]) -> int:
        """Tombstone one physical row slot; returns the bytes given back.

        The code arrays keep the dead slot (positions must not shift);
        NDV refcounts, NULL counts, validity bits and the byte total all
        fold the delete exactly.
        """
        freed = 0
        for column, codec, value in zip(self.schema.columns, self.codec.codecs, row):
            if codec.is_encoded:
                freed += self.columns[column.name].mark_deleted(position, value)
            else:
                freed += codec.slot_bytes(value)
        self._total_bytes -= freed
        return freed

    def restore_row(self, position: int, row: Sequence[Any]) -> int:
        """Undo :meth:`delete_row` (delete rollback)."""
        added = 0
        for column, codec, value in zip(self.schema.columns, self.codec.codecs, row):
            if codec.is_encoded:
                added += self.columns[column.name].restore(position, value)
            else:
                added += codec.slot_bytes(value)
        self._total_bytes += added
        return added

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def append_row(self, row: Sequence[Any]) -> int:
        """Account one coerced row; returns its encoded byte footprint."""
        row_bytes = 0
        for column, codec, value in zip(self.schema.columns, self.codec.codecs, row):
            if codec.is_encoded:
                row_bytes += self.columns[column.name].append(value)
            else:
                row_bytes += codec.encode_with_bytes(value)[1]
        self._row_count += 1
        self._total_bytes += row_bytes
        return row_bytes

    def rebuild(self, rows: Sequence[Sequence[Any]]) -> None:
        """Re-encode from scratch (deletes rewrite the backing row list)."""
        self.columns = {
            name: EncodedColumn(name, self.codec.by_name[name])
            for name in self.codec.encoded_columns
        }
        self._row_count = 0
        self._total_bytes = 0
        for row in rows:
            self.append_row(row)

    def column(self, name: str) -> Optional[EncodedColumn]:
        return self.columns.get(name)

    def ndv(self, name: str) -> Optional[int]:
        """Exact distinct-value count for an encoded column, else None."""
        column = self.columns.get(name)
        return column.ndv if column is not None else None


__all__ = ["EncodedColumn", "RelationEncodedStore"]
