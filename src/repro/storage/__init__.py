"""Native-dtype columnar storage: encode once at ingest, decode once at
the result boundary.

* :mod:`repro.storage.dictionary` — the catalog-global append-only
  string dictionary (code equality == value equality catalog-wide).
* :mod:`repro.storage.encoding` — column codecs: strings -> int32 codes,
  dates -> epoch days, NULL -> in-band sentinels.
* :mod:`repro.storage.columns` — per-relation encoded column store with
  validity bitmaps, exact NDV and encoded byte accounting.
* :mod:`repro.storage.rewrite` — compiles predicates/outputs/aggregates
  onto the codes so the inner loop never touches a Python string or date.
"""

from .columns import EncodedColumn, RelationEncodedStore
from .dictionary import MISSING_CODE, NULL_CODE, StringDictionary
from .encoding import (
    CODE,
    CODE_BYTES,
    DATE_NULL_SENTINEL,
    EPOCH_DAY,
    RAW,
    CatalogEncoding,
    ColumnCodec,
    RelationCodec,
    date_to_epoch_day,
    epoch_day_to_date,
    kind_of,
)

_REWRITE_EXPORTS = frozenset(
    {
        "CodeTable",
        "DecodeExpr",
        "DecodedContext",
        "DictionaryPredicate",
        "FragmentRewriter",
        "decode_output_rows",
    }
)


def __getattr__(name):
    # the rewrite module imports repro.algebra, which imports
    # repro.relational, which imports this package — resolve it lazily so
    # the relational layer can depend on the codecs without a cycle
    if name in _REWRITE_EXPORTS:
        from . import rewrite

        return getattr(rewrite, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CODE",
    "CODE_BYTES",
    "DATE_NULL_SENTINEL",
    "EPOCH_DAY",
    "MISSING_CODE",
    "NULL_CODE",
    "RAW",
    "CatalogEncoding",
    "CodeTable",
    "ColumnCodec",
    "DecodeExpr",
    "DecodedContext",
    "DictionaryPredicate",
    "EncodedColumn",
    "FragmentRewriter",
    "RelationCodec",
    "RelationEncodedStore",
    "StringDictionary",
    "date_to_epoch_day",
    "epoch_day_to_date",
    "decode_output_rows",
    "kind_of",
]
