"""Rewrite query expressions to run directly on encoded columns.

The compiler calls into this module once per fragment (the single
chokepoint between logical predicates and the physical
``FragmentConfig``): filters, residuals, output columns and aggregate
arguments are rewritten so that the inner execution loop only ever sees
``int32`` codes, and plain string/date values appear exactly once — at
the public result boundary.

Correctness contract: every rewritten predicate must produce the
*identical* boolean the legacy expression produces for **all** inputs,
including NULLs (``None`` from outer-join padding as well as the in-band
sentinels).  Composition under ``And``/``Or``/``Not`` is then
automatically safe, because ``Not`` is plain boolean negation in this
engine.

The hot rewrites (equality, IN, IS NULL, date ranges) produce ordinary
:class:`~repro.algebra.expressions.Comparison`/``InList`` nodes over
*interned* literal codes — query literals are added to the append-only
dictionary at rewrite time, so codes are compile-time-stable and cached
plans never go stale.  String ordering / LIKE / BETWEEN go through a
:class:`DictionaryPredicate` — a lazily grown boolean side table indexed
by code.  Everything else (cross-type comparisons, arithmetic over
encoded columns, parameters, subquery closures) falls back to explicit
decode-at-access (:class:`DecodeExpr` / :class:`DecodedContext`), which
is always correct.
"""

from __future__ import annotations

import datetime as _dt
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..algebra.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    like_regex,
)
from ..algebra.logical import AggregateSpec, OutputColumn
from ..algebra.parameters import ParameterRef
from .dictionary import NULL_CODE, StringDictionary
from .encoding import (
    CODE,
    DATE_NULL_SENTINEL,
    EPOCH_DAY,
    ColumnCodec,
    RelationCodec,
    _as_int,
    date_to_epoch_day,
)

#: Marker for an unqualified column name that matches several aliases, at
#: least one of them encoded — the rewriter cannot pick a codec and wraps
#: the expression in a :class:`DecodedContext` instead.
_AMBIGUOUS = object()

Decoder = Callable[[Any], Any]


# ----------------------------------------------------------------------
# expression nodes introduced by the rewrite
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecodeExpr(Expression):
    """Decode an encoded operand at access time (the correct-always path)."""

    operand: Expression
    codec: ColumnCodec

    def evaluate(self, context: Any) -> Any:
        return self.codec.decode(self.operand.evaluate(context))

    def columns(self):
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"Decode({self.operand!r})"


class CodeTable:
    """Lazily grown boolean side table: ``table[code] = predicate(value)``.

    Evaluating a string predicate over the dictionary once turns an
    arbitrary LIKE / range / BETWEEN into an O(1) integer lookup per row.
    The table extends itself when the dictionary has grown since the last
    use (delta ingest appends entries, it never rewrites them), and the
    published list is replaced atomically so readers never lock.
    """

    __slots__ = ("dictionary", "predicate", "description", "_table", "_np_table", "_lock")

    def __init__(
        self,
        dictionary: StringDictionary,
        predicate: Callable[[str], bool],
        description: str = "",
    ) -> None:
        self.dictionary = dictionary
        self.predicate = predicate
        self.description = description
        self._table: List[bool] = []
        self._np_table = None
        self._lock = threading.Lock()

    def _extend(self) -> None:
        with self._lock:
            dictionary = self.dictionary
            grown = list(self._table)
            predicate = self.predicate
            for code in range(len(grown), len(dictionary)):
                grown.append(bool(predicate(dictionary.value(code))))
            self._table = grown
            self._np_table = None

    def test(self, code: Any) -> bool:
        """Truth value for one code; NULL/padding/foreign codes are False."""
        index = _as_int(code)
        if index is None or index < 0:
            return False
        table = self._table
        if index >= len(table):
            self._extend()
            table = self._table
            if index >= len(table):
                return False
        return table[index]

    def mask(self, codes: Any):
        """Vectorized lookup: a boolean numpy mask for an int code array."""
        import numpy as np

        if len(self._table) < len(self.dictionary):
            self._extend()
        table = self._np_table
        if table is None or len(table) < len(self._table):
            table = np.asarray(self._table, dtype=bool)
            self._np_table = table
        codes = np.asarray(codes)
        if codes.dtype.kind not in "iu":
            return np.fromiter(
                (self.test(code) for code in codes.tolist()), dtype=bool, count=len(codes)
            )
        out = np.zeros(len(codes), dtype=bool)
        valid = (codes >= 0) & (codes < len(table))
        out[valid] = table[codes[valid]]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CodeTable({self.description})"


@dataclass(frozen=True)
class DictionaryPredicate(Expression):
    """A string predicate evaluated through a :class:`CodeTable`."""

    operand: Expression
    table: CodeTable

    def evaluate(self, context: Any) -> bool:
        return self.table.test(self.operand.evaluate(context))

    def columns(self):
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"DictPred({self.operand!r}, {self.table.description})"


@dataclass(frozen=True, eq=False)
class DecodedContext(Expression):
    """Evaluate an opaque predicate against a fully decoded row context.

    The safety net for expression types the rewriter cannot rebuild —
    notably the :class:`~repro.core.operations.CallablePredicate` closures
    subquery compilation produces, which probe ``context.get(...)``
    directly.  The wrapper materialises a decoded copy of the context
    dict, restoring exact legacy semantics at interpretation cost.
    """

    inner: Expression
    decoders: Dict[str, Decoder]

    def evaluate(self, context: Any) -> Any:
        decoders = self.decoders
        decoded = {
            key: decoders[key](value) if key in decoders else value
            for key, value in context.items()
        }
        return self.inner.evaluate(decoded)

    def columns(self):
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"DecodedContext({self.inner!r})"


# ----------------------------------------------------------------------
# the rewriter
# ----------------------------------------------------------------------
_FLIP = {"=": "=", "==": "==", "!=": "!=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_NE_OPS = ("!=", "<>")
_EQ_OPS = ("=", "==")

#: Node types :meth:`FragmentRewriter._decode_subst` knows how to rebuild
#: with substituted operands.  Anything else gets a DecodedContext.
_REBUILDABLE = (
    Literal,
    ColumnRef,
    ParameterRef,
    Comparison,
    Arithmetic,
    And,
    Or,
    Not,
    IsNull,
    InList,
    Between,
    Like,
)


def _is_plain_date(value: Any) -> bool:
    return isinstance(value, _dt.date) and not isinstance(value, _dt.datetime)


class FragmentRewriter:
    """Rewrites one fragment's expressions onto the encoded representation.

    ``use_codes=False`` is the explicit object-path opt-out: every encoded
    column reference is wrapped in :class:`DecodeExpr` instead, restoring
    decode-at-access (object dtype) behaviour — the baseline the encoding
    benchmark measures against and the chicken switch for debugging.
    """

    def __init__(
        self,
        alias_codecs: Dict[str, RelationCodec],
        use_codes: bool = True,
    ) -> None:
        self.alias_codecs = alias_codecs
        self.use_codes = use_codes
        self._qualified: Dict[str, ColumnCodec] = {}
        by_name: Dict[str, Any] = {}
        seen_alias: Dict[str, str] = {}
        for alias, codec in alias_codecs.items():
            for name, column_codec in codec.by_name.items():
                if column_codec.is_encoded:
                    self._qualified[f"{alias}.{name}"] = column_codec
                if name in seen_alias and seen_alias[name] != alias:
                    # same column name under several aliases: ambiguous if
                    # any occurrence is encoded, harmless otherwise
                    if column_codec.is_encoded or by_name.get(name) is not None:
                        by_name[name] = _AMBIGUOUS
                else:
                    seen_alias[name] = alias
                    by_name[name] = column_codec if column_codec.is_encoded else None
        self._by_name = by_name
        self.context_decoders: Dict[str, Decoder] = {
            qualified: codec.decode for qualified, codec in self._qualified.items()
        }

    @classmethod
    def for_catalog(
        cls, catalog: Any, alias_tables: Dict[str, str], use_codes: bool = True
    ) -> Optional["FragmentRewriter"]:
        """A rewriter for the fragment's aliases, or None when there is
        nothing encoded to rewrite (all-numeric fragments skip the pass)."""
        encoding = getattr(catalog, "encoding", None)
        if encoding is None:
            return None
        alias_codecs: Dict[str, RelationCodec] = {}
        any_encoded = False
        for alias, table in alias_tables.items():
            codec = encoding.codec_for(catalog.schema(table))
            alias_codecs[alias] = codec
            any_encoded = any_encoded or codec.has_encoded
        if not any_encoded:
            return None
        return cls(alias_codecs, use_codes=use_codes)

    # -- column resolution --------------------------------------------
    def _codec_of(self, ref: ColumnRef, scope: Optional[str]) -> Any:
        """The ColumnCodec of an *encoded* ref, None for raw/unknown, or
        the ambiguity marker."""
        if ref.table is not None:
            codec = self.alias_codecs.get(ref.table)
            if codec is None:
                return None
            column_codec = codec.codec_for(ref.column)
            if column_codec is not None and column_codec.is_encoded:
                return column_codec
            return None
        if scope is not None:
            codec = self.alias_codecs.get(scope)
            if codec is not None:
                column_codec = codec.codec_for(ref.column)
                if column_codec is not None:
                    return column_codec if column_codec.is_encoded else None
        return self._by_name.get(ref.column)

    def _codec_of_qualified(self, qualified: str, scope: Optional[str]) -> Any:
        if "." in qualified:
            alias, column = qualified.split(".", 1)
            return self._codec_of(ColumnRef(column, alias), scope)
        return self._codec_of(ColumnRef(qualified), scope)

    def _touches_encoded(self, expression: Expression, scope: Optional[str]) -> bool:
        return any(
            self._codec_of_qualified(qualified, scope) is not None
            for qualified in expression.columns()
        )

    # -- decode-at-access substitution --------------------------------
    def _wrap(self, expression: Expression) -> Expression:
        return DecodedContext(expression, self.context_decoders)

    def _subst_ok(self, expression: Expression, scope: Optional[str]) -> bool:
        """Whether the tree can be rebuilt with per-ref decoders."""
        if isinstance(expression, ColumnRef):
            return self._codec_of(expression, scope) is not _AMBIGUOUS
        if isinstance(expression, (Literal, ParameterRef)):
            return True
        if isinstance(expression, (And, Or)):
            return all(self._subst_ok(op, scope) for op in expression.operands)
        if isinstance(expression, (Not, IsNull, Like)):
            return self._subst_ok(expression.operand, scope)
        if isinstance(expression, (Comparison, Arithmetic)):
            return self._subst_ok(expression.left, scope) and self._subst_ok(
                expression.right, scope
            )
        if isinstance(expression, InList):
            return self._subst_ok(expression.operand, scope) and all(
                self._subst_ok(item, scope)
                for item in expression.values
                if isinstance(item, Expression)
            )
        if isinstance(expression, Between):
            return (
                self._subst_ok(expression.operand, scope)
                and self._subst_ok(expression.low, scope)
                and self._subst_ok(expression.high, scope)
            )
        return False  # unknown node type: needs the DecodedContext wrapper

    def _subst(self, expression: Expression, scope: Optional[str]) -> Expression:
        """Rebuild with every encoded ColumnRef wrapped in DecodeExpr."""
        if isinstance(expression, ColumnRef):
            codec = self._codec_of(expression, scope)
            if codec is None or codec is _AMBIGUOUS:
                return expression
            return DecodeExpr(expression, codec)
        if isinstance(expression, (Literal, ParameterRef)):
            return expression
        if isinstance(expression, And):
            return And([self._subst(op, scope) for op in expression.operands])
        if isinstance(expression, Or):
            return Or([self._subst(op, scope) for op in expression.operands])
        if isinstance(expression, Not):
            return Not(self._subst(expression.operand, scope))
        if isinstance(expression, IsNull):
            return IsNull(self._subst(expression.operand, scope), expression.negated)
        if isinstance(expression, Like):
            return Like(self._subst(expression.operand, scope), expression.pattern, expression.negated)
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op,
                self._subst(expression.left, scope),
                self._subst(expression.right, scope),
            )
        if isinstance(expression, Arithmetic):
            return Arithmetic(
                expression.op,
                self._subst(expression.left, scope),
                self._subst(expression.right, scope),
            )
        if isinstance(expression, InList):
            return InList(
                self._subst(expression.operand, scope),
                tuple(
                    self._subst(item, scope) if isinstance(item, Expression) else item
                    for item in expression.values
                ),
                expression.negated,
            )
        if isinstance(expression, Between):
            return Between(
                self._subst(expression.operand, scope),
                self._subst(expression.low, scope),
                self._subst(expression.high, scope),
            )
        raise AssertionError(f"unsubstitutable node {type(expression).__name__}")

    def _decode_subst(self, expression: Expression, scope: Optional[str]) -> Expression:
        """The always-correct fallback: decode encoded refs at access."""
        if self._subst_ok(expression, scope):
            return self._subst(expression, scope)
        return self._wrap(expression)

    # -- the public rewrite entry points ------------------------------
    def rewrite(self, expression: Expression, scope: Optional[str] = None) -> Expression:
        """Rewrite one predicate (filter or residual)."""
        if isinstance(expression, (Literal, ParameterRef)):
            return expression
        if not self.use_codes:
            # explicit object-path opt-out: decode at access everywhere
            if not isinstance(expression, _REBUILDABLE):
                return self._wrap(expression)
            return (
                self._decode_subst(expression, scope)
                if self._touches_encoded(expression, scope)
                else expression
            )
        if isinstance(expression, And):
            return And([self.rewrite(op, scope) for op in expression.operands])
        if isinstance(expression, Or):
            return Or([self.rewrite(op, scope) for op in expression.operands])
        if isinstance(expression, Not):
            return Not(self.rewrite(expression.operand, scope))
        if isinstance(expression, Comparison):
            return self._rewrite_comparison(expression, scope)
        if isinstance(expression, InList):
            return self._rewrite_in_list(expression, scope)
        if isinstance(expression, IsNull):
            return self._rewrite_is_null(expression, scope)
        if isinstance(expression, Between):
            return self._rewrite_between(expression, scope)
        if isinstance(expression, Like):
            return self._rewrite_like(expression, scope)
        if isinstance(expression, _REBUILDABLE):
            # ColumnRef / Arithmetic in predicate position, or anything
            # rebuildable without a faster form
            if self._touches_encoded(expression, scope):
                return self._decode_subst(expression, scope)
            return expression
        # unknown node types (subquery closures, ...) always get the
        # decoded view — their .columns() may understate what they read
        return self._wrap(expression)

    def rewrite_predicates(
        self, predicates: List[Expression], scope: Optional[str] = None
    ) -> List[Expression]:
        return [self.rewrite(predicate, scope) for predicate in predicates]

    def rewrite_filters(
        self, filters: Dict[str, List[Expression]]
    ) -> Dict[str, List[Expression]]:
        return {
            alias: self.rewrite_predicates(predicates, alias)
            for alias, predicates in filters.items()
        }

    def rewrite_output(self, output: OutputColumn) -> Tuple[OutputColumn, Optional[Decoder]]:
        """Rewrite one output column; returns (column, boundary decoder).

        Pass-through references to encoded columns keep flowing as codes —
        the returned decoder is applied exactly once, at the result
        boundary.  Computed outputs decode at access instead (their result
        is already a plain value).
        """
        expression = output.expression
        if isinstance(expression, ColumnRef):
            codec = self._codec_of(expression, None)
            if codec is _AMBIGUOUS:
                return OutputColumn(self._wrap(expression), output.alias), None
            if codec is None:
                return output, None
            if self.use_codes:
                return output, codec.decode
            return OutputColumn(DecodeExpr(expression, codec), output.alias), None
        if not isinstance(expression, _REBUILDABLE):
            return OutputColumn(self._wrap(expression), output.alias), None
        if not self._touches_encoded(expression, None):
            return output, None
        return OutputColumn(self._decode_subst(expression, None), output.alias), None

    def rewrite_outputs(
        self, outputs: List[OutputColumn]
    ) -> Tuple[List[OutputColumn], Dict[str, Decoder]]:
        rewritten: List[OutputColumn] = []
        decoders: Dict[str, Decoder] = {}
        for output in outputs:
            column, decoder = self.rewrite_output(output)
            rewritten.append(column)
            if decoder is not None:
                decoders[output.alias] = decoder
        return rewritten, decoders

    def rewrite_aggregate(self, aggregate: AggregateSpec) -> AggregateSpec:
        """Aggregate arguments always decode at access: MIN/MAX order on
        values, and NULL skipping keys on ``None``, not the sentinel."""
        argument = aggregate.argument
        if argument is None:
            return aggregate
        if not isinstance(argument, _REBUILDABLE):
            return AggregateSpec(aggregate.function, self._wrap(argument), aggregate.alias)
        if not self._touches_encoded(argument, None):
            return aggregate
        return AggregateSpec(
            aggregate.function, self._decode_subst(argument, None), aggregate.alias
        )

    def rewrite_aggregates(self, aggregates: List[AggregateSpec]) -> List[AggregateSpec]:
        return [self.rewrite_aggregate(aggregate) for aggregate in aggregates]

    # -- per-node fast forms ------------------------------------------
    def _rewrite_comparison(self, expression: Comparison, scope: Optional[str]) -> Expression:
        left, right = expression.left, expression.right
        op = expression.op
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return self._col_vs_literal(expression, left, right.value, op, scope)
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            return self._col_vs_literal(expression, right, left.value, _FLIP[op], scope)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return self._col_vs_col(expression, scope)
        if self._touches_encoded(expression, scope):
            return self._decode_subst(expression, scope)
        return expression

    def _col_vs_literal(
        self,
        expression: Comparison,
        ref: ColumnRef,
        literal: Any,
        op: str,
        scope: Optional[str],
    ) -> Expression:
        codec = self._codec_of(ref, scope)
        if codec is None:
            return expression
        if codec is _AMBIGUOUS:
            return self._wrap(expression)
        if codec.kind == CODE:
            if not isinstance(literal, str):
                # cross-type comparison: preserve exact legacy semantics
                return self._decode_subst(expression, scope)
            if op in _EQ_OPS:
                return Comparison(op, ref, Literal(codec.dictionary.code_for(literal)))
            if op in _NE_OPS:
                # NULL != literal must stay False: guard on the sentinel
                return And(
                    [
                        Comparison("!=", ref, Literal(NULL_CODE)),
                        Comparison(op, ref, Literal(codec.dictionary.code_for(literal))),
                    ]
                )
            # string ordering: one pass over the dictionary, O(1) per row
            compare = {
                "<": lambda v: v < literal,
                "<=": lambda v: v <= literal,
                ">": lambda v: v > literal,
                ">=": lambda v: v >= literal,
            }[op]
            table = CodeTable(codec.dictionary, compare, f"{ref!r} {op} {literal!r}")
            return DictionaryPredicate(ref, table)
        # epoch-day dates
        if not _is_plain_date(literal):
            return self._decode_subst(expression, scope)
        days = Literal(date_to_epoch_day(literal))
        if op in _EQ_OPS or op in (">", ">="):
            # the sentinel is below every valid day: NULL fails naturally
            return Comparison(op, ref, days)
        # <, <=, !=: the sentinel would pass, so guard it out
        return And(
            [
                Comparison("!=", ref, Literal(DATE_NULL_SENTINEL)),
                Comparison(op, ref, days),
            ]
        )

    def _col_vs_col(self, expression: Comparison, scope: Optional[str]) -> Expression:
        left, right = expression.left, expression.right
        left_codec = self._codec_of(left, scope)
        right_codec = self._codec_of(right, scope)
        if left_codec is None and right_codec is None:
            return expression
        if left_codec is _AMBIGUOUS or right_codec is _AMBIGUOUS:
            return self._wrap(expression)
        if left_codec is None or right_codec is None or left_codec.kind != right_codec.kind:
            # mixed encoded/raw or mixed kinds: legacy semantics via decode
            return self._decode_subst(expression, scope)
        op = expression.op
        sentinel = Literal(left_codec.null_sentinel)
        if left_codec.kind == CODE and op not in _EQ_OPS and op not in _NE_OPS:
            # string ordering across two columns: codes are not ordered
            return self._decode_subst(expression, scope)
        if op in _EQ_OPS:
            # equal non-sentinel codes imply both sides non-NULL
            return And([Comparison("!=", left, sentinel), Comparison(op, left, right)])
        return And(
            [
                Comparison("!=", left, sentinel),
                Comparison("!=", right, sentinel),
                Comparison(op, left, right),
            ]
        )

    def _rewrite_in_list(self, expression: InList, scope: Optional[str]) -> Expression:
        ref = expression.operand
        if not isinstance(ref, ColumnRef):
            if self._touches_encoded(expression, scope):
                return self._decode_subst(expression, scope)
            return expression
        codec = self._codec_of(ref, scope)
        if codec is None:
            return expression
        if codec is _AMBIGUOUS:
            return self._wrap(expression)
        if any(isinstance(item, Expression) for item in expression.values):
            # parameters inside the IN-list: decode at access
            return self._decode_subst(expression, scope)
        if codec.kind == CODE:
            # non-string items can never equal a string value: drop them
            codes = tuple(
                codec.dictionary.code_for(item)
                for item in expression.values
                if isinstance(item, str)
            )
        else:
            if any(isinstance(item, _dt.datetime) for item in expression.values):
                return self._decode_subst(expression, scope)
            codes = tuple(
                date_to_epoch_day(item)
                for item in expression.values
                if _is_plain_date(item)
            )
        membership = InList(ref, codes, expression.negated)
        if not expression.negated:
            # NULL codes are negative and never appear in ``codes``
            return membership
        # NULL NOT IN (...) must stay False: guard on the sentinel
        return And([Comparison("!=", ref, Literal(codec.null_sentinel)), membership])

    def _rewrite_is_null(self, expression: IsNull, scope: Optional[str]) -> Expression:
        ref = expression.operand
        if isinstance(ref, ColumnRef):
            codec = self._codec_of(ref, scope)
            if codec is None:
                return expression
            if codec is _AMBIGUOUS:
                return self._wrap(expression)
            sentinel = Literal(codec.null_sentinel)
            if expression.negated:
                # real NULLs carry the sentinel; padded rows carry None
                return And([Comparison("!=", ref, sentinel), IsNull(ref, negated=True)])
            return Or([Comparison("=", ref, sentinel), IsNull(ref)])
        if self._touches_encoded(expression, scope):
            return self._decode_subst(expression, scope)
        return expression

    def _rewrite_between(self, expression: Between, scope: Optional[str]) -> Expression:
        ref = expression.operand
        low, high = expression.low, expression.high
        if (
            not isinstance(ref, ColumnRef)
            or not isinstance(low, Literal)
            or not isinstance(high, Literal)
        ):
            if self._touches_encoded(expression, scope):
                return self._decode_subst(expression, scope)
            return expression
        codec = self._codec_of(ref, scope)
        if codec is None:
            return expression
        if codec is _AMBIGUOUS:
            return self._wrap(expression)
        if codec.kind == CODE:
            if not isinstance(low.value, str) or not isinstance(high.value, str):
                return self._decode_subst(expression, scope)
            low_value, high_value = low.value, high.value
            table = CodeTable(
                codec.dictionary,
                lambda v: low_value <= v <= high_value,
                f"{ref!r} BETWEEN {low_value!r} AND {high_value!r}",
            )
            return DictionaryPredicate(ref, table)
        if not _is_plain_date(low.value) or not _is_plain_date(high.value):
            return self._decode_subst(expression, scope)
        # the sentinel is below every valid range: NULL fails naturally
        return Between(
            ref,
            Literal(date_to_epoch_day(low.value)),
            Literal(date_to_epoch_day(high.value)),
        )

    def _rewrite_like(self, expression: Like, scope: Optional[str]) -> Expression:
        ref = expression.operand
        if not isinstance(ref, ColumnRef):
            if self._touches_encoded(expression, scope):
                return self._decode_subst(expression, scope)
            return expression
        codec = self._codec_of(ref, scope)
        if codec is None:
            return expression
        if codec is _AMBIGUOUS:
            return self._wrap(expression)
        if codec.kind != CODE:
            # LIKE over a date column stringifies the value: decode path
            return self._decode_subst(expression, scope)
        regex = like_regex(expression.pattern)
        negated = expression.negated
        if negated:
            predicate = lambda v: regex.fullmatch(v) is None  # noqa: E731
        else:
            predicate = lambda v: regex.fullmatch(v) is not None  # noqa: E731
        table = CodeTable(
            codec.dictionary,
            predicate,
            f"{ref!r} {'NOT ' if negated else ''}LIKE {expression.pattern!r}",
        )
        return DictionaryPredicate(ref, table)


# ----------------------------------------------------------------------
# boundary decoding
# ----------------------------------------------------------------------
def decode_output_rows(
    rows: List[Dict[str, Any]], decoders: Dict[str, Decoder]
) -> List[Dict[str, Any]]:
    """Decode pass-through encoded columns in result rows, in place.

    The single decode at the public boundary: every row dict produced by
    the fragment paths (dict, slotted, vectorized) funnels through here
    before it reaches :class:`~repro.core.executor.QueryResult`.
    """
    if not decoders:
        return rows
    items = list(decoders.items())
    for row in rows:
        for name, decode in items:
            if name in row:
                row[name] = decode(row[name])
    return rows


__all__ = [
    "CodeTable",
    "DecodeExpr",
    "DecodedContext",
    "Decoder",
    "DictionaryPredicate",
    "FragmentRewriter",
    "decode_output_rows",
]
