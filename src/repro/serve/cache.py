"""The server-side result-set cache.

Identical read requests are endemic in serving workloads (dashboards,
retries, fan-out of one hot query), so the server memoizes *encoded
result payloads* — the exact JSON body a response carries — keyed by
everything that determines the answer:

    (tenant, engine, sql text, canonical parameter binding, catalog version)

The catalog version inside the key is the invalidation mechanism: any
write (``load_rows`` / ``note_data_change``) bumps the version, so every
key minted before the write can never be looked up again — stale entries
are unreachable by construction and age out of the LRU.  Writes also call
:meth:`ResultCache.invalidate_tenant` to reclaim the dead entries eagerly
instead of letting them squat in the LRU until capacity pushes them out.

Entries store the payload produced by
:func:`repro.core.wire.encode_result_payload`; serving a hit is a
dictionary copy, never a re-execution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..core.wire import canonical_params_key

CacheKey = Tuple[str, str, str, str, int]


class ResultCacheStats:
    """Counters surfaced by the server's ``stats`` endpoint."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    def as_dict(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
        }


class ResultCache:
    """A bounded LRU of encoded result payloads, safe across threads.

    The server touches it from worker threads (stores) and the event loop
    (lookups), so all bookkeeping is lock-protected like the plan cache's.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = ResultCacheStats()

    @staticmethod
    def make_key(
        tenant: str, engine: str, sql: str, params: Any, catalog_version: int
    ) -> CacheKey:
        return (tenant, engine, sql, canonical_params_key(params), catalog_version)

    def lookup(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return payload

    def store(self, key: CacheKey, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_tenant(self, tenant: str) -> int:
        """Eagerly drop every entry of one tenant (after a write)."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == tenant]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
