"""A depth-based circuit breaker: shed writes first, then everything.

Admission control already bounds the queue and answers ``queue_full``
when it overflows, but by then every queued request is paying worst-case
latency and writers are competing with readers for a saturated pool.  The
breaker watches queue depth *before* overflow and degrades gracefully in
two steps:

* ``shed_writes`` — at ``shed_ratio`` of the maximum depth (default 75%)
  the server starts rejecting *writes* (``load_rows``, ``materialize``,
  ``drop_view``-class ops) with the retryable ``overloaded`` code while
  still serving reads: writes hold the exclusive writer lock and stall
  every reader behind them, so they are the first load to shed, and the
  idempotent-retry contract makes a rejected write safe to replay later.
* ``open`` — every pool-bound request gets ``overloaded`` while depth
  stays above the recovery threshold.  Hard overflow itself still
  answers ``queue_full``: the breaker's job is shedding *before* the
  queue overflows and holding there while it drains, not replacing the
  queue's own overflow signal.

Transitions carry hysteresis: the breaker only closes again once depth
falls below ``recover_ratio`` (default half the trip point), so a queue
oscillating around the threshold doesn't flap requests between accept
and reject on every tick.  ``ping``/``stats``/``health`` stay inline and
are never shed — observability must survive overload.
"""

from __future__ import annotations

from typing import Any, Dict

#: breaker states, in order of degradation
CLOSED = "closed"
SHED_WRITES = "shed_writes"
OPEN = "open"


class CircuitBreaker:
    """Tracks queue-depth pressure and answers "may this request run?"."""

    def __init__(
        self,
        max_depth: int,
        shed_ratio: float = 0.75,
        recover_ratio: float = 0.5,
    ) -> None:
        if not 0.0 < shed_ratio <= 1.0:
            raise ValueError(f"shed_ratio must be in (0, 1], got {shed_ratio}")
        if not 0.0 <= recover_ratio < shed_ratio:
            raise ValueError(
                f"recover_ratio must be in [0, shed_ratio), got {recover_ratio}"
            )
        self.max_depth = max(int(max_depth), 1)
        self.shed_depth = max(1, int(self.max_depth * shed_ratio))
        self.open_depth = self.max_depth
        self.recover_depth = int(self.max_depth * recover_ratio)
        self.state = CLOSED
        self.transitions = 0
        self.shed_requests = 0

    def observe(self, depth: int) -> str:
        """Fold the current queue depth into the state machine."""
        previous = self.state
        if depth >= self.open_depth:
            self.state = OPEN
        elif depth >= self.shed_depth:
            # escalate to shed_writes, but never *de*-escalate from OPEN
            # until the recover threshold (hysteresis) is crossed
            if self.state != OPEN:
                self.state = SHED_WRITES
        elif depth <= self.recover_depth:
            self.state = CLOSED
        # depths between recover and shed keep the previous state
        if self.state != previous:
            self.transitions += 1
        return self.state

    def allows(self, is_write: bool) -> bool:
        """Whether a request of this kind may enter the queue right now."""
        if self.state == OPEN:
            return False
        if self.state == SHED_WRITES and is_write:
            return False
        return True

    def note_shed(self) -> None:
        self.shed_requests += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "shed_depth": self.shed_depth,
            "open_depth": self.open_depth,
            "recover_depth": self.recover_depth,
            "transitions": self.transitions,
            "shed_requests": self.shed_requests,
        }


__all__ = ["CLOSED", "OPEN", "SHED_WRITES", "CircuitBreaker"]
