"""repro.serve — the asyncio query-serving layer.

Everything the in-process :class:`repro.api.Database` facade cannot do
for "millions of users" lives here:

* :mod:`repro.serve.server` — :class:`QueryServer`: a JSON-line TCP
  server fronting per-tenant databases with a bounded admission queue,
  a sized worker pool, per-request deadlines, a result-set cache and
  warm-started plan caches.
* :mod:`repro.serve.protocol` — the wire format and the response-frame
  schema contract.
* :mod:`repro.serve.client` — ``await connect(host, port)`` and a
  pipelining :class:`ServeClient` with remote prepared statements.
* :mod:`repro.serve.driver` — a seeded closed-loop workload driver that
  hammers a live server with mixed SELECT / parameterized / write
  traffic at a target QPS and writes the ``BENCH_serving.json``
  artifact (p50/p99 latency, sustained QPS, timeout/rejection counts,
  cold-vs-warm compile assertion).
"""

from .breaker import CircuitBreaker
from .cache import ResultCache
from .client import RemoteStatement, RetryPolicy, ServeClient, ServerError, connect
from .protocol import (
    ERROR_CODES,
    OPERATIONS,
    RETRYABLE_CODES,
    ProtocolError,
    validate_response_frame,
)
from .server import QueryServer, ServerConfig, ServerStats

__all__ = [
    "ERROR_CODES",
    "OPERATIONS",
    "ProtocolError",
    "QueryServer",
    "RemoteStatement",
    "ResultCache",
    "CircuitBreaker",
    "RETRYABLE_CODES",
    "RetryPolicy",
    "ServeClient",
    "ServerConfig",
    "ServerError",
    "ServerStats",
    "connect",
    "validate_response_frame",
]
