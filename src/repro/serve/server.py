"""The asyncio query server: per-tenant databases behind admission control.

:class:`QueryServer` turns the in-process :class:`repro.api.Database`
facade into a network service without giving up any of its guarantees:

* **per-tenant isolation** — each tenant name maps to its own
  ``Database`` (own catalog, statistics, plan cache); a request names its
  tenant and can never touch another's state.
* **admission control** — every query-shaped request passes through one
  bounded queue feeding a sized worker pool (the ``execute_many`` sizing
  model: a fixed ThreadPoolExecutor, one asyncio worker per thread).
  When the queue is full the server answers with a ``queue_full`` error
  frame immediately — clients get backpressure, never dropped
  connections.
* **deadlines** — each request carries (or inherits) a timeout covering
  queue wait *plus* execution.  Deadlines expiring in the queue cost
  nothing; deadlines expiring mid-execution abandon the worker future and
  answer ``deadline_exceeded`` (the abandoned thread finishes in the
  background and is counted, the dbgym-style timeout ledger).
* **result-set caching** — identical reads are answered from
  :class:`~repro.serve.cache.ResultCache` without touching the pool; any
  write invalidates via the catalog version baked into every key.
* **warm starts** — at :meth:`start`, tenants with a configured
  ``plan_cache_path`` replay their persisted statement manifest through
  :meth:`~repro.api.Database.warm_plan_cache`, so the serving window
  begins with every known plan compiled; compile counters are snapshotted
  right after warming, which is what makes "zero compilations while
  serving" an assertable property.

The wire format is the JSON-line protocol of
:mod:`repro.serve.protocol`; :mod:`repro.serve.client` is the matching
client library.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Mapping, Optional, Tuple, Union

from ..api import Database
from ..api.registry import EngineError, list_engines, resolve_engine_name
from ..core.cancellation import CancellationToken, QueryCancelled, cancel_scope
from ..core.wire import WireFormatError, decode_params, decode_row
from ..durability.failpoints import maybe_fire
from ..incremental.locks import LockTimeout
from .breaker import CircuitBreaker
from .cache import ResultCache
from .protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
    validate_request_frame,
)

#: operations answered on the event loop without queueing: liveness and
#: observability must stay responsive even when the pool is saturated
INLINE_OPS = ("ping", "stats", "health")

#: operations the circuit breaker sheds first (they take the writer lock)
WRITE_OPS = ("load_rows", "delete_rows", "update_rows", "materialize")


@dataclass
class ServerConfig:
    """Admission-control and lifecycle knobs of a :class:`QueryServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read QueryServer.port after start()
    #: bounded admission queue depth; full queue => queue_full error frames
    max_queue_depth: int = 64
    #: worker threads executing queries (and asyncio workers feeding them)
    pool_size: int = 4
    #: deadline applied when a request does not carry timeout_ms
    default_timeout_seconds: float = 10.0
    #: hard ceiling a request's own timeout_ms cannot exceed
    max_timeout_seconds: float = 60.0
    #: result-set cache capacity (encoded payloads); 0 disables the cache
    result_cache_entries: int = 256
    #: replay persisted plan manifests at start()
    warm_start: bool = True
    #: close tenant databases on stop() (flushes their plan manifests)
    close_databases_on_stop: bool = True
    #: circuit breaker: shed writes at this fraction of max_queue_depth
    breaker_shed_ratio: float = 0.75
    #: circuit breaker: close again below this fraction (hysteresis)
    breaker_recover_ratio: float = 0.5


@dataclass
class ServerStats:
    """Serving counters (wire-level; per-query detail lives in results)."""

    accepted: int = 0
    completed: int = 0
    rejected_queue_full: int = 0
    timeouts_queued: int = 0
    timeouts_running: int = 0
    errors: int = 0
    cache_hits: int = 0
    inline_requests: int = 0
    protocol_errors: int = 0
    abandoned_workers: int = 0
    #: gauge: deadline-exceeded requests whose worker thread is *still*
    #: running right now; with cooperative cancellation this returns to
    #: zero within one superstep/batch (asserted in tests)
    abandoned_running: int = 0
    #: abandoned workers whose thread has since finished and rejoined the
    #: pool (cancellation made it stop early instead of running to completion)
    workers_reclaimed: int = 0
    #: requests shed by the circuit breaker with the retryable `overloaded`
    rejected_overloaded: int = 0
    #: writes deduplicated via the idempotent request_id table
    deduplicated_writes: int = 0

    @property
    def timeouts(self) -> int:
        return self.timeouts_queued + self.timeouts_running

    def as_dict(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected_queue_full": self.rejected_queue_full,
            "timeouts": self.timeouts,
            "timeouts_queued": self.timeouts_queued,
            "timeouts_running": self.timeouts_running,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "inline_requests": self.inline_requests,
            "protocol_errors": self.protocol_errors,
            "abandoned_workers": self.abandoned_workers,
            "abandoned_running": self.abandoned_running,
            "workers_reclaimed": self.workers_reclaimed,
            "rejected_overloaded": self.rejected_overloaded,
            "deduplicated_writes": self.deduplicated_writes,
        }


class _CachedResponse(Exception):
    """Control-flow signal: the request was answered from the result cache."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        super().__init__("result-cache hit")
        self.payload = payload


@dataclass
class _Admitted:
    """One queued unit of work: the closure plus its response plumbing."""

    request_id: Any
    work: Callable[[], Dict[str, Any]]
    respond: Callable[[Dict[str, Any]], Awaitable[None]]
    deadline: float
    #: result-cache key to fill on success (None = uncacheable/no-cache)
    cache_key: Optional[Tuple[str, str, str, str, int]] = None
    #: names the payload field carrying an encoded result, for cache fills
    cache_field: str = "result_set"
    #: sheds first under breaker pressure (takes the writer lock)
    is_write: bool = False


@dataclass
class _PreparedEntry:
    """A server-side prepared statement (scoped to one connection)."""

    statement_id: str
    tenant: str
    engine: str
    sql: str
    prepared: Any  # repro.api.PreparedStatement
    parameter_names: Tuple[str, ...] = ()


class QueryServer:
    """Serve one or more :class:`~repro.api.Database` tenants over TCP.

    ``databases`` is either a single Database (served as tenant
    ``"default"``) or a mapping of tenant name to Database.  Typical use::

        server = QueryServer({"default": db}, ServerConfig(port=0))
        await server.start()
        ...                       # clients connect to server.host:server.port
        await server.stop()
    """

    def __init__(
        self,
        databases: Union[Database, Mapping[str, Database]],
        config: Optional[ServerConfig] = None,
    ) -> None:
        if isinstance(databases, Database):
            databases = {"default": databases}
        if not databases:
            raise ValueError("a QueryServer needs at least one tenant database")
        self.databases: Dict[str, Database] = dict(databases)
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.result_cache: Optional[ResultCache] = (
            ResultCache(self.config.result_cache_entries)
            if self.config.result_cache_entries > 0
            else None
        )
        self.warm_reports: Dict[str, Dict[str, Any]] = {}
        self.breaker = CircuitBreaker(
            self.config.max_queue_depth,
            shed_ratio=self.config.breaker_shed_ratio,
            recover_ratio=self.config.breaker_recover_ratio,
        )
        self._compile_baseline: Dict[str, int] = {}
        self._queue: Optional["asyncio.Queue[_Admitted]"] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: list = []
        self._connections: set = set()
        self._statement_ids = itertools.count(1)
        self._started = False
        self._closing = False
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        if self._started:
            raise RuntimeError("server already started")
        if self.config.warm_start:
            for tenant, database in self.databases.items():
                if database.plan_cache_path is not None:
                    self.warm_reports[tenant] = database.warm_plan_cache()
        # the serving-window compile baseline: everything stored before
        # this point (including warming itself) does not count as a
        # serving-time compilation
        self._compile_baseline = {
            tenant: database.plan_cache.stats.stores
            for tenant, database in self.databases.items()
        }
        self._queue = asyncio.Queue(maxsize=self.config.max_queue_depth)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.pool_size, thread_name_prefix="repro-serve"
        )
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(self.config.pool_size)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._started = True
        return self

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 after start())."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening, cancel in-flight work, flush tenant manifests."""
        if not self._started or self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, *self._connections, return_exceptions=True)
        self._workers = []
        self._connections.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.config.close_databases_on_stop:
            for database in self.databases.values():
                database.close()

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def plan_compilations(self) -> Dict[str, int]:
        """Per-tenant plan compilations since serving started.

        The warm-start acceptance metric: a warm-started server stays at
        zero for every query shape its manifest covered.
        """
        return {
            tenant: database.plan_cache.stats.stores
            - self._compile_baseline.get(tenant, 0)
            for tenant, database in self.databases.items()
        }

    def stats_payload(self) -> Dict[str, Any]:
        compile_counts = self.plan_compilations()
        payload: Dict[str, Any] = {
            "server": {
                **self.stats.as_dict(),
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "max_queue_depth": self.config.max_queue_depth,
                "pool_size": self.config.pool_size,
                "plan_compilations_since_start": sum(compile_counts.values()),
            },
            "result_cache": (
                self.result_cache.stats.as_dict()
                if self.result_cache is not None
                else None
            ),
            "warm_start": self.warm_reports,
            "tenants": {
                tenant: {
                    "catalog": database.catalog.name,
                    "catalog_version": database.catalog.version,
                    "plan_compilations_since_start": compile_counts[tenant],
                    "plan_cache": database.cache_stats(),
                    "maintenance": database.maintenance.as_dict(),
                }
                for tenant, database in self.databases.items()
            },
        }
        return payload

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        write_lock = asyncio.Lock()
        statements: Dict[str, _PreparedEntry] = {}
        pending: set = set()

        async def respond(frame: Dict[str, Any]) -> None:
            async with write_lock:
                if writer.is_closing():
                    return
                writer.write(encode_frame(frame))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    frame = decode_frame(line)
                    request_id, op = validate_request_frame(frame)
                except ProtocolError as exc:
                    with self._stats_lock:
                        self.stats.protocol_errors += 1
                    await respond(error_frame(None, exc.code, exc.message))
                    continue
                if self._closing:
                    await respond(
                        error_frame(request_id, "server_closed", "server is stopping")
                    )
                    continue
                if op in INLINE_OPS:
                    with self._stats_lock:
                        self.stats.inline_requests += 1
                    await respond(self._handle_inline(request_id, op))
                    continue
                admit_task = asyncio.create_task(
                    self._admit(frame, request_id, op, statements, respond)
                )
                pending.add(admit_task)
                admit_task.add_done_callback(pending.discard)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for admit_task in list(pending):
                admit_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                # stop() may cancel this task while the transport drains;
                # the transport is already closing, so swallow and finish.
                pass
            if task is not None:
                self._connections.discard(task)

    def _handle_inline(self, request_id: Any, op: str) -> Dict[str, Any]:
        if op == "ping":
            return ok_frame(request_id, {"pong": True})
        if op == "health":
            return ok_frame(request_id, self.health_payload())
        return ok_frame(request_id, self.stats_payload())

    def health_payload(self) -> Dict[str, Any]:
        """The `health` op: load, durability lag and breaker state at a glance.

        Unlike `stats` (complete counters), `health` is the small payload a
        load balancer or retry loop polls: current queue depth, breaker
        state, the abandoned-worker gauge, and per-tenant WAL lag (records
        not yet covered by a snapshot; None for memory-only tenants).
        """
        depth = self._queue.qsize() if self._queue else 0
        with self._stats_lock:
            abandoned_running = self.stats.abandoned_running
        durability = {}
        for tenant, database in self.databases.items():
            stats = database.durability_stats()
            durability[tenant] = (
                None
                if stats is None
                else {
                    "wal_lsn": stats["wal_lsn"],
                    "wal_lag_records": stats["wal_lag_records"],
                    "wal_size_bytes": stats["wal_size_bytes"],
                    "snapshot_lsn": stats["snapshot_lsn"],
                }
            )
        return {
            "healthy": not self._closing,
            "queue_depth": depth,
            "max_queue_depth": self.config.max_queue_depth,
            "pool_size": self.config.pool_size,
            "abandoned_running": abandoned_running,
            "breaker": self.breaker.as_dict(),
            "durability": durability,
        }

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _resolve_tenant(self, frame: Dict[str, Any]) -> Tuple[str, Database]:
        tenant = frame.get("tenant") or "default"
        database = self.databases.get(tenant)
        if database is None:
            raise ProtocolError(
                "unknown_tenant",
                f"unknown tenant {tenant!r}; served: {', '.join(sorted(self.databases))}",
            )
        return tenant, database

    def _resolve_engine(self, frame: Dict[str, Any], database: Database) -> str:
        name = frame.get("engine") or database.default_engine
        try:
            return resolve_engine_name(name)
        except EngineError as exc:
            raise ProtocolError("unknown_engine", str(exc)) from exc

    def _request_timeout(self, frame: Dict[str, Any]) -> float:
        timeout_ms = frame.get("timeout_ms")
        if timeout_ms is None:
            return self.config.default_timeout_seconds
        return min(float(timeout_ms) / 1000.0, self.config.max_timeout_seconds)

    async def _admit(
        self,
        frame: Dict[str, Any],
        request_id: Any,
        op: str,
        statements: Dict[str, _PreparedEntry],
        respond: Callable[[Dict[str, Any]], Awaitable[None]],
    ) -> None:
        """Validate, check the breaker, try the result cache, then enqueue."""
        assert self._queue is not None
        # the circuit breaker gates BEFORE any work: under pressure it
        # sheds writes first (they take the exclusive writer lock), then
        # everything pool-bound — both with the retryable `overloaded`.
        # Hard overflow stays `queue_full` (the put_nowait path below):
        # the breaker's job is shedding *before* the queue overflows and
        # holding there (hysteresis) while it drains.
        state = self.breaker.observe(self._queue.qsize())
        if not self._queue.full() and not self.breaker.allows(op in WRITE_OPS):
            self.breaker.note_shed()
            with self._stats_lock:
                self.stats.rejected_overloaded += 1
            await respond(
                error_frame(
                    request_id,
                    "overloaded",
                    f"circuit breaker is {state}; retry with backoff",
                    breaker_state=state,
                )
            )
            return
        try:
            admitted = self._build_request(frame, request_id, op, statements, respond)
        except _CachedResponse as hit:
            with self._stats_lock:
                self.stats.cache_hits += 1
                self.stats.completed += 1
            await respond(ok_frame(request_id, hit.payload))
            return
        except ProtocolError as exc:
            with self._stats_lock:
                self.stats.errors += 1
            await respond(error_frame(request_id, exc.code, exc.message))
            return
        try:
            self._queue.put_nowait(admitted)
            with self._stats_lock:
                self.stats.accepted += 1
        except asyncio.QueueFull:
            with self._stats_lock:
                self.stats.rejected_queue_full += 1
            await respond(
                error_frame(
                    request_id,
                    "queue_full",
                    f"admission queue is full ({self.config.max_queue_depth} waiting); "
                    "retry with backoff",
                    queue_depth=self.config.max_queue_depth,
                )
            )

    def _build_request(
        self,
        frame: Dict[str, Any],
        request_id: Any,
        op: str,
        statements: Dict[str, _PreparedEntry],
        respond: Callable[[Dict[str, Any]], Awaitable[None]],
    ) -> Optional[_Admitted]:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._request_timeout(frame)
        tenant, database = self._resolve_tenant(frame)
        use_cache = bool(frame.get("use_cache", True)) and self.result_cache is not None

        if op == "list_engines":
            def work_engines() -> Dict[str, Any]:
                return {
                    "engines": list_engines(),
                    "default": database.default_engine,
                    "tenants": sorted(self.databases),
                }

            return _Admitted(request_id, work_engines, respond, deadline)

        if op == "materialize":
            sql = frame.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                raise ProtocolError("invalid_request", "materialize needs non-empty 'sql'")
            view_name = frame.get("view")
            if view_name is not None and not isinstance(view_name, str):
                raise ProtocolError("invalid_request", "'view' must be a string")

            def work_materialize() -> Dict[str, Any]:
                from ..incremental.views import ViewError

                try:
                    info = database.materialize(sql, name=view_name)
                except ViewError as exc:
                    raise ProtocolError("invalid_request", str(exc)) from exc
                return {"view": info, "tenant": tenant}

            return _Admitted(
                request_id, work_materialize, respond, deadline, is_write=True
            )

        if op == "query_view":
            view_name = frame.get("view")
            if not isinstance(view_name, str) or not view_name:
                raise ProtocolError("invalid_request", "query_view needs a string 'view'")
            view_key: Optional[Tuple[str, str, str, str, int]] = None
            if use_cache:
                # views are engine-independent: key on a reserved engine slot
                view_key = ResultCache.make_key(
                    tenant, "__view__", view_name, None, database.catalog.version
                )
                cached = self.result_cache.lookup(view_key)
                if cached is not None:
                    raise _CachedResponse(
                        {"result_set": cached, "view": view_name, "cached": True}
                    )

            def work_view() -> Dict[str, Any]:
                from ..incremental.views import ViewError

                try:
                    result = database.query_view(view_name)
                except ViewError as exc:
                    raise ProtocolError("invalid_request", str(exc)) from exc
                return {"result_set": result.to_json(), "view": view_name, "cached": False}

            return _Admitted(request_id, work_view, respond, deadline, cache_key=view_key)

        engine = self._resolve_engine(frame, database)

        if op == "load_rows":
            relation = frame.get("relation")
            rows = frame.get("rows")
            if not isinstance(relation, str):
                raise ProtocolError("invalid_request", "load_rows needs a string 'relation'")
            if not isinstance(rows, list) or not all(isinstance(r, list) for r in rows):
                raise ProtocolError("invalid_request", "load_rows needs 'rows' as a list of arrays")
            if relation not in database.catalog:
                raise ProtocolError(
                    "invalid_request", f"tenant {tenant!r} has no relation {relation!r}"
                )

            write_id = frame.get("request_id")

            def work_write() -> Dict[str, Any]:
                decoded = [decode_row(row) for row in rows]
                receipt = database.apply_write(relation, decoded, request_id=write_id)
                if receipt["deduplicated"]:
                    with self._stats_lock:
                        self.stats.deduplicated_writes += 1
                elif receipt["appended"] and self.result_cache is not None:
                    self.result_cache.invalidate_tenant(tenant)
                return {
                    **receipt,
                    "relation": relation,
                    "catalog_version": database.catalog.version,
                }

            return _Admitted(request_id, work_write, respond, deadline, is_write=True)

        if op in ("delete_rows", "update_rows"):
            relation = frame.get("relation")
            rows = frame.get("rows")
            if not isinstance(relation, str):
                raise ProtocolError("invalid_request", f"{op} needs a string 'relation'")
            if not isinstance(rows, list) or not all(isinstance(r, list) for r in rows):
                raise ProtocolError(
                    "invalid_request", f"{op} needs 'rows' as a list of arrays"
                )
            if relation not in database.catalog:
                raise ProtocolError(
                    "invalid_request", f"tenant {tenant!r} has no relation {relation!r}"
                )
            updates = frame.get("updates")
            if op == "update_rows" and (
                not isinstance(updates, list)
                or not all(isinstance(r, list) for r in updates)
            ):
                raise ProtocolError(
                    "invalid_request", "update_rows needs 'updates' as a list of arrays"
                )

            write_id = frame.get("request_id")

            def work_mutate(_op: str = op, _updates: Any = updates) -> Dict[str, Any]:
                victims = [decode_row(row) for row in rows]
                if _op == "delete_rows":
                    receipt = database.apply_delete(
                        relation, victims, request_id=write_id
                    )
                    applied = receipt["deleted"]
                else:
                    replacements = [decode_row(row) for row in _updates]
                    receipt = database.apply_update(
                        relation, victims, replacements, request_id=write_id
                    )
                    applied = receipt["deleted"] + receipt["inserted"]
                if receipt["deduplicated"]:
                    with self._stats_lock:
                        self.stats.deduplicated_writes += 1
                elif applied and self.result_cache is not None:
                    self.result_cache.invalidate_tenant(tenant)
                return {
                    **receipt,
                    "relation": relation,
                    "catalog_version": database.catalog.version,
                }

            return _Admitted(request_id, work_mutate, respond, deadline, is_write=True)

        if op == "prepare":
            sql = frame.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                raise ProtocolError("invalid_request", "prepare needs non-empty 'sql'")
            statement_id = f"s{next(self._statement_ids)}"

            def work_prepare() -> Dict[str, Any]:
                prepared = database.connect(engine=engine).prepare(sql)
                statements[statement_id] = _PreparedEntry(
                    statement_id=statement_id,
                    tenant=tenant,
                    engine=engine,
                    sql=sql,
                    prepared=prepared,
                    parameter_names=tuple(prepared.parameter_names),
                )
                return {
                    "statement": statement_id,
                    "engine": engine,
                    "parameters": list(prepared.parameter_names),
                    "parameter_types": dict(prepared.parameter_types),
                }

            return _Admitted(request_id, work_prepare, respond, deadline)

        if op == "explain":
            sql = frame.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                raise ProtocolError("invalid_request", "explain needs non-empty 'sql'")
            params = decode_params(frame.get("params"))
            analyze = bool(frame.get("analyze", False))

            def work_explain() -> Dict[str, Any]:
                plan = database.connect(engine=engine).explain(
                    sql, params=params, analyze=analyze
                )
                return {"plan": plan, "engine": engine}

            return _Admitted(request_id, work_explain, respond, deadline)

        # execute / execute_prepared: the read path, result-cache aware
        if op == "execute":
            sql = frame.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                raise ProtocolError("invalid_request", "execute needs non-empty 'sql'")

            def runner(params: Any, _sql: str = sql) -> Any:
                return database.connect(engine=engine).execute(_sql, params=params)

        else:  # execute_prepared
            statement_id = frame.get("statement")
            entry = statements.get(statement_id) if isinstance(statement_id, str) else None
            if entry is None:
                raise ProtocolError(
                    "unknown_statement",
                    f"unknown statement {statement_id!r} on this connection",
                )
            if entry.tenant != tenant:
                raise ProtocolError(
                    "invalid_request",
                    f"statement {statement_id!r} belongs to tenant {entry.tenant!r}",
                )
            sql = entry.sql
            engine = entry.engine

            def runner(params: Any, _entry: _PreparedEntry = entry) -> Any:
                return _entry.prepared.execute(params)

        try:
            params = decode_params(frame.get("params"))
        except WireFormatError as exc:
            raise ProtocolError("invalid_request", str(exc)) from exc

        cache_key: Optional[Tuple[str, str, str, str, int]] = None
        if use_cache:
            cache_key = ResultCache.make_key(
                tenant, engine, sql, params, database.catalog.version
            )
            cached = self.result_cache.lookup(cache_key)
            if cached is not None:
                raise _CachedResponse(
                    {"result_set": cached, "engine": engine, "cached": True}
                )

        def work_execute() -> Dict[str, Any]:
            result = runner(params)
            return {
                "result_set": result.to_json(),
                "engine": engine,
                "cached": False,
            }

        return _Admitted(
            request_id, work_execute, respond, deadline, cache_key=cache_key
        )

    # ------------------------------------------------------------------
    # the worker pool
    # ------------------------------------------------------------------
    def _reclaim_abandoned(self, future: Any) -> None:
        """Done-callback for an abandoned worker future.

        Cooperative cancellation means the thread notices its cancelled
        token at the next superstep/batch boundary and unwinds; this
        callback fires then, consumes the (expected) exception so it never
        logs as unretrieved, and returns the ``abandoned_running`` gauge
        toward zero — the property the leak-regression test asserts.
        """
        if not future.cancelled():
            future.exception()
        with self._stats_lock:
            self.stats.abandoned_running -= 1
            self.stats.workers_reclaimed += 1

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        assert self._pool is not None
        loop = asyncio.get_running_loop()
        while True:
            request = await self._queue.get()
            try:
                maybe_fire("serve.dispatch")
                remaining = request.deadline - loop.time()
                if remaining <= 0:
                    with self._stats_lock:
                        self.stats.timeouts_queued += 1
                    await request.respond(
                        error_frame(
                            request.request_id,
                            "deadline_exceeded",
                            "deadline expired while queued",
                            where="queue",
                        )
                    )
                    continue
                # the token is the cooperative kill switch: it expires on
                # its own at the deadline (engines poll it at superstep /
                # batch boundaries) and is cancelled explicitly the moment
                # the event loop gives up waiting
                token = CancellationToken.with_timeout(
                    remaining, reason="deadline exceeded"
                )
                work = request.work

                def run_with_token(
                    _work: Callable[[], Dict[str, Any]] = work,
                    _token: CancellationToken = token,
                ) -> Dict[str, Any]:
                    with cancel_scope(_token):
                        return _work()

                future = self._pool.submit(run_with_token)
                try:
                    # shield: a wait_for timeout must abandon the thread,
                    # not cancel the wrapper and lose its eventual result
                    payload = await asyncio.wait_for(
                        asyncio.shield(asyncio.wrap_future(future)), remaining
                    )
                except QueryCancelled:
                    # the thread noticed its expired token before the event
                    # loop timed out: same outcome, nothing abandoned
                    with self._stats_lock:
                        self.stats.timeouts_running += 1
                    await request.respond(
                        error_frame(
                            request.request_id,
                            "deadline_exceeded",
                            "deadline expired during execution (cancelled)",
                            where="execute",
                        )
                    )
                    continue
                except LockTimeout as exc:
                    # a writer stuck behind a reader storm: the write was
                    # never applied, so the client may safely retry
                    with self._stats_lock:
                        self.stats.errors += 1
                    await request.respond(
                        error_frame(
                            request.request_id,
                            "overloaded",
                            str(exc),
                            waited_seconds=exc.waited_seconds,
                        )
                    )
                    continue
                except asyncio.TimeoutError:
                    # the thread cannot be interrupted pre-emptively: cancel
                    # its token, count it as abandoned-and-running, and let
                    # the done-callback reclaim it when cancellation lands
                    token.cancel("deadline exceeded")
                    with self._stats_lock:
                        self.stats.timeouts_running += 1
                        self.stats.abandoned_workers += 1
                        self.stats.abandoned_running += 1
                    future.add_done_callback(self._reclaim_abandoned)
                    await request.respond(
                        error_frame(
                            request.request_id,
                            "deadline_exceeded",
                            "deadline expired during execution",
                            where="execute",
                        )
                    )
                    continue
                except ProtocolError as exc:
                    with self._stats_lock:
                        self.stats.errors += 1
                    await request.respond(
                        error_frame(request.request_id, exc.code, exc.message)
                    )
                    continue
                except Exception as exc:  # noqa: BLE001 — boundary: errors become frames
                    with self._stats_lock:
                        self.stats.errors += 1
                    await request.respond(
                        error_frame(
                            request.request_id,
                            "execution_error",
                            f"{type(exc).__name__}: {exc}",
                            exception=type(exc).__name__,
                        )
                    )
                    continue
                if request.cache_key is not None and self.result_cache is not None:
                    encoded = payload.get(request.cache_field)
                    if encoded is not None:
                        self.result_cache.store(request.cache_key, encoded)
                with self._stats_lock:
                    self.stats.completed += 1
                await request.respond(ok_frame(request.request_id, payload))
            except asyncio.CancelledError:
                raise
            except (ConnectionResetError, BrokenPipeError):
                continue  # client went away; nothing to answer
            finally:
                self._queue.task_done()


# ----------------------------------------------------------------------
# standalone entry point: serve the mini TPC-H workload
# ----------------------------------------------------------------------
def main(argv: Optional[list] = None) -> int:
    """``python -m repro.serve.server`` — a TPC-H tenant on localhost."""
    import argparse

    from ..workloads import tpch_workload

    parser = argparse.ArgumentParser(description="repro JSON-line query server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7433)
    parser.add_argument("--scale", type=float, default=0.05, help="TPC-H mini scale factor")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--engine", default="tag")
    parser.add_argument("--pool-size", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--plan-cache-path", default=None,
                        help="persist/warm the plan cache at this path")
    parser.add_argument("--data-dir", default=None,
                        help="durable data directory (WAL + snapshots); "
                             "recovers on start, plan manifest lives inside")
    parser.add_argument("--no-wal-fsync", action="store_true",
                        help="buffered WAL writes (benchmarks only; crash "
                             "durability is NOT guaranteed)")
    parser.add_argument("--failpoints", default=None,
                        help="fault-injection spec, e.g. "
                             "'wal.append.after_write=crash@3' "
                             "(also honours REPRO_FAILPOINTS)")
    args = parser.parse_args(argv)

    if args.failpoints:
        from ..durability.failpoints import install

        install(args.failpoints)

    workload = tpch_workload(scale=args.scale, seed=args.seed)
    database = Database.from_catalog(
        workload.catalog,
        engine=args.engine,
        plan_cache_path=args.plan_cache_path,
        data_dir=args.data_dir,
        wal_fsync=not args.no_wal_fsync,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        max_queue_depth=args.queue_depth,
    )

    async def run() -> None:
        server = QueryServer(database, config)
        await server.start()
        print(f"serving tpch@{args.scale} on {server.host}:{server.port}")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
