"""The asyncio client library for the JSON-line query server.

:func:`connect` opens a TCP connection and returns a
:class:`ServeClient`, which speaks the protocol of
:mod:`repro.serve.protocol` and converts result payloads back into
:class:`~repro.core.executor.QueryResult` objects via the shared wire
codec — a round trip is value-exact, including NULLs, dates and
non-finite floats::

    client = await connect("127.0.0.1", 7433)
    result = await client.execute(
        "SELECT COUNT(*) AS n FROM ORDERS o WHERE o.O_TOTALPRICE > :t",
        params={"t": 500.0})
    print(result.single_value())
    stmt = await client.prepare("SELECT ... WHERE o.O_TOTALPRICE > :t")
    await stmt.execute({"t": 100.0})      # plan + parse reused server-side
    await client.close()

Requests pipeline freely: every request gets a fresh ``id`` and a reader
task dispatches responses by id, so concurrent ``await``\\ s on one client
are safe.  Server-side failures surface as :class:`ServerError` with the
machine-readable ``code`` (``queue_full``, ``deadline_exceeded``, ...) so
callers — the workload driver above all — can count rejection classes
without string-matching messages.

**Retries are idempotent by construction.**  Every operation retries
transparently (exponential backoff plus jitter, :class:`RetryPolicy`) on
two failure classes: connection loss (the client reconnects to the same
address) and the server's *retryable* codes — ``queue_full`` and
``overloaded`` — where the protocol guarantees the request was never
applied.  Writes additionally carry a client-generated UUID
``request_id`` minted **once per logical write** and reused verbatim
across every retry of it, so a write whose ack was lost to a connection
drop is deduplicated server-side (``{"deduplicated": true}``) instead of
applied twice.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.executor import QueryResult
from .protocol import RETRYABLE_CODES, encode_frame, validate_response_frame


class ServerError(RuntimeError):
    """An error frame, as an exception: carries code, message and frame."""

    def __init__(self, code: str, message: str, frame: Dict[str, Any]) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.frame = frame

    @property
    def retryable(self) -> bool:
        """True when the server guarantees the request was never applied."""
        return self.code in RETRYABLE_CODES


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter for connection loss and shed requests.

    Delay before attempt ``n`` (0-based) is
    ``min(max_delay, base_delay * 2**n) * (1 + jitter * random())`` —
    jitter desynchronizes a thundering herd of clients all shed by the
    same overloaded server.  ``max_attempts=1`` disables retries.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int) -> float:
        bounded = min(self.max_delay, self.base_delay * (2 ** attempt))
        return bounded * (1.0 + self.jitter * random.random())


class ProtocolViolation(RuntimeError):
    """The server emitted a frame that fails schema validation."""


class ServeClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        address: Optional[tuple] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        #: (host, port) for reconnects; None disables reconnection
        self._address = address
        self.retry = retry or RetryPolicy()
        self._ids = itertools.count(1)
        self._pending: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
        self._reader_task = asyncio.create_task(self._read_loop(), name="serve-client-reader")
        self._closed = False
        #: frames that failed validate_response_frame (should stay empty)
        self.invalid_frames: List[str] = []
        #: retry observability, for the driver's ledger
        self.retries = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        import json

        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line.decode("utf-8"))
                except ValueError:
                    self.invalid_frames.append("response line is not JSON")
                    continue
                defect = validate_response_frame(frame)
                if defect is not None:
                    self.invalid_frames.append(defect)
                future = self._pending.pop(frame.get("id") if isinstance(frame, dict) else None, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("server connection closed"))
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one frame and await its (validated) response frame."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        frame = {"id": request_id, "op": op}
        frame.update({k: v for k, v in fields.items() if v is not None})
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return await future

    async def _reconnect(self) -> None:
        """Replace the dead transport with a fresh one to the same address."""
        if self._address is None:
            raise ConnectionError("connection lost and no address to reconnect to")
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        host, port = self._address
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="serve-client-reader"
        )
        self.reconnects += 1

    async def request_retrying(self, op: str, **fields: Any) -> Dict[str, Any]:
        """:meth:`request` + :meth:`_unwrap` behind the retry policy.

        Retries (after backoff-with-jitter) on connection errors —
        reconnecting first — and on the server's retryable codes.  Safe
        for every operation the library exposes: reads are idempotent and
        writes carry a stable ``request_id`` the server dedups on.
        """
        policy = self.retry
        last_error: Optional[BaseException] = None
        for attempt in range(max(policy.max_attempts, 1)):
            if attempt:
                self.retries += 1
                await asyncio.sleep(policy.delay(attempt - 1))
            try:
                return self._unwrap(await self.request(op, **fields))
            except ServerError as exc:
                if not exc.retryable:
                    raise
                last_error = exc
            except (ConnectionError, BrokenPipeError, OSError) as exc:
                if self._closed:
                    raise
                last_error = exc
                try:
                    await self._reconnect()
                except (ConnectionError, OSError) as reconnect_exc:
                    last_error = reconnect_exc
        assert last_error is not None
        raise last_error

    @staticmethod
    def _unwrap(frame: Dict[str, Any]) -> Dict[str, Any]:
        if frame.get("ok"):
            return frame["result"]
        error = frame.get("error") or {}
        raise ServerError(
            str(error.get("code", "execution_error")),
            str(error.get("message", "server error")),
            frame,
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def execute(
        self,
        sql: str,
        params: Any = None,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        from ..core.wire import encode_params

        result = await self.request_retrying(
            "execute",
            sql=sql,
            params=encode_params(params),
            engine=engine,
            tenant=tenant,
            timeout_ms=timeout_ms,
            use_cache=use_cache,
        )
        return QueryResult.from_json(result["result_set"])

    async def prepare(
        self,
        sql: str,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> "RemoteStatement":
        result = await self.request_retrying(
            "prepare", sql=sql, engine=engine, tenant=tenant, timeout_ms=timeout_ms
        )
        return RemoteStatement(
            client=self,
            statement_id=result["statement"],
            sql=sql,
            tenant=tenant,
            parameters=list(result.get("parameters", [])),
        )

    async def explain(
        self,
        sql: str,
        params: Any = None,
        analyze: bool = False,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> str:
        from ..core.wire import encode_params

        result = await self.request_retrying(
            "explain",
            sql=sql,
            params=encode_params(params),
            analyze=analyze or None,
            engine=engine,
            tenant=tenant,
            timeout_ms=timeout_ms,
        )
        return result["plan"]

    async def list_engines(self) -> Dict[str, Any]:
        return await self.request_retrying("list_engines")

    async def load_rows(
        self,
        relation: str,
        rows: List[List[Any]],
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append rows; exactly-once across retries via ``request_id``.

        The idempotency key is minted here (one UUID per *logical* write)
        and reused verbatim by every retry, so a write whose ack was lost
        answers ``{"deduplicated": true}`` on replay instead of applying
        twice.  Pass an explicit ``request_id`` to span retries across
        client instances (e.g. resuming after a process restart).
        """
        from ..core.wire import iter_encoded_rows

        if request_id is None:
            request_id = uuid.uuid4().hex
        return await self.request_retrying(
            "load_rows",
            relation=relation,
            rows=iter_encoded_rows(rows),
            tenant=tenant,
            timeout_ms=timeout_ms,
            request_id=request_id,
        )

    async def delete_rows(
        self,
        relation: str,
        rows: List[List[Any]],
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Delete rows by value (bag semantics); exactly-once like a write.

        Each row in ``rows`` removes one live occurrence server-side.  The
        idempotency contract mirrors :meth:`load_rows`: one UUID per
        logical delete, reused across retries, deduplicated server-side.
        """
        from ..core.wire import iter_encoded_rows

        if request_id is None:
            request_id = uuid.uuid4().hex
        return await self.request_retrying(
            "delete_rows",
            relation=relation,
            rows=iter_encoded_rows(rows),
            tenant=tenant,
            timeout_ms=timeout_ms,
            request_id=request_id,
        )

    async def update_rows(
        self,
        relation: str,
        rows: List[List[Any]],
        updates: List[List[Any]],
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Replace ``rows`` with ``updates`` atomically; exactly-once.

        The server applies delete + insert in one critical section under
        one WAL record, so no reader or crash observes half an update.
        """
        from ..core.wire import iter_encoded_rows

        if request_id is None:
            request_id = uuid.uuid4().hex
        return await self.request_retrying(
            "update_rows",
            relation=relation,
            rows=iter_encoded_rows(rows),
            updates=iter_encoded_rows(updates),
            tenant=tenant,
            timeout_ms=timeout_ms,
            request_id=request_id,
        )

    async def materialize(
        self,
        sql: str,
        view: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Register ``sql`` as a server-maintained materialized view."""
        result = await self.request_retrying(
            "materialize", sql=sql, view=view, tenant=tenant, timeout_ms=timeout_ms
        )
        return result["view"]

    async def query_view(
        self,
        view: str,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        """Serve a materialized view's current contents."""
        result = await self.request_retrying(
            "query_view",
            view=view,
            tenant=tenant,
            timeout_ms=timeout_ms,
            use_cache=use_cache,
        )
        return QueryResult.from_json(result["result_set"])

    async def stats(self) -> Dict[str, Any]:
        return await self.request_retrying("stats")

    async def health(self) -> Dict[str, Any]:
        """Queue depth, breaker state and per-tenant WAL lag, inline."""
        return await self.request_retrying("health")

    async def ping(self) -> bool:
        return bool((await self.request_retrying("ping")).get("pong"))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


class RemoteStatement:
    """A server-side prepared statement handle (one connection's scope)."""

    def __init__(
        self,
        client: ServeClient,
        statement_id: str,
        sql: str,
        tenant: Optional[str],
        parameters: List[str],
    ) -> None:
        self.client = client
        self.statement_id = statement_id
        self.sql = sql
        self.tenant = tenant
        self.parameters = parameters

    async def execute(
        self,
        params: Any = None,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        from ..core.wire import encode_params

        result = await self.client.request_retrying(
            "execute_prepared",
            statement=self.statement_id,
            params=encode_params(params),
            tenant=self.tenant,
            timeout_ms=timeout_ms,
            use_cache=use_cache,
        )
        return QueryResult.from_json(result["result_set"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteStatement({self.statement_id!r}, {self.sql[:40]!r}...)"


async def connect(
    host: str = "127.0.0.1",
    port: int = 7433,
    retry: Optional[RetryPolicy] = None,
) -> ServeClient:
    """Open a client connection to a running query server.

    The address is remembered so the retry layer can reconnect after a
    connection drop (e.g. a server crash-restart under fault injection).
    """
    reader, writer = await asyncio.open_connection(host, port)
    return ServeClient(reader, writer, address=(host, port), retry=retry)
