"""The asyncio client library for the JSON-line query server.

:func:`connect` opens a TCP connection and returns a
:class:`ServeClient`, which speaks the protocol of
:mod:`repro.serve.protocol` and converts result payloads back into
:class:`~repro.core.executor.QueryResult` objects via the shared wire
codec — a round trip is value-exact, including NULLs, dates and
non-finite floats::

    client = await connect("127.0.0.1", 7433)
    result = await client.execute(
        "SELECT COUNT(*) AS n FROM ORDERS o WHERE o.O_TOTALPRICE > :t",
        params={"t": 500.0})
    print(result.single_value())
    stmt = await client.prepare("SELECT ... WHERE o.O_TOTALPRICE > :t")
    await stmt.execute({"t": 100.0})      # plan + parse reused server-side
    await client.close()

Requests pipeline freely: every request gets a fresh ``id`` and a reader
task dispatches responses by id, so concurrent ``await``\\ s on one client
are safe.  Server-side failures surface as :class:`ServerError` with the
machine-readable ``code`` (``queue_full``, ``deadline_exceeded``, ...) so
callers — the workload driver above all — can count rejection classes
without string-matching messages.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional

from ..core.executor import QueryResult
from .protocol import encode_frame, validate_response_frame


class ServerError(RuntimeError):
    """An error frame, as an exception: carries code, message and frame."""

    def __init__(self, code: str, message: str, frame: Dict[str, Any]) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.frame = frame


class ProtocolViolation(RuntimeError):
    """The server emitted a frame that fails schema validation."""


class ServeClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
        self._reader_task = asyncio.create_task(self._read_loop(), name="serve-client-reader")
        self._closed = False
        #: frames that failed validate_response_frame (should stay empty)
        self.invalid_frames: List[str] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        import json

        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line.decode("utf-8"))
                except ValueError:
                    self.invalid_frames.append("response line is not JSON")
                    continue
                defect = validate_response_frame(frame)
                if defect is not None:
                    self.invalid_frames.append(defect)
                future = self._pending.pop(frame.get("id") if isinstance(frame, dict) else None, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("server connection closed"))
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one frame and await its (validated) response frame."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        frame = {"id": request_id, "op": op}
        frame.update({k: v for k, v in fields.items() if v is not None})
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return await future

    @staticmethod
    def _unwrap(frame: Dict[str, Any]) -> Dict[str, Any]:
        if frame.get("ok"):
            return frame["result"]
        error = frame.get("error") or {}
        raise ServerError(
            str(error.get("code", "execution_error")),
            str(error.get("message", "server error")),
            frame,
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def execute(
        self,
        sql: str,
        params: Any = None,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        from ..core.wire import encode_params

        result = self._unwrap(
            await self.request(
                "execute",
                sql=sql,
                params=encode_params(params),
                engine=engine,
                tenant=tenant,
                timeout_ms=timeout_ms,
                use_cache=use_cache,
            )
        )
        return QueryResult.from_json(result["result_set"])

    async def prepare(
        self,
        sql: str,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> "RemoteStatement":
        result = self._unwrap(
            await self.request(
                "prepare", sql=sql, engine=engine, tenant=tenant, timeout_ms=timeout_ms
            )
        )
        return RemoteStatement(
            client=self,
            statement_id=result["statement"],
            sql=sql,
            tenant=tenant,
            parameters=list(result.get("parameters", [])),
        )

    async def explain(
        self,
        sql: str,
        params: Any = None,
        analyze: bool = False,
        engine: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> str:
        from ..core.wire import encode_params

        result = self._unwrap(
            await self.request(
                "explain",
                sql=sql,
                params=encode_params(params),
                analyze=analyze or None,
                engine=engine,
                tenant=tenant,
                timeout_ms=timeout_ms,
            )
        )
        return result["plan"]

    async def list_engines(self) -> Dict[str, Any]:
        return self._unwrap(await self.request("list_engines"))

    async def load_rows(
        self,
        relation: str,
        rows: List[List[Any]],
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        from ..core.wire import iter_encoded_rows

        return self._unwrap(
            await self.request(
                "load_rows",
                relation=relation,
                rows=iter_encoded_rows(rows),
                tenant=tenant,
                timeout_ms=timeout_ms,
            )
        )

    async def materialize(
        self,
        sql: str,
        view: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Register ``sql`` as a server-maintained materialized view."""
        result = self._unwrap(
            await self.request(
                "materialize", sql=sql, view=view, tenant=tenant, timeout_ms=timeout_ms
            )
        )
        return result["view"]

    async def query_view(
        self,
        view: str,
        tenant: Optional[str] = None,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        """Serve a materialized view's current contents."""
        result = self._unwrap(
            await self.request(
                "query_view",
                view=view,
                tenant=tenant,
                timeout_ms=timeout_ms,
                use_cache=use_cache,
            )
        )
        return QueryResult.from_json(result["result_set"])

    async def stats(self) -> Dict[str, Any]:
        return self._unwrap(await self.request("stats"))

    async def ping(self) -> bool:
        return bool(self._unwrap(await self.request("ping")).get("pong"))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


class RemoteStatement:
    """A server-side prepared statement handle (one connection's scope)."""

    def __init__(
        self,
        client: ServeClient,
        statement_id: str,
        sql: str,
        tenant: Optional[str],
        parameters: List[str],
    ) -> None:
        self.client = client
        self.statement_id = statement_id
        self.sql = sql
        self.tenant = tenant
        self.parameters = parameters

    async def execute(
        self,
        params: Any = None,
        timeout_ms: Optional[float] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        from ..core.wire import encode_params

        result = ServeClient._unwrap(
            await self.client.request(
                "execute_prepared",
                statement=self.statement_id,
                params=encode_params(params),
                tenant=self.tenant,
                timeout_ms=timeout_ms,
                use_cache=use_cache,
            )
        )
        return QueryResult.from_json(result["result_set"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteStatement({self.statement_id!r}, {self.sql[:40]!r}...)"


async def connect(host: str = "127.0.0.1", port: int = 7433) -> ServeClient:
    """Open a client connection to a running query server."""
    reader, writer = await asyncio.open_connection(host, port)
    return ServeClient(reader, writer)
