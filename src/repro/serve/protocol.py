"""The JSON-line wire protocol of the query server.

One request per line, one response per line, UTF-8 JSON either way.  A
connection may pipeline: requests carry a client-chosen ``id`` and the
matching response echoes it, so responses may return out of order (the
admission queue and worker pool reorder freely).

Request frames::

    {"id": 7, "op": "execute", "sql": "SELECT ...", "params": {...},
     "engine": "tag", "tenant": "default", "timeout_ms": 500,
     "use_cache": true}

Operations: ``execute``, ``prepare``, ``execute_prepared``, ``explain``,
``list_engines``, ``load_rows``, ``delete_rows``, ``update_rows``,
``materialize``, ``query_view``, ``stats``, ``ping``, ``health``.

Write frames (``load_rows``, ``delete_rows``, ``update_rows``) may carry
a client-generated ``request_id``
string — the idempotency key.  The server remembers applied ids in its
WAL-backed table, so a retry of an acknowledged write answers
``{"deduplicated": true}`` instead of applying twice; the client library
generates one automatically and reuses it across its retries.

Response frames — always one of::

    {"id": 7, "ok": true,  "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "deadline_exceeded",
                                     "message": "...", ...}}

Admission control answers with frames, never connection drops: a full
queue produces ``queue_full``, an expired deadline ``deadline_exceeded``
(with ``"where"`` telling whether time ran out queued or executing).
Values inside ``params``, ``rows`` and result payloads use the
type-tagged scalar encoding of :mod:`repro.core.wire`.

:func:`validate_response_frame` is the schema contract: the client
library, the workload driver and the serving tests all run every frame
through it, and CI fails if any frame the server emits does not satisfy
it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: every operation the server answers
OPERATIONS = (
    "execute",
    "prepare",
    "execute_prepared",
    "explain",
    "list_engines",
    "load_rows",
    "delete_rows",
    "update_rows",
    "materialize",
    "query_view",
    "stats",
    "ping",
    "health",
)

#: error codes a client may safely retry (the request was never applied)
RETRYABLE_CODES = ("queue_full", "overloaded")

#: machine-readable error codes a response frame may carry
ERROR_CODES = (
    "parse_error",          # request line was not valid JSON
    "invalid_request",      # frame shape/field validation failed
    "unknown_op",           # op not in OPERATIONS
    "unknown_engine",       # engine name not in the registry
    "unknown_tenant",       # tenant not served by this server
    "unknown_statement",    # execute_prepared with a foreign statement id
    "queue_full",           # admission control rejected the request
    "overloaded",           # circuit breaker shed the request (retryable)
    "deadline_exceeded",    # per-request timeout expired (queued or running)
    "execution_error",      # the query raised while executing
    "server_closed",        # request arrived while the server was stopping
)


class ProtocolError(ValueError):
    """Raised when a frame does not follow the wire protocol."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


# ----------------------------------------------------------------------
# frame construction
# ----------------------------------------------------------------------
def ok_frame(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_frame(
    request_id: Any, code: str, message: str, **extra: Any
) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {"id": request_id, "ok": False, "error": error}


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(frame, separators=(",", ":"), allow_nan=False).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` (``parse_error``) for malformed JSON and
    for frames that are not objects — the server answers those with an
    error frame instead of dropping the connection.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("parse_error", f"malformed JSON frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("parse_error", "frame must be a JSON object")
    return frame


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
def validate_request_frame(frame: Dict[str, Any]) -> Tuple[Any, str]:
    """Check the envelope of a request frame; returns ``(id, op)``.

    Field-level validation (sql present, rows well-formed, ...) happens at
    dispatch; this guards the common shape every operation shares.
    """
    request_id = frame.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("invalid_request", "'id' must be an integer or string")
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("invalid_request", "request frame needs a string 'op'")
    if op not in OPERATIONS:
        raise ProtocolError(
            "unknown_op", f"unknown op {op!r}; supported: {', '.join(OPERATIONS)}"
        )
    timeout_ms = frame.get("timeout_ms")
    if timeout_ms is not None and (
        not isinstance(timeout_ms, (int, float)) or isinstance(timeout_ms, bool) or timeout_ms <= 0
    ):
        raise ProtocolError("invalid_request", "'timeout_ms' must be a positive number")
    for field, kind in (("tenant", str), ("engine", str), ("sql", str)):
        value = frame.get(field)
        if value is not None and not isinstance(value, kind):
            raise ProtocolError("invalid_request", f"{field!r} must be a {kind.__name__}")
    write_id = frame.get("request_id")
    if write_id is not None and (not isinstance(write_id, str) or not write_id):
        raise ProtocolError(
            "invalid_request", "'request_id' must be a non-empty string"
        )
    return request_id, op


# ----------------------------------------------------------------------
# response validation (the driver/CI schema contract)
# ----------------------------------------------------------------------
def validate_response_frame(frame: Any) -> Optional[str]:
    """Return ``None`` for a well-formed response frame, else the defect.

    Used by the client library on every frame it reads and by the workload
    driver to fail the serving benchmark when the server emits anything
    off-schema.
    """
    if not isinstance(frame, dict):
        return "response frame is not an object"
    if "id" not in frame:
        return "response frame has no 'id'"
    if not isinstance(frame.get("ok"), bool):
        return "response frame 'ok' is not a boolean"
    if frame["ok"]:
        result = frame.get("result")
        if not isinstance(result, dict):
            return "ok frame has no object 'result'"
        if "error" in frame:
            return "ok frame carries an 'error'"
        return None
    error = frame.get("error")
    if not isinstance(error, dict):
        return "error frame has no object 'error'"
    if error.get("code") not in ERROR_CODES:
        return f"error frame code {error.get('code')!r} is not a known code"
    if not isinstance(error.get("message"), str):
        return "error frame has no string 'message'"
    if "result" in frame:
        return "error frame carries a 'result'"
    return None
