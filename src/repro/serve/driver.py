"""Seeded closed-loop workload driver for the query server.

In the style of ``pyrqg``'s WorkloadGenerator (mixed statement classes
drawn from a seeded distribution) crossed with the Proto-X gym's
timeout-aware query runner (every request carries a deadline and the
ledger distinguishes completions, timeouts and rejections), this module
drives a *live* server over real localhost TCP and measures what serving
actually delivers:

* a **closed loop at a target QPS** — ``concurrency`` client workers
  share one global pacing schedule (one slot every ``1/target_qps``
  seconds); each worker claims the next slot, sleeps until it, issues
  one request and awaits the response before claiming another.  If the
  server falls behind, slots back up and sustained QPS drops below
  target — the metric CI tracks.
* a **seeded statement mix** — plain SELECTs, server-side prepared
  parameterized SELECTs, ``load_rows`` writes, and ``delete_rows`` /
  ``update_rows`` mutations (victims drawn from the rows the driver
  itself wrote, so deletes always hit live rows and never touch the
  seeded FK-referenced data), drawn per-request from the configured
  weights by a per-worker ``random.Random`` seeded from the run seed
  (same seed, same statement sequence per worker).
* the **warm-start assertion** — the run drives the read query shapes
  against a cold server (compile count must be > 0), persists its plan
  manifest by closing it, then boots a warm server from the manifest
  and drives the same shapes again (compile count must be == 0) before
  the measured mixed phase.
* **schema validation** — every response frame passes
  :func:`repro.serve.protocol.validate_response_frame`; any violation
  fails the run.

The ``BENCH_serving.json`` artifact records p50/p95/p99 latency,
sustained QPS, timeout/rejection/error counts and the cold/warm compile
counters.  ``make serve-bench`` runs this end to end and CI uploads the
artifact, failing the job on a zero QPS or any schema violation.

Usage::

    python -m repro.serve.driver --scale 0.05 --duration 6 --qps 80 \
        --out benchmarks/results/BENCH_serving.json
"""

from __future__ import annotations

import argparse
import asyncio
import datetime as _dt
import json
import os
import random
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api import Database
from .client import ServeClient, connect
from .server import QueryServer, ServerConfig

# ----------------------------------------------------------------------
# the statement mix (TPC-H mini schema)
# ----------------------------------------------------------------------
#: plain SELECT shapes, rotated round-robin per worker
SELECT_SQL = (
    "SELECT o.O_ORDERKEY, o.O_TOTALPRICE FROM ORDERS o WHERE o.O_TOTALPRICE > 1500.0",
    "SELECT c.C_MKTSEGMENT, COUNT(*) AS n FROM CUSTOMER c GROUP BY c.C_MKTSEGMENT",
    "SELECT COUNT(*) AS n FROM CUSTOMER c, ORDERS o "
    "WHERE c.C_CUSTKEY = o.O_CUSTKEY AND c.C_MKTSEGMENT = 'BUILDING'",
)
#: parameterized shapes, prepared once per worker connection
PARAMETERIZED_SQL = (
    "SELECT COUNT(*) AS n FROM ORDERS o WHERE o.O_TOTALPRICE > :t",
    "SELECT o.O_ORDERPRIORITY, COUNT(*) AS n FROM ORDERS o, CUSTOMER c "
    "WHERE o.O_CUSTKEY = c.C_CUSTKEY AND c.C_MKTSEGMENT = :segment "
    "GROUP BY o.O_ORDERPRIORITY",
)
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
#: writes append ORDERS rows keyed from this base (collision-free zone)
WRITE_KEY_BASE = 10_000_000


@dataclass
class DriverConfig:
    """Knobs of one driver run (all seeded, all recorded in the artifact)."""

    seed: int = 7
    duration_seconds: float = 5.0
    target_qps: float = 50.0
    concurrency: int = 8
    timeout_ms: float = 2000.0
    engine: Optional[str] = None
    tenant: Optional[str] = None
    #: statement-class weights; normalized at use
    mix: Dict[str, float] = field(
        default_factory=lambda: {
            "select": 0.50,
            "parameterized": 0.32,
            "write": 0.10,
            "delete": 0.04,
            "update": 0.04,
        }
    )


@dataclass
class _Ledger:
    """Outcome accounting shared by one driver phase's workers."""

    latencies_ms: List[float] = field(default_factory=list)
    completed: int = 0
    cached: int = 0
    timeouts: int = 0
    rejections: int = 0
    errors: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: completed-request latencies split per statement class, so the
    #: artifact shows write (delta-ingest) latency separately from reads
    latencies_by_kind: Dict[str, List[float]] = field(default_factory=dict)
    invalid_frames: List[str] = field(default_factory=list)

    def record(self, kind: str, outcome: str, latency_ms: float, cached: bool) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if outcome == "ok":
            self.completed += 1
            self.latencies_ms.append(latency_ms)
            self.latencies_by_kind.setdefault(kind, []).append(latency_ms)
            if cached:
                self.cached += 1
        elif outcome == "deadline_exceeded":
            self.timeouts += 1
        elif outcome == "queue_full":
            self.rejections += 1
        else:
            self.errors += 1

    @property
    def requests(self) -> int:
        return self.completed + self.timeouts + self.rejections + self.errors


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def latency_summary(latencies_ms: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies_ms)
    return {
        "count": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p95_ms": round(_percentile(ordered, 0.95), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "mean_ms": round(sum(ordered) / len(ordered), 3) if ordered else 0.0,
        "max_ms": round(ordered[-1], 3) if ordered else 0.0,
    }


# ----------------------------------------------------------------------
# one driver phase: N workers, one pacing schedule, one ledger
# ----------------------------------------------------------------------
class WorkloadDriver:
    """Drive a live server with the seeded closed-loop mixed workload."""

    def __init__(self, host: str, port: int, config: DriverConfig) -> None:
        self.host = host
        self.port = port
        self.config = config
        self._write_keys = iter(range(WRITE_KEY_BASE, WRITE_KEY_BASE + 10_000_000))
        #: rows acknowledged by load_rows/update_rows, the mutation victim
        #: pool: deletes/updates only ever target driver-written rows, so
        #: they always hit live data and never break seeded FK edges
        self._written: List[List[Any]] = []

    async def run(self) -> _Ledger:
        """The measured phase: mixed traffic at the target QPS."""
        ledger = _Ledger()
        loop = asyncio.get_running_loop()
        interval = 1.0 / max(self.config.target_qps, 0.001)
        schedule = {"next": loop.time()}
        schedule_lock = asyncio.Lock()
        end_at = loop.time() + self.config.duration_seconds
        workers = [
            asyncio.create_task(
                self._worker(i, ledger, schedule, schedule_lock, interval, end_at)
            )
            for i in range(max(1, self.config.concurrency))
        ]
        await asyncio.gather(*workers)
        return ledger

    def _pick_kind(self, rng: random.Random) -> str:
        total = sum(max(w, 0.0) for w in self.config.mix.values()) or 1.0
        roll = rng.random() * total
        for kind, weight in self.config.mix.items():
            roll -= max(weight, 0.0)
            if roll <= 0:
                return kind
        return "select"

    def _write_rows(self, rng: random.Random, customers: int) -> List[List[Any]]:
        rows = []
        for _ in range(rng.randint(1, 3)):
            key = next(self._write_keys)
            rows.append(
                [
                    key,
                    rng.randint(1, max(customers, 1)),
                    rng.choice(["F", "O", "P"]),
                    round(rng.uniform(10.0, 5000.0), 2),
                    _dt.date(1995, 1, 1) + _dt.timedelta(days=rng.randint(0, 2000)),
                    rng.choice(ORDER_PRIORITIES),
                    rng.randint(0, 1),
                ]
            )
        return rows

    async def _worker(
        self,
        index: int,
        ledger: _Ledger,
        schedule: Dict[str, float],
        schedule_lock: asyncio.Lock,
        interval: float,
        end_at: float,
    ) -> None:
        rng = random.Random(self.config.seed * 7919 + index)
        loop = asyncio.get_running_loop()
        client = await connect(self.host, self.port)
        try:
            prepared = []
            for sql in PARAMETERIZED_SQL:
                stmt = await client.prepare(
                    sql, engine=self.config.engine, tenant=self.config.tenant
                )
                prepared.append(stmt)
            customers_result = await client.execute(
                "SELECT COUNT(*) AS n FROM CUSTOMER c",
                engine=self.config.engine,
                tenant=self.config.tenant,
            )
            customers = int(customers_result.single_value())
            select_cursor = index  # stagger the round-robin start per worker

            while True:
                async with schedule_lock:
                    slot = schedule["next"]
                    if slot >= end_at:
                        break
                    schedule["next"] = slot + interval
                delay = slot - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                kind = self._pick_kind(rng)
                started = time.perf_counter()
                kind, outcome, cached = await self._issue(
                    client, kind, rng, prepared, customers, select_cursor
                )
                latency_ms = (time.perf_counter() - started) * 1000.0
                ledger.record(kind, outcome, latency_ms, cached)
                select_cursor += 1
        finally:
            ledger.invalid_frames.extend(client.invalid_frames)
            await client.close()

    async def _issue(
        self,
        client: ServeClient,
        kind: str,
        rng: random.Random,
        prepared: List[Any],
        customers: int,
        select_cursor: int,
    ) -> Tuple[str, str, bool]:
        """One request; returns (actual_kind, outcome, served_from_cache).

        The actual kind may differ from the drawn one: a delete/update
        drawn before any write has filled the victim pool downgrades to a
        write, and the ledger must account for what was really issued.
        """
        from ..core.wire import encode_params, iter_encoded_rows

        timeout_ms = self.config.timeout_ms
        if kind in ("delete", "update") and not self._written:
            kind = "write"  # nothing to mutate yet: seed the pool instead
        if kind == "write":
            # idempotency key: the ledger counts rejections itself (no
            # transparent retry), but a key per logical write keeps the
            # workload safe to re-drive against a recovering server
            rows = self._write_rows(rng, customers)
            frame = await client.request(
                "load_rows",
                relation="ORDERS",
                rows=iter_encoded_rows(rows),
                tenant=self.config.tenant,
                timeout_ms=timeout_ms,
                request_id=uuid.uuid4().hex,
            )
            if frame.get("ok"):
                self._written.extend(rows)
        elif kind == "delete":
            victim = self._written.pop(rng.randrange(len(self._written)))
            # the victim stays out of the pool even on an ambiguous
            # failure (a timed-out delete may still land): never reuse it
            frame = await client.request(
                "delete_rows",
                relation="ORDERS",
                rows=iter_encoded_rows([victim]),
                tenant=self.config.tenant,
                timeout_ms=timeout_ms,
                request_id=uuid.uuid4().hex,
            )
        elif kind == "update":
            victim = self._written.pop(rng.randrange(len(self._written)))
            replacement = list(victim)
            replacement[3] = round(rng.uniform(10.0, 5000.0), 2)  # O_TOTALPRICE
            frame = await client.request(
                "update_rows",
                relation="ORDERS",
                rows=iter_encoded_rows([victim]),
                updates=iter_encoded_rows([replacement]),
                tenant=self.config.tenant,
                timeout_ms=timeout_ms,
                request_id=uuid.uuid4().hex,
            )
            if frame.get("ok"):
                self._written.append(replacement)
        elif kind == "parameterized":
            stmt = prepared[select_cursor % len(prepared)]
            if ":t" in stmt.sql:
                params: Any = {"t": round(rng.uniform(50.0, 4000.0), 2)}
            else:
                params = {"segment": rng.choice(MARKET_SEGMENTS)}
            frame = await client.request(
                "execute_prepared",
                statement=stmt.statement_id,
                params=encode_params(params),
                tenant=self.config.tenant,
                timeout_ms=timeout_ms,
            )
        else:
            sql = SELECT_SQL[select_cursor % len(SELECT_SQL)]
            frame = await client.request(
                "execute",
                sql=sql,
                engine=self.config.engine,
                tenant=self.config.tenant,
                timeout_ms=timeout_ms,
            )
        if frame.get("ok"):
            result = frame.get("result") or {}
            return kind, "ok", bool(result.get("cached"))
        code = str(((frame.get("error") or {}).get("code")) or "execution_error")
        if code in ("deadline_exceeded", "queue_full"):
            return kind, code, False
        return kind, "error", False


# ----------------------------------------------------------------------
# shape passes (the warm-start assertion phases)
# ----------------------------------------------------------------------
async def drive_query_shapes(host: str, port: int, config: DriverConfig) -> List[str]:
    """Execute every repeated read shape once (plus one repeat).

    Returns the list of invalid-frame defects (empty on a healthy server).
    The repeat proves plan reuse: on a warm server even the *first* pass
    compiles nothing; on a cold server the first pass compiles every
    shape and the repeat still compiles nothing.
    """
    client = await connect(host, port)
    try:
        for _pass in range(2):
            for sql in SELECT_SQL:
                await client.execute(
                    sql, engine=config.engine, tenant=config.tenant, use_cache=False
                )
            for sql in PARAMETERIZED_SQL:
                stmt = await client.prepare(sql, engine=config.engine, tenant=config.tenant)
                if ":t" in sql:
                    await stmt.execute({"t": 1000.0}, use_cache=False)
                else:
                    await stmt.execute({"segment": "BUILDING"}, use_cache=False)
        return list(client.invalid_frames)
    finally:
        await client.close()


# ----------------------------------------------------------------------
# the benchmark entry point (make serve-bench)
# ----------------------------------------------------------------------
async def run_serving_bench(
    scale: float,
    seed: int,
    config: DriverConfig,
    manifest_path: str,
    server_config: Optional[ServerConfig] = None,
) -> Dict[str, Any]:
    """Cold-shapes, warm-shapes, then the measured mixed phase.

    Boots two in-process servers on localhost TCP: a cold one (empty
    manifest path) whose shutdown persists the plan manifest, then a
    warm one that replays it.  Returns the full artifact dict; the
    ``checks`` section says whether the run passed.
    """
    from ..workloads import tpch_workload

    def build_database() -> Database:
        workload = tpch_workload(scale=scale, seed=seed)
        return Database.from_catalog(workload.catalog, plan_cache_path=manifest_path)

    base_server_config = server_config or ServerConfig()

    # ---- phase 1: cold server, read shapes only --------------------------
    if os.path.exists(manifest_path):
        os.unlink(manifest_path)  # a true cold start
    cold_server = QueryServer(build_database(), base_server_config)
    await cold_server.start()
    try:
        cold_defects = await drive_query_shapes(cold_server.host, cold_server.port, config)
        cold_compilations = sum(cold_server.plan_compilations().values())
    finally:
        await cold_server.stop()  # closes the database -> flushes the manifest

    # ---- phase 2: warm server from the manifest, same shapes -------------
    warm_server = QueryServer(build_database(), base_server_config)
    await warm_server.start()
    try:
        warm_reports = dict(warm_server.warm_reports)
        warm_defects = await drive_query_shapes(warm_server.host, warm_server.port, config)
        warm_compilations = sum(warm_server.plan_compilations().values())

        # ---- phase 3: the measured mixed workload on the warm server -----
        driver = WorkloadDriver(warm_server.host, warm_server.port, config)
        phase_started = time.perf_counter()
        ledger = await driver.run()
        elapsed = time.perf_counter() - phase_started
        server_stats = warm_server.stats_payload()
    finally:
        await warm_server.stop()

    sustained_qps = ledger.completed / elapsed if elapsed > 0 else 0.0
    invalid_frames = cold_defects + warm_defects + ledger.invalid_frames
    # every mutation must have landed as an in-place delta (appends via
    # the PR 7 incremental path, deletes/updates via tombstone deltas):
    # sum the per-tenant maintenance counters and fail the run if any of
    # them degenerated into a full rebuild
    def _maintenance_total(counter: str) -> int:
        return sum(
            tenant_stats.get("maintenance", {}).get(counter, 0)
            for tenant_stats in server_stats.get("tenants", {}).values()
        )

    deltas_applied = _maintenance_total("deltas_applied")
    delete_deltas_applied = _maintenance_total("delete_deltas_applied")
    full_rebuilds = _maintenance_total("full_rebuilds")
    write_requests = ledger.by_kind.get("write", 0)
    mutation_requests = write_requests + sum(
        ledger.by_kind.get(kind, 0) for kind in ("delete", "update")
    )
    checks = {
        "sustained_qps_positive": sustained_qps > 0,
        "no_invalid_frames": not invalid_frames,
        "cold_server_compiles": cold_compilations > 0,
        "warm_server_skips_compilation": warm_compilations == 0,
        "writes_applied_as_deltas": mutation_requests == 0
        or (deltas_applied + delete_deltas_applied > 0 and full_rebuilds == 0),
    }
    return {
        "benchmark": "serving",
        "config": {
            "scale": scale,
            "seed": seed,
            "duration_seconds": config.duration_seconds,
            "target_qps": config.target_qps,
            "concurrency": config.concurrency,
            "timeout_ms": config.timeout_ms,
            "mix": dict(config.mix),
            "engine": config.engine or "default",
            "pool_size": base_server_config.pool_size,
            "max_queue_depth": base_server_config.max_queue_depth,
        },
        "warm_start": {
            "manifest_path": manifest_path,
            "cold_compilations": cold_compilations,
            "warm_compilations": warm_compilations,
            "warm_reports": warm_reports,
        },
        "serving": {
            "requests": ledger.requests,
            "completed": ledger.completed,
            "result_cache_hits": ledger.cached,
            "timeouts": ledger.timeouts,
            "rejections": ledger.rejections,
            "errors": ledger.errors,
            "by_kind": dict(sorted(ledger.by_kind.items())),
            "elapsed_seconds": round(elapsed, 3),
            "sustained_qps": round(sustained_qps, 2),
            "target_qps": config.target_qps,
            "latency_ms": latency_summary(ledger.latencies_ms),
            "latency_ms_by_kind": {
                kind: latency_summary(values)
                for kind, values in sorted(ledger.latencies_by_kind.items())
            },
            "maintenance": {
                "write_requests": write_requests,
                "mutation_requests": mutation_requests,
                "deltas_applied": deltas_applied,
                "delete_deltas_applied": delete_deltas_applied,
                "rows_deleted": _maintenance_total("rows_deleted"),
                "full_rebuilds": full_rebuilds,
            },
        },
        "server_stats": server_stats,
        "schema_validation": {
            "invalid_frames": len(invalid_frames),
            "defects": invalid_frames[:20],
        },
        "checks": checks,
        "ok": all(checks.values()),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop serving benchmark against a localhost query server"
    )
    parser.add_argument("--scale", type=float, default=0.05, help="TPC-H mini scale factor")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=5.0, help="measured phase seconds")
    parser.add_argument("--qps", type=float, default=60.0, help="target requests/second")
    parser.add_argument("--concurrency", type=int, default=8, help="closed-loop clients")
    parser.add_argument("--timeout-ms", type=float, default=2000.0)
    parser.add_argument("--engine", default=None)
    parser.add_argument("--pool-size", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--write-fraction", type=float, default=0.10)
    parser.add_argument("--delete-fraction", type=float, default=0.04)
    parser.add_argument("--update-fraction", type=float, default=0.04)
    parser.add_argument(
        "--out", default="benchmarks/results/BENCH_serving.json", help="artifact path"
    )
    args = parser.parse_args(argv)

    write_fraction = min(max(args.write_fraction, 0.0), 0.9)
    delete_fraction = min(max(args.delete_fraction, 0.0), 0.3)
    update_fraction = min(max(args.update_fraction, 0.0), 0.3)
    read_fraction = max(1.0 - write_fraction - delete_fraction - update_fraction, 0.0)
    config = DriverConfig(
        seed=args.seed,
        duration_seconds=args.duration,
        target_qps=args.qps,
        concurrency=args.concurrency,
        timeout_ms=args.timeout_ms,
        engine=args.engine,
        mix={
            "select": read_fraction * 0.6,
            "parameterized": read_fraction * 0.4,
            "write": write_fraction,
            "delete": delete_fraction,
            "update": update_fraction,
        },
    )
    server_config = ServerConfig(
        pool_size=args.pool_size, max_queue_depth=args.queue_depth
    )
    out_dir = os.path.dirname(os.path.abspath(args.out)) or "."
    os.makedirs(out_dir, exist_ok=True)
    manifest_path = os.path.join(out_dir, "serving_plan_manifest.json")

    report = asyncio.run(
        run_serving_bench(args.scale, args.seed, config, manifest_path, server_config)
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    serving = report["serving"]
    print(
        f"serving: {serving['completed']}/{serving['requests']} ok, "
        f"{serving['sustained_qps']} qps sustained (target {serving['target_qps']}), "
        f"p50 {serving['latency_ms']['p50_ms']}ms p99 {serving['latency_ms']['p99_ms']}ms, "
        f"{serving['timeouts']} timeouts, {serving['rejections']} rejections"
    )
    print(
        f"warm start: cold compiled {report['warm_start']['cold_compilations']}, "
        f"warm compiled {report['warm_start']['warm_compilations']}"
    )
    for name, passed in report["checks"].items():
        print(f"check {name}: {'ok' if passed else 'FAIL'}")
    print(f"artifact: {args.out}")
    if not report["ok"]:
        print("serving benchmark FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
