"""Compile a :class:`~repro.core.vertex_program.FragmentConfig` to slotted form.

The TAG-join collection phase is driven by a *statically known* schedule
(the Euler traversal of the plan), which means the shape of every
intermediate result table — which columns, in which order — is fully
determined at plan-compile time.  ``compile_slotted_fragment`` walks the
collection steps once, symbolically, propagating a :class:`RowSchema`
through the plan exactly as the vertex program will propagate row tables
at run time, and compiles each per-step merge, every filter, the residual
predicates, the output list, the GROUP BY key and the aggregate
accumulators into slot-index closures.

The result rides along inside the cached
:class:`~repro.core.compiler.CompiledFragment`, so a plan-cache hit hands
back ready-to-run closures and the per-row work left at execution time is
tuple indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..relational.catalog import Catalog
from .expr import compile_predicates, tuple_data_context, tuple_data_resolver
from .operations import (
    SlottedAggregates,
    compile_group_key,
    compile_output,
    compile_residual,
)
from .schema import RowSchema, SlottedRow, merge_gather_plan, merge_schemas


def provenance_key(alias: Optional[str]) -> str:
    """The hidden per-alias provenance column (same name as the dict path's)."""
    return f"__vid.{alias}"


class OwnRowSpec:
    """How one relation alias projects a tuple vertex into a slotted row."""

    __slots__ = ("alias", "columns", "schema")

    def __init__(self, alias: str, columns: Tuple[str, ...]) -> None:
        self.alias = alias
        self.columns = columns
        qualified = tuple(f"{alias}.{column}" for column in columns)
        self.schema = RowSchema(qualified + (provenance_key(alias),))

    def build(self, tuple_data: Dict[str, Any], ordinal: int) -> SlottedRow:
        return tuple(map(tuple_data.__getitem__, self.columns)) + (ordinal,)


@dataclass(frozen=True)
class CollectAction:
    """Compiled receive behaviour of one collection step.

    ``merge`` is None at attribute nodes (tables pass through by
    concatenation); at relation nodes it combines an incoming row with the
    vertex's own row.  ``prov_slot`` is the provenance column's slot in
    the *incoming* schema when present — rows whose recorded contributor
    for this alias is a different vertex are dropped, mirroring the dict
    path's ``row.get(provenance, vid) == vid`` check.
    """

    merge: Optional[Callable[[SlottedRow, SlottedRow], SlottedRow]] = None
    prov_slot: Optional[int] = None
    concat: bool = False  # merge is a plain tuple concatenation (fast path)
    identity: bool = False  # incoming row already carries this alias's columns
    #: per-output-slot gather recipe ``(take_from_incoming, source_slot)`` for
    #: overlapping merges; None for concat/identity/passthrough.  The
    #: vectorized kernel turns it into column gathers + own-value broadcasts.
    plan: Optional[Tuple[Tuple[bool, int], ...]] = None


@dataclass
class SlottedFragment:
    """Everything the slotted vertex program needs, compiled once per plan."""

    own: Dict[str, OwnRowSpec]  # alias -> own-row projection
    collect: Dict[int, CollectAction]  # schedule index -> compiled receive
    root_schema: RowSchema
    filters: Dict[str, Callable[[Dict[str, Any]], bool]]  # alias -> tuple-data predicate
    residual: Optional[Callable[[SlottedRow], bool]]
    output: Callable[[SlottedRow], Tuple[Any, ...]]
    output_columns: Tuple[str, ...]
    group_key: Callable[[SlottedRow], Tuple[Any, ...]]
    aggregates: Optional[SlottedAggregates]


def compile_slotted_fragment(config: Any, catalog: Catalog) -> Optional[SlottedFragment]:
    """Derive the slotted execution plan of one fragment config.

    Returns None when the config cannot be specialised (hand-built configs
    with open-ended ``required_columns``); the executor then runs the dict
    path for that fragment.
    """
    from ..core.vertex_program import Phase  # local: avoid import cycle at package init

    plan = config.plan

    # 1. own-row projections (one fixed shape per alias)
    own: Dict[str, OwnRowSpec] = {}
    for node in plan.relation_nodes():
        alias = node.alias
        required = config.required_columns.get(alias)
        if required is None:
            return None
        table_columns = catalog.schema(config.alias_tables[alias]).column_names
        # keep only columns the tuple vertices actually store, in a fixed
        # deterministic order (mirrors project_tuple's membership filter)
        columns = tuple(sorted(column for column in required if column in table_columns))
        own[alias] = OwnRowSpec(alias, columns)

    # 2. pushed-down filters, compiled against the raw tuple-data dict
    filters: Dict[str, Callable[[Dict[str, Any]], bool]] = {}
    for alias, predicates in config.filters.items():
        table = config.alias_tables.get(alias)
        table_columns = catalog.schema(table).column_names if table else ()
        compiled = compile_predicates(
            predicates,
            tuple_data_resolver(alias, table_columns),
            tuple_data_context(alias),
        )
        if compiled is not None:
            filters[alias] = compiled

    # 3. symbolic replay of the collection schedule: propagate schemas and
    #    compile one merge per step, exactly as rows will flow at run time
    schema_at: Dict[str, RowSchema] = {}
    collect: Dict[int, CollectAction] = {}
    for index, scheduled in enumerate(config.schedule):
        if scheduled.phase is not Phase.COLLECT:
            continue
        step = scheduled.step
        source_node = plan.node(step.source)
        target_node = plan.node(step.target)
        source_schema = schema_at.get(step.source)
        if source_schema is None:
            if not source_node.is_relation:
                return None  # malformed schedule; let the dict path handle it
            source_schema = own[source_node.alias].schema
        if not target_node.is_relation:
            collect[index] = CollectAction()
            schema_at[step.target] = source_schema
            continue
        own_spec = own[target_node.alias]
        prov_slot = source_schema.slot_or_none(provenance_key(target_node.alias))
        if all(column in source_schema for column in own_spec.schema.columns):
            # Euler re-ascent: the incoming rows already carry this alias's
            # columns, and the provenance filter (prov_slot is necessarily
            # set) guarantees they came from this very vertex's own row —
            # the merge is the identity on the incoming row.
            collect[index] = CollectAction(
                merge=lambda left, right: left, prov_slot=prov_slot, identity=True
            )
            schema_at[step.target] = source_schema
            continue
        merged_schema, merge = merge_schemas(source_schema, own_spec.schema)
        concat = not any(column in source_schema for column in own_spec.schema.columns)
        gather = None if concat else merge_gather_plan(source_schema, own_spec.schema)
        collect[index] = CollectAction(
            merge=merge, prov_slot=prov_slot, concat=concat, plan=gather
        )
        schema_at[step.target] = merged_schema

    # 4. the root's table schema is what assembly sees
    root_schema = schema_at.get(config.root_node_id)
    if root_schema is None:
        root_node = plan.node(config.root_node_id)
        if not root_node.is_relation:
            return None
        root_schema = own[root_node.alias].schema

    residual = compile_residual(config.residual_predicates, root_schema)
    output = compile_output(config.output_columns, root_schema)
    output_columns = tuple(column.alias for column in config.output_columns)
    group_key = compile_group_key(config.group_by_columns, root_schema)
    aggregates = (
        SlottedAggregates(config.aggregates, root_schema) if config.aggregates else None
    )

    return SlottedFragment(
        own=own,
        collect=collect,
        root_schema=root_schema,
        filters=filters,
        residual=residual,
        output=output,
        output_columns=output_columns,
        group_key=group_key,
        aggregates=aggregates,
    )
