"""Slot-compiling expression evaluator.

``compile_expression`` specialises one :class:`~repro.algebra.expressions.Expression`
tree into a closure over a *slotted row* (a plain tuple): column references
are resolved to slot indices once, LIKE patterns become precompiled
regexes, IN-lists over plain literals become frozenset membership tests,
and parameters keep their execution-time contextvar lookup so a compiled
predicate stays parameter-generic (one plan, many bindings — exactly like
the plan-cache fingerprints).

The compiler is *total*: expression kinds it cannot specialise — opaque
:class:`~repro.core.operations.CallablePredicate` closures, third-party
``Expression`` subclasses, references it cannot resolve at compile time —
fall back to rebuilding the dict row context and calling the expression's
own ``evaluate``, preserving exact dict-path semantics (including which
errors are raised, and when).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from ..algebra.expressions import (
    _ARITHMETIC,
    _COMPARISONS,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    like_regex,
)
from ..algebra.parameters import ParameterRef
from ..relational.types import NULL
from ..storage.rewrite import DecodeExpr, DictionaryPredicate
from .schema import RowSchema, SlotError

#: evaluation context handed to context-free expressions (parameters read
#: their value from the contextvar, not from the row context)
_EMPTY_CONTEXT: Dict[str, Any] = {}

Row = Any  # a slotted tuple, or whatever the resolver's accessors index into
Resolver = Callable[[ColumnRef], Callable[[Row], Any]]
ContextBuilder = Callable[[Row], Dict[str, Any]]
Compiled = Callable[[Row], Any]


def compile_expression(
    expression: Expression,
    resolve: Resolver,
    context_of: ContextBuilder,
) -> Compiled:
    """Compile ``expression`` into a closure over one row representation.

    Args:
        expression: the expression tree to specialise.
        resolve: maps a :class:`ColumnRef` to an accessor closure; raises
            :class:`~repro.exec.schema.SlotError` when the reference cannot
            be bound at compile time.
        context_of: rebuilds the dict row context for the fallback path.

    Never raises for unsupported shapes — unresolvable or unknown nodes
    compile to a dict-context fallback instead, so compilation cannot
    reject a query the dict path would have accepted.
    """
    try:
        return _compile(expression, resolve, context_of)
    except SlotError:
        return _fallback(expression, context_of)


def _fallback(expression: Expression, context_of: ContextBuilder) -> Compiled:
    evaluate = expression.evaluate
    return lambda row: evaluate(context_of(row))


def _compile(expression: Expression, resolve: Resolver, context_of: ContextBuilder) -> Compiled:
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row: value

    if isinstance(expression, ColumnRef):
        return resolve(expression)

    if isinstance(expression, ParameterRef):
        # the binding lives in a contextvar read per evaluation, so one
        # compiled plan serves every execution of a prepared statement
        evaluate = expression.evaluate
        return lambda row: evaluate(_EMPTY_CONTEXT)

    if isinstance(expression, Comparison):
        left = _compile(expression.left, resolve, context_of)
        right = _compile(expression.right, resolve, context_of)
        operate = _COMPARISONS[expression.op]

        def compare(row: Row) -> bool:
            left_value = left(row)
            right_value = right(row)
            if left_value is NULL or right_value is NULL:
                return False
            return operate(left_value, right_value)

        return compare

    if isinstance(expression, Arithmetic):
        left = _compile(expression.left, resolve, context_of)
        right = _compile(expression.right, resolve, context_of)
        operate = _ARITHMETIC[expression.op]

        def arithmetic(row: Row) -> Any:
            left_value = left(row)
            right_value = right(row)
            if left_value is NULL or right_value is NULL:
                return NULL
            return operate(left_value, right_value)

        return arithmetic

    if isinstance(expression, And):
        operands = tuple(_compile(op, resolve, context_of) for op in expression.operands)
        return lambda row: all(operand(row) for operand in operands)

    if isinstance(expression, Or):
        operands = tuple(_compile(op, resolve, context_of) for op in expression.operands)
        return lambda row: any(operand(row) for operand in operands)

    if isinstance(expression, Not):
        operand = _compile(expression.operand, resolve, context_of)
        return lambda row: not operand(row)

    if isinstance(expression, IsNull):
        operand = _compile(expression.operand, resolve, context_of)
        if expression.negated:
            return lambda row: operand(row) is not NULL
        return lambda row: operand(row) is NULL

    if isinstance(expression, InList):
        return _compile_in_list(expression, resolve, context_of)

    if isinstance(expression, Between):
        operand = _compile(expression.operand, resolve, context_of)
        low = _compile(expression.low, resolve, context_of)
        high = _compile(expression.high, resolve, context_of)

        def between(row: Row) -> bool:
            value = operand(row)
            low_value = low(row)
            high_value = high(row)
            if value is NULL or low_value is NULL or high_value is NULL:
                return False
            return low_value <= value <= high_value

        return between

    if isinstance(expression, Like):
        operand = _compile(expression.operand, resolve, context_of)
        pattern = like_regex(expression.pattern)
        negated = expression.negated

        def like(row: Row) -> bool:
            value = operand(row)
            if value is NULL:
                return False
            matched = pattern.fullmatch(str(value)) is not None
            return not matched if negated else matched

        return like

    if isinstance(expression, DecodeExpr):
        operand = _compile(expression.operand, resolve, context_of)
        decode = expression.codec.decode
        return lambda row: decode(operand(row))

    if isinstance(expression, DictionaryPredicate):
        # dictionary side-table lookup: the operand stays an int32 code,
        # the precomputed bool table answers range/LIKE in O(1) per row
        operand = _compile(expression.operand, resolve, context_of)
        test = expression.table.test
        return lambda row: test(operand(row))

    # CallablePredicate, third-party subclasses: evaluate via the rebuilt
    # dict context — correctness over speed for the extensible tail
    return _fallback(expression, context_of)


def _compile_in_list(expression: InList, resolve: Resolver, context_of: ContextBuilder) -> Compiled:
    operand = _compile(expression.operand, resolve, context_of)
    negated = expression.negated
    if not any(isinstance(item, Expression) for item in expression.values):
        try:
            members = frozenset(expression.values)
        except TypeError:
            members = None
        if members is not None:

            def in_set(row: Row) -> bool:
                value = operand(row)
                if value is NULL:
                    return False
                return (value not in members) if negated else (value in members)

            return in_set

    items = tuple(
        _compile(item, resolve, context_of) if isinstance(item, Expression) else None
        for item in expression.values
    )
    plain = tuple(expression.values)

    def in_list(row: Row) -> bool:
        value = operand(row)
        if value is NULL:
            return False
        result = any(
            value == (compiled(row) if compiled is not None else plain[index])
            for index, compiled in enumerate(items)
        )
        return not result if negated else result

    return in_list


# ----------------------------------------------------------------------
# resolvers: how a ColumnRef binds to a row representation
# ----------------------------------------------------------------------
def slot_resolver(schema: RowSchema) -> Resolver:
    """Bind column references to slots of a :class:`RowSchema` tuple row."""

    def resolve(ref: ColumnRef) -> Compiled:
        slot = schema.resolve(ref.column, ref.table)
        return lambda row: row[slot]

    return resolve


def tuple_data_resolver(alias: str, columns: Sequence[str]) -> Resolver:
    """Bind column references to keys of a tuple vertex's raw data dict.

    The dict path qualifies every column of a tuple vertex into a fresh
    ``{alias.column: value}`` context before evaluating pushed-down
    filters; compiled filters read the vertex's stored ``tuple`` property
    directly, skipping the per-row context construction entirely.
    """
    known = frozenset(columns)

    def resolve(ref: ColumnRef) -> Compiled:
        if ref.table is not None and ref.table != alias:
            raise SlotError(f"filter for {alias!r} references {ref.qualified!r}")
        if ref.column not in known:
            raise SlotError(f"unknown column {ref.qualified!r} on alias {alias!r}")
        column = ref.column
        return lambda data: data[column]

    return resolve


def tuple_data_context(alias: str) -> ContextBuilder:
    """Fallback context for filters: the alias-qualified view of a tuple.

    Delegates to the dict path's own qualification helper so the two
    representations share one definition of the row context format.
    """
    # local import: repro.core.operations pulls in the core package, which
    # transitively imports repro.exec during its own initialisation
    from ..core.operations import row_context_for_tuple

    return lambda data: row_context_for_tuple(alias, data)


def compile_predicates(
    predicates: Sequence[Expression],
    resolve: Resolver,
    context_of: ContextBuilder,
) -> Optional[Compiled]:
    """AND-compile a predicate list into one boolean closure (None if empty)."""
    if not predicates:
        return None
    compiled = [compile_expression(predicate, resolve, context_of) for predicate in predicates]
    if len(compiled) == 1:
        return compiled[0]
    compiled_tuple = tuple(compiled)
    return lambda row: all(predicate(row) for predicate in compiled_tuple)
