"""Slotted-row execution: the compiled TAG-join hot path.

This package replaces dict-per-row processing on the TAG-join inner loop
with tuples shaped by compile-time :class:`RowSchema` objects:

* :mod:`repro.exec.schema` — column -> slot mapping and merge compilation;
* :mod:`repro.exec.expr` — slot-compiling expression evaluator (with a
  dict-context fallback for opaque predicates);
* :mod:`repro.exec.operations` — slotted aggregates, outputs, group keys;
* :mod:`repro.exec.fragment` — per-plan symbolic schedule replay producing
  a :class:`SlottedFragment`;
* :mod:`repro.exec.program` — the slotted vertex program itself;
* :mod:`repro.exec.vectorized` — the columnar (struct-of-arrays) superstep
  kernel layered on the slotted substrate (imported lazily; enable with
  ``TagJoinExecutor(use_vectorized_kernel=True)`` or engine
  ``tag_vectorized``).

The public query API is unchanged: results still surface as dict rows;
``TagJoinExecutor(use_slotted_rows=False)`` opts a fragment back onto the
dict path (and ``cross_check_rows=True`` runs both, asserting equality).
"""

from .expr import compile_expression, compile_predicates, slot_resolver
from .fragment import SlottedFragment, compile_slotted_fragment, provenance_key
from .operations import SlottedAggregates, compile_group_key, compile_output, deduplicate_rows
from .program import SlottedTagJoinProgram, register_slotted_group_aggregator
from .schema import RowSchema, SlotError, merge_schemas

__all__ = [
    "RowSchema",
    "SlotError",
    "SlottedAggregates",
    "SlottedFragment",
    "SlottedTagJoinProgram",
    "compile_expression",
    "compile_group_key",
    "compile_output",
    "compile_predicates",
    "compile_slotted_fragment",
    "deduplicate_rows",
    "merge_schemas",
    "provenance_key",
    "register_slotted_group_aggregator",
    "slot_resolver",
]
