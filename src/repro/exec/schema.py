"""Slotted row schemas: the compile-time column -> slot-index mapping.

The TAG-join hot path historically shipped every intermediate result row
as a ``Dict[str, Any]`` keyed by qualified column names, paying a dict
allocation plus per-column f-string formatting and hashing for every row
of every superstep.  A :class:`RowSchema` moves all of that name/shape
resolution to plan-compile time: it fixes the column order of one row
*shape* once, so at run time a row is a plain Python tuple and every
access is slot arithmetic (``row[3]`` instead of ``row["l.L_QTY"]``).

Schemas compose the same way the dict rows did:

* a relation node's *own row* schema is its alias-qualified projection
  plus the hidden provenance column;
* merging two partial-result schemas mirrors ``dict(left).update(right)``
  ordering — left columns keep their position (right values win on
  overlap), new right columns are appended — so the slotted path produces
  byte-identical logical rows to the dict path.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

SlottedRow = Tuple[Any, ...]


class SlotError(KeyError):
    """Raised when a column cannot be resolved to a slot at compile time."""


class RowSchema:
    """An immutable, ordered mapping ``qualified column name -> slot index``."""

    __slots__ = ("columns", "_slots")

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self._slots: Dict[str, int] = {name: i for i, name in enumerate(self.columns)}
        if len(self._slots) != len(self.columns):
            raise SlotError(f"duplicate column names in schema: {self.columns}")

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowSchema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowSchema({', '.join(self.columns)})"

    # ------------------------------------------------------------------
    # slot resolution
    # ------------------------------------------------------------------
    def slot(self, name: str) -> int:
        """The slot of an exactly-named column; raises :class:`SlotError`."""
        try:
            return self._slots[name]
        except KeyError:
            raise SlotError(f"unknown column {name!r} (schema: {self.columns})") from None

    def slot_or_none(self, name: str) -> Optional[int]:
        return self._slots.get(name)

    def resolve(self, column: str, table: Optional[str] = None) -> int:
        """Resolve a (possibly unqualified) column reference to a slot.

        Mirrors ``ColumnRef.evaluate`` against a dict row context exactly:
        the qualified name wins, an unqualified name falls back to a
        *unique* ``alias.column`` suffix match, and ambiguity is an error
        — resolved once here instead of once per row at execution time.
        """
        qualified = f"{table}.{column}" if table else column
        slot = self._slots.get(qualified)
        if slot is not None:
            return slot
        if table is None:
            suffix = f".{column}"
            matches = [i for name, i in self._slots.items() if name.endswith(suffix)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise SlotError(f"ambiguous column {column!r} in schema {self.columns}")
        raise SlotError(f"unresolved column {qualified!r} (schema: {self.columns})")

    def getter(self, name: str) -> Callable[[SlottedRow], Any]:
        """A slot accessor for one exactly-named column."""
        return itemgetter(self.slot(name))

    # ------------------------------------------------------------------
    # boundary conversion
    # ------------------------------------------------------------------
    def to_dict(self, row: SlottedRow) -> Dict[str, Any]:
        """Dict view of one slotted row (boundary / debugging use only)."""
        return dict(zip(self.columns, row))

    def context_builder(self) -> Callable[[SlottedRow], Dict[str, Any]]:
        """A converter producing the dict row context of a slotted row.

        Used as the escape hatch for expressions the slot compiler cannot
        specialise (opaque callables, third-party Expression subclasses):
        they still evaluate correctly, just at dict-path speed.
        """
        columns = self.columns
        return lambda row: dict(zip(columns, row))


def merge_schemas(
    left: RowSchema, right: RowSchema
) -> Tuple[RowSchema, Callable[[SlottedRow, SlottedRow], SlottedRow]]:
    """Compile the slotted counterpart of ``ops.merge_rows`` for two schemas.

    Returns the merged schema plus a ``merge(left_row, right_row)``
    closure.  Ordering matches ``dict(left); dict.update(right)``: left
    columns keep their positions (right values override on overlap), new
    right columns are appended.  The disjoint case — the overwhelmingly
    common one on the TAG-join collection path — compiles to a plain
    tuple concatenation.
    """
    overlap = [name for name in right.columns if name in left]
    if not overlap:
        merged = RowSchema(left.columns + right.columns)
        return merged, lambda left_row, right_row: left_row + right_row

    appended = tuple(name for name in right.columns if name not in left)
    merged = RowSchema(left.columns + appended)
    plan = merge_gather_plan(left, right)

    def merge(left_row: SlottedRow, right_row: SlottedRow) -> SlottedRow:
        return tuple(
            left_row[index] if from_left else right_row[index] for from_left, index in plan
        )

    return merged, merge


def merge_gather_plan(
    left: RowSchema, right: RowSchema
) -> Tuple[Tuple[bool, int], ...]:
    """The gather recipe behind :func:`merge_schemas`, as inspectable data.

    One ``(take_from_left, slot_in_source)`` pair per merged output slot —
    the form the vectorized kernel consumes directly (a left entry becomes
    a column gather of the incoming batch, a right entry a broadcast of the
    vertex's own value).
    """
    appended = tuple(name for name in right.columns if name not in left)
    merged_columns = left.columns + appended
    return tuple(
        (False, right.slot(name)) if name in right else (True, left.slot(name))
        for name in merged_columns
    )
