"""Slotted counterparts of :mod:`repro.core.operations`.

Where the dict path re-resolves aggregate arguments, output expressions
and GROUP BY keys by name for every row, these helpers compile each of
them once per fragment into slot-index closures.  Partial aggregates are
plain lists indexed by aggregate position (instead of dicts keyed by
alias), and a vertex's local accumulation mutates its own partial in
place — only cross-vertex merges (which the BSP aggregator must keep
associative and side-effect free) allocate.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from ..algebra.expressions import ColumnRef, Expression
from ..algebra.logical import AggFunc, AggregateSpec, OutputColumn
from ..relational.types import NULL
from .expr import Compiled, compile_expression, slot_resolver
from .schema import RowSchema, SlotError, SlottedRow

Partial = List[Any]


class SlottedAggregates:
    """Aggregate machinery compiled against one row schema.

    Partial payloads are lists with one slot per aggregate spec, in spec
    order; the representations per function mirror the dict path exactly
    (``(sum, count)`` for AVG, a value set for COUNT DISTINCT — mutable
    here, since a partial is owned by exactly one accumulator until it is
    merged).
    """

    __slots__ = ("specs", "_arguments", "_functions")

    def __init__(self, aggregates: Sequence[AggregateSpec], schema: RowSchema) -> None:
        self.specs: Tuple[AggregateSpec, ...] = tuple(aggregates)
        resolve = slot_resolver(schema)
        context_of = schema.context_builder()
        self._arguments: Tuple[Optional[Compiled], ...] = tuple(
            compile_expression(spec.argument, resolve, context_of)
            if spec.argument is not None
            else None
            for spec in self.specs
        )
        self._functions: Tuple[AggFunc, ...] = tuple(spec.function for spec in self.specs)

    # ------------------------------------------------------------------
    def empty(self) -> Partial:
        partial: Partial = []
        for function in self._functions:
            if function in (AggFunc.COUNT, AggFunc.SUM):
                partial.append(0)
            elif function is AggFunc.AVG:
                partial.append((0, 0))
            elif function in (AggFunc.MIN, AggFunc.MAX):
                partial.append(None)
            elif function is AggFunc.COUNT_DISTINCT:
                partial.append(set())
            else:  # pragma: no cover - exhaustive over AggFunc
                raise ValueError(f"unsupported aggregate {function}")
        return partial

    def accumulate(self, partial: Partial, row: SlottedRow) -> None:
        """Fold one row into ``partial`` **in place** (the caller owns it)."""
        for index, function in enumerate(self._functions):
            argument = self._arguments[index]
            if argument is None:
                if function is AggFunc.COUNT:
                    partial[index] += 1
                continue
            value = argument(row)
            if value is NULL:
                continue
            if function is AggFunc.COUNT:
                partial[index] += 1
            elif function is AggFunc.SUM:
                partial[index] += value
            elif function is AggFunc.AVG:
                total, count = partial[index]
                partial[index] = (total + value, count + 1)
            elif function is AggFunc.MIN:
                current = partial[index]
                if current is None or value < current:
                    partial[index] = value
            elif function is AggFunc.MAX:
                current = partial[index]
                if current is None or value > current:
                    partial[index] = value
            elif function is AggFunc.COUNT_DISTINCT:
                partial[index].add(value)

    def merge(self, left: Partial, right: Partial) -> Partial:
        """Combine two partials into a fresh one (associative, no mutation)."""
        merged: Partial = []
        for index, function in enumerate(self._functions):
            left_value, right_value = left[index], right[index]
            if function in (AggFunc.COUNT, AggFunc.SUM):
                merged.append(left_value + right_value)
            elif function is AggFunc.AVG:
                merged.append(
                    (left_value[0] + right_value[0], left_value[1] + right_value[1])
                )
            elif function in (AggFunc.MIN, AggFunc.MAX):
                candidates = [v for v in (left_value, right_value) if v is not None]
                if not candidates:
                    merged.append(None)
                elif function is AggFunc.MIN:
                    merged.append(min(candidates))
                else:
                    merged.append(max(candidates))
            elif function is AggFunc.COUNT_DISTINCT:
                merged.append(left_value | right_value)
        return merged

    def finalize(self, partial: Partial) -> Tuple[Any, ...]:
        """Final aggregate values, in spec order."""
        final: List[Any] = []
        for index, function in enumerate(self._functions):
            value = partial[index]
            if function is AggFunc.AVG:
                total, count = value
                final.append(total / count if count else NULL)
            elif function is AggFunc.COUNT_DISTINCT:
                final.append(len(value))
            elif function in (AggFunc.MIN, AggFunc.MAX):
                final.append(value if value is not None else NULL)
            else:
                final.append(value)
        return tuple(final)

    @property
    def aliases(self) -> Tuple[str, ...]:
        return tuple(spec.alias for spec in self.specs)


# ----------------------------------------------------------------------
# outputs, group keys, residuals
# ----------------------------------------------------------------------
def compile_output(
    output_columns: Sequence[OutputColumn], schema: RowSchema
) -> Callable[[SlottedRow], Tuple[Any, ...]]:
    """Compile a SELECT list into one row -> output-tuple closure.

    The common all-plain-columns case collapses into a single
    ``operator.itemgetter`` call — one C-level slot gather per row.
    """
    if not output_columns:
        return lambda row: ()
    if all(isinstance(column.expression, ColumnRef) for column in output_columns):
        try:
            slots = [
                schema.resolve(column.expression.column, column.expression.table)
                for column in output_columns
            ]
        except SlotError:
            slots = None
        if slots is not None:
            if len(slots) == 1:
                getter = itemgetter(slots[0])
                return lambda row: (getter(row),)
            return itemgetter(*slots)

    resolve = slot_resolver(schema)
    context_of = schema.context_builder()
    compiled = tuple(
        compile_expression(column.expression, resolve, context_of)
        for column in output_columns
    )
    return lambda row: tuple(expression(row) for expression in compiled)


def compile_group_key(
    group_columns: Sequence[str], schema: RowSchema
) -> Callable[[SlottedRow], Tuple[Any, ...]]:
    """Compile qualified GROUP BY column names into a key extractor.

    Mirrors ``ops.group_key`` (``row.get(column)``): a column missing from
    the schema contributes a constant None, never an error.
    """
    if not group_columns:
        return lambda row: ()
    slots = [schema.slot_or_none(column) for column in group_columns]
    if all(slot is not None for slot in slots):
        if len(slots) == 1:
            getter = itemgetter(slots[0])
            return lambda row: (getter(row),)
        return itemgetter(*slots)
    slot_tuple = tuple(slots)
    return lambda row: tuple(
        row[slot] if slot is not None else None for slot in slot_tuple
    )


def compile_residual(
    predicates: Sequence[Expression], schema: RowSchema
) -> Optional[Callable[[SlottedRow], bool]]:
    """AND-compile residual predicates against the root row schema."""
    if not predicates:
        return None
    resolve = slot_resolver(schema)
    context_of = schema.context_builder()
    compiled = tuple(
        compile_expression(predicate, resolve, context_of) for predicate in predicates
    )
    if len(compiled) == 1:
        return compiled[0]
    return lambda row: all(predicate(row) for predicate in compiled)


def deduplicate_rows(rows: Sequence[SlottedRow]) -> List[SlottedRow]:
    """SELECT DISTINCT over slotted rows: tuples are their own hash keys."""
    seen: Set[SlottedRow] = set()
    unique: List[SlottedRow] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique
