"""The slotted TAG-join vertex program: Algorithm 2 over tuple rows.

:class:`SlottedTagJoinProgram` executes the same three-phase schedule as
:class:`~repro.core.vertex_program.TagJoinProgram` — the reduction and
collection logic, supersteps and message topology are identical — but
every intermediate result row is a plain tuple shaped by the compile-time
:class:`~repro.exec.fragment.SlottedFragment`:

* pushed-down filters run directly over a tuple vertex's stored data
  (no per-vertex row-context dict is ever built);
* the collection phase's joins are precompiled merges — tuple
  concatenation in the common case — gated by a slot-indexed provenance
  check;
* messages are shipped through the batched
  :meth:`~repro.bsp.engine.SuperstepContext.send_to_many`, one payload
  sizing per fan-out instead of one per edge;
* result assembly evaluates slot-compiled residuals/outputs/aggregates
  and accumulates output rows as tuples; the executor converts to the
  public dict rows once, at the result boundary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..algebra.logical import AggregationClass
from ..bsp.aggregators import GroupAggregator
from ..bsp.engine import BSPEngine, SuperstepContext
from ..bsp.graph import Graph, Vertex
from ..core.vertex_program import (
    _MARKED_KEY,
    _VALUE_KEY,
    GLOBAL_GROUPS_AGGREGATOR,
    GLOBAL_OUTPUT_AGGREGATOR,
    FragmentConfig,
    Phase,
    ScheduledStep,
    TagJoinProgram,
)
from ..tag.encoder import TUPLE_DATA_KEY, TagGraph
from .fragment import SlottedFragment
from .operations import SlottedAggregates
from .schema import SlottedRow


class SlottedTagJoinProgram(TagJoinProgram):
    """Vertex-centric TAG-join over slotted (tuple) rows.

    ``output_rows`` and ``local_groups`` hold tuples here (shaped by
    ``slotted.output_columns`` / + aggregate aliases); the executor owns
    the conversion to public dict rows.
    """

    def __init__(
        self, graph: TagGraph, config: FragmentConfig, slotted: SlottedFragment
    ) -> None:
        super().__init__(graph, config)
        self.slotted = slotted
        self.output_rows: List[SlottedRow] = []
        self.local_groups: List[SlottedRow] = []

    # ------------------------------------------------------------------
    # lifecycle (same schedule drive as the dict program, with the step
    # index threaded through so receives can look up their compiled action)
    # ------------------------------------------------------------------
    def compute(
        self,
        vertex: Vertex,
        messages: List[Any],
        graph: Graph,
        context: SuperstepContext,
    ) -> None:
        superstep = context.superstep
        schedule = self.config.schedule

        if superstep == 0:
            if not schedule:
                self._assemble(vertex, self._initial_value(vertex, self._start_node), context)
                return
            self._send(vertex, schedule[0], context, is_initial=True)
            return

        received = schedule[superstep - 1]
        accepted = self._receive_indexed(vertex, superstep - 1, received, messages, context)
        if not accepted:
            return
        if superstep < len(schedule):
            self._send(vertex, schedule[superstep], context)
        else:
            rows = context.state(vertex).get(_VALUE_KEY, {}).get(received.step.target, [])
            self._assemble(vertex, rows, context)

    # ------------------------------------------------------------------
    # receive
    # ------------------------------------------------------------------
    def _receive_indexed(
        self,
        vertex: Vertex,
        step_index: int,
        scheduled: ScheduledStep,
        messages: List[Any],
        context: SuperstepContext,
    ) -> bool:
        step = scheduled.step
        target_node = self.config.plan.node(step.target)
        context.charge(len(messages))

        if scheduled.phase in (Phase.REDUCE_UP, Phase.REDUCE_DOWN):
            if target_node.is_relation and not self._tuple_passes_filters(
                vertex, target_node.alias
            ):
                return False
            marked = context.state(vertex).setdefault(_MARKED_KEY, {})
            marked[step.edge.edge_id] = set(messages)
            return True

        # collection: combine incoming tables per the compiled step action.
        # A single incoming table — the common case at relation vertices —
        # is consumed as-is; tables are never mutated after delivery, so
        # sharing the sender's list is safe.
        if len(messages) == 1:
            incoming: List[SlottedRow] = messages[0]
        else:
            incoming = []
            for table in messages:
                incoming.extend(table)
        action = self.slotted.collect[step_index]
        if action.merge is None:
            rows = incoming
        else:
            own_row = self._own_row(vertex, target_node)
            if incoming:
                vid = vertex.ordinal
                prov_slot = action.prov_slot
                if action.identity:
                    rows = [row for row in incoming if row[prov_slot] == vid]
                elif prov_slot is None:
                    if action.concat:
                        rows = [row + own_row for row in incoming]
                    else:
                        merge = action.merge
                        rows = [merge(row, own_row) for row in incoming]
                elif action.concat:
                    rows = [row + own_row for row in incoming if row[prov_slot] == vid]
                else:
                    merge = action.merge
                    rows = [
                        merge(row, own_row) for row in incoming if row[prov_slot] == vid
                    ]
            else:
                rows = [own_row]
        context.charge(len(rows))
        values = context.state(vertex).setdefault(_VALUE_KEY, {})
        values[step.target] = rows
        return True

    # ------------------------------------------------------------------
    # send (batched: one payload, many targets)
    # ------------------------------------------------------------------
    def _send(
        self,
        vertex: Vertex,
        scheduled: ScheduledStep,
        context: SuperstepContext,
        is_initial: bool = False,
    ) -> None:
        step = scheduled.step
        targets = self.graph.edge_targets(vertex.vertex_id, step.label)
        context.charge(len(targets))

        if scheduled.phase is Phase.REDUCE_UP:
            context.send_to_many(targets, vertex.vertex_id)
            return

        marked = context.state(vertex).get(_MARKED_KEY, {}).get(step.edge.edge_id, set())
        if scheduled.phase is Phase.REDUCE_DOWN:
            context.send_to_many(
                [target for target in targets if target in marked],
                vertex.vertex_id,
            )
            return

        source_node = self.config.plan.node(step.source)
        values = context.state(vertex).get(_VALUE_KEY, {})
        table = values.get(step.source)
        if table is None and source_node.is_relation:
            table = [self._own_row(vertex, source_node)]
        if not table:
            return
        context.send_to_many(
            [target for target in targets if target in marked], table
        )

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _assemble(
        self,
        vertex: Vertex,
        rows: List[SlottedRow],
        context: SuperstepContext,
    ) -> None:
        config = self.config
        slotted = self.slotted
        if slotted.residual is not None:
            residual = slotted.residual
            rows = [row for row in rows if residual(row)]
        if not rows:
            return
        context.charge(len(rows))

        if config.aggregation_class is AggregationClass.NONE:
            output = slotted.output
            produced = [output(row) for row in rows]
            if config.collect_output_centrally:
                for row in produced:
                    context.aggregate(GLOBAL_OUTPUT_AGGREGATOR, row)
            self.output_rows.extend(produced)
            return

        aggregates = slotted.aggregates
        if config.aggregation_class is AggregationClass.LOCAL:
            partial = aggregates.empty()
            for row in rows:
                aggregates.accumulate(partial, row)
            self.local_groups.append(
                slotted.output(rows[0]) + aggregates.finalize(partial)
            )
            return

        # GLOBAL / SCALAR: contribute (key, (partial, sample)) payloads
        group_key = slotted.group_key
        if config.eager_partial_aggregation:
            by_group: Dict[Tuple[Any, ...], List[Any]] = {}
            samples: Dict[Tuple[Any, ...], SlottedRow] = {}
            for row in rows:
                key = group_key(row)
                partial = by_group.get(key)
                if partial is None:
                    by_group[key] = partial = aggregates.empty()
                    samples[key] = row
                aggregates.accumulate(partial, row)
            for key, partial in by_group.items():
                context.aggregate(GLOBAL_GROUPS_AGGREGATOR, (key, (partial, samples[key])))
        else:
            for row in rows:
                partial = aggregates.empty()
                aggregates.accumulate(partial, row)
                context.aggregate(GLOBAL_GROUPS_AGGREGATOR, (group_key(row), (partial, row)))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tuple_passes_filters(self, vertex: Vertex, alias: Optional[str]) -> bool:
        if alias is None:
            return True
        predicate = self.slotted.filters.get(alias)
        if predicate is None:
            return True
        tuple_data = vertex.properties.get(TUPLE_DATA_KEY)
        if tuple_data is None:
            return True
        return predicate(tuple_data)

    def _own_row(self, vertex: Vertex, node) -> SlottedRow:
        # provenance is the graph-assigned integer ordinal, not the string
        # vertex id: it keeps the hidden provenance column native int64
        # when the vectorized program columnarises a table
        return self.slotted.own[node.alias].build(
            vertex.properties[TUPLE_DATA_KEY], vertex.ordinal
        )

    def _initial_value(self, vertex: Vertex, node) -> List[SlottedRow]:
        if not self._tuple_passes_filters(vertex, node.alias):
            return []
        return [self._own_row(vertex, node)]


def register_slotted_group_aggregator(
    engine: BSPEngine, aggregates: SlottedAggregates
) -> None:
    """Register the global GROUP BY aggregator for slotted partial payloads.

    Payloads are ``(group_key, (partial_list, sample_row))``; merging is the
    compiled :meth:`SlottedAggregates.merge`, which never mutates its inputs
    (the aggregator requirement the dict path satisfies with fresh dicts).
    """

    def combine(current: Any, update: Any) -> Any:
        if current == 0:  # the GroupAggregator's neutral element
            return update
        return (aggregates.merge(current[0], update[0]), current[1])

    engine.register_aggregator(GroupAggregator(GLOBAL_GROUPS_AGGREGATOR, combine=combine))


__all__ = [
    "SlottedTagJoinProgram",
    "register_slotted_group_aggregator",
]
