"""Vectorized aggregates, GROUP BY factorization and group keys.

Per-vertex aggregation folds a whole :class:`ColumnBatch` at once: every
aggregate argument is evaluated column-wise exactly once per batch, groups
are factorized with ``np.unique`` (native single-column keys) or one hash
pass (everything else), and each group's reduction runs over an index
gather of the argument column.

The *partial* payload format is exactly
:class:`~repro.exec.operations.SlottedAggregates`' — a list with one entry
per aggregate spec — so cross-vertex merging and finalisation reuse the
slotted machinery unchanged, and the global-aggregator protocol is
identical across both compiled representations.

Determinism note: SUM/AVG accumulate with a *sequential left-to-right*
Python ``sum`` over the gathered values (a single C-level loop), not
``np.sum`` — numpy's pairwise summation would differ from the row-at-a-time
paths in the last float ulps, and the differential harness asserts exact
equality between the TAG representations.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ...algebra.logical import AggFunc, AggregateSpec
from ...relational.types import NULL
from ..operations import Partial, SlottedAggregates
from ..schema import RowSchema, SlottedRow
from .batch import ColumnBatch
from .expr import BatchCompiled, compile_batch_expression


def factorize_groups(
    key_columns: Sequence["np.ndarray"], length: int
) -> List[Tuple[Tuple[Any, ...], "np.ndarray"]]:
    """Split a batch into groups: ``[(key_tuple, row_indices), ...]``.

    Single native-dtype keys factorize entirely inside numpy
    (``np.unique(return_inverse=True)`` + a stable argsort of the inverse);
    object or multi-column keys fall back to one hash pass over the zipped
    key values.  Row indices always come back in row order, so the first
    index of each group is the group's first-occurrence sample — the same
    sample the row-at-a-time paths pick.
    """
    if not key_columns:
        return [((), np.arange(length))]
    if len(key_columns) == 1 and key_columns[0].dtype.kind in "biuf":
        column = key_columns[0]
        uniques, inverse = np.unique(column, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(inverse[order], np.arange(len(uniques)))
        splits = np.split(order, boundaries[1:])
        keys = uniques.tolist()
        return [((key,), indices) for key, indices in zip(keys, splits)]
    by_key: dict = {}
    for index, key in enumerate(zip(*[column.tolist() for column in key_columns])):
        bucket = by_key.get(key)
        if bucket is None:
            by_key[key] = bucket = []
        bucket.append(index)
    return [
        (key, np.asarray(indices, dtype=np.intp)) for key, indices in by_key.items()
    ]


def compile_batch_group_key(
    group_columns: Sequence[str], schema: RowSchema
) -> Callable[[ColumnBatch], List["np.ndarray"]]:
    """Compile qualified GROUP BY names into a batch -> key-columns closure.

    Mirrors the slotted rule (``row.get``): a column missing from the
    schema contributes a constant-None key column, never an error.
    """
    slots = [schema.slot_or_none(column) for column in group_columns]

    def key_columns(batch: ColumnBatch) -> List["np.ndarray"]:
        columns: List["np.ndarray"] = []
        for slot in slots:
            if slot is None:
                columns.append(np.full(batch.length, None, dtype=object))
            else:
                columns.append(batch.arrays[slot])
        return columns

    return key_columns


class VectorizedAggregates:
    """Whole-batch aggregate evaluation producing slotted-compatible partials."""

    __slots__ = ("slotted", "_arguments", "_functions")

    def __init__(
        self, aggregates: Sequence[AggregateSpec], schema: RowSchema, slotted: SlottedAggregates
    ) -> None:
        self.slotted = slotted  # merge/finalize/aliases delegate here
        self._functions: Tuple[AggFunc, ...] = tuple(
            spec.function for spec in aggregates
        )
        self._arguments: Tuple[Optional[BatchCompiled], ...] = tuple(
            compile_batch_expression(spec.argument, schema)
            if spec.argument is not None
            else None
            for spec in aggregates
        )

    # ------------------------------------------------------------------
    def argument_columns(self, batch: ColumnBatch) -> List[Optional[List[Any]]]:
        """Evaluate every aggregate argument once over the whole batch.

        Returns plain Python lists (row order preserved); ``None`` entries
        are argument-less COUNT(*) specs.
        """
        columns: List[Optional[List[Any]]] = []
        for argument in self._arguments:
            if argument is None:
                columns.append(None)
                continue
            value = argument(batch)
            if isinstance(value, np.ndarray):
                columns.append(value.tolist())
            else:
                columns.append([value] * batch.length)
        return columns

    def partial_for(
        self, indices: "np.ndarray", columns: Sequence[Optional[List[Any]]]
    ) -> Partial:
        """One group's partial payload, gathered from the argument columns."""
        partial: Partial = []
        index_list = indices.tolist()
        for position, function in enumerate(self._functions):
            column = columns[position]
            if column is None:
                # argument-less specs: COUNT(*) counts the group, anything
                # else keeps its neutral element (mirrors the row-at-a-time
                # accumulate, which skips specs without an argument)
                if function is AggFunc.COUNT:
                    partial.append(len(index_list))
                elif function is AggFunc.AVG:
                    partial.append((0, 0))
                elif function in (AggFunc.MIN, AggFunc.MAX):
                    partial.append(None)
                elif function is AggFunc.COUNT_DISTINCT:
                    partial.append(set())
                else:
                    partial.append(0)
                continue
            values = [
                value
                for value in (column[index] for index in index_list)
                if value is not NULL
            ]
            if function is AggFunc.COUNT:
                partial.append(len(values))
            elif function is AggFunc.SUM:
                partial.append(sum(values) if values else 0)
            elif function is AggFunc.AVG:
                partial.append((sum(values) if values else 0, len(values)))
            elif function is AggFunc.MIN:
                partial.append(min(values) if values else None)
            elif function is AggFunc.MAX:
                partial.append(max(values) if values else None)
            elif function is AggFunc.COUNT_DISTINCT:
                partial.append(set(values))
            else:  # pragma: no cover - exhaustive over AggFunc
                raise ValueError(f"unsupported aggregate {function}")
        return partial

    def batch_partial(self, batch: ColumnBatch) -> Partial:
        """The whole batch folded into one partial (LOCAL aggregation)."""
        return self.partial_for(
            np.arange(batch.length), self.argument_columns(batch)
        )

    # slotted-compatible surface --------------------------------------
    def merge(self, left: Partial, right: Partial) -> Partial:
        return self.slotted.merge(left, right)

    def finalize(self, partial: Partial) -> Tuple[Any, ...]:
        return self.slotted.finalize(partial)

    @property
    def aliases(self) -> Tuple[str, ...]:
        return self.slotted.aliases


def first_row_output(
    output_slots: Optional[Sequence[int]],
    output: Callable[[SlottedRow], Tuple[Any, ...]],
    batch: ColumnBatch,
    index: int,
) -> Tuple[Any, ...]:
    """Evaluate the output list on one row of a batch (LOCAL group heads)."""
    row = batch.row(index)
    if output_slots is not None:
        return tuple(row[slot] for slot in output_slots)
    return output(row)
