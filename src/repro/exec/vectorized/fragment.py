"""Compile the batch-level execution plan of one TAG-join fragment.

A :class:`VectorizedFragment` is the columnar twin of a
:class:`~repro.exec.fragment.SlottedFragment` and is derived *from* one:
the slotted compiler already fixed every intermediate table's
:class:`~repro.exec.schema.RowSchema` and every collection step's merge
recipe, so all that is left here is compiling the fragment-level row
operators — residual predicates, the SELECT list, the GROUP BY key and the
aggregates — into whole-batch closures.

The per-step collection behaviour needs no separate compilation: the
vectorized program reads the same
:class:`~repro.exec.fragment.CollectAction` table the slotted program
runs from (``identity`` -> provenance mask, ``concat`` -> gather + own
broadcast, ``plan`` -> column gather plan), which guarantees the two
representations can never disagree about the shape of a step.

Like the slotted plan, the compiled result rides inside the cached
:class:`~repro.core.compiler.CompiledFragment`, so a plan-cache hit hands
back ready-to-run batch closures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ...algebra.expressions import ColumnRef
from ..fragment import SlottedFragment
from ..schema import SlotError
from .batch import HAVE_NUMPY, ColumnBatch
from .expr import compile_batch_outputs, compile_batch_predicates
from .operations import VectorizedAggregates, compile_batch_group_key


@dataclass
class VectorizedFragment:
    """Batch-level operators of one fragment, compiled once per plan."""

    #: AND of the residual predicates as one batch -> bool-mask closure
    residual: Optional[Callable[[ColumnBatch], Any]]
    #: SELECT list as a batch -> output-columns closure
    outputs: Callable[[ColumnBatch], List[Any]]
    #: output slots when every output is a plain column pick (else None);
    #: used to evaluate the output list on single sample rows cheaply
    output_slots: Optional[Tuple[int, ...]]
    #: GROUP BY key columns of a batch
    group_key_columns: Callable[[ColumnBatch], List[Any]]
    #: whole-batch aggregate evaluation (slotted-compatible partials)
    aggregates: Optional[VectorizedAggregates]


def compile_vectorized_fragment(
    config: Any, slotted: Optional[SlottedFragment]
) -> Optional[VectorizedFragment]:
    """Derive the columnar execution plan from a compiled slotted fragment.

    Returns None when there is nothing to derive it from (the fragment
    could not be slot-specialised) or numpy is unavailable — the executor
    then runs the slotted or dict program for the fragment.
    """
    if slotted is None or not HAVE_NUMPY:
        return None

    root_schema = slotted.root_schema
    residual = compile_batch_predicates(config.residual_predicates, root_schema)
    outputs = compile_batch_outputs(config.output_columns, root_schema)

    output_slots: Optional[Tuple[int, ...]] = None
    if all(
        isinstance(column.expression, ColumnRef) for column in config.output_columns
    ):
        try:
            output_slots = tuple(
                root_schema.resolve(column.expression.column, column.expression.table)
                for column in config.output_columns
            )
        except SlotError:
            output_slots = None

    group_key_columns = compile_batch_group_key(config.group_by_columns, root_schema)
    aggregates = (
        VectorizedAggregates(config.aggregates, root_schema, slotted.aggregates)
        if config.aggregates
        else None
    )
    return VectorizedFragment(
        residual=residual,
        outputs=outputs,
        output_slots=output_slots,
        group_key_columns=group_key_columns,
        aggregates=aggregates,
    )
