"""Batch-compiling expression evaluator: whole-column closures over batches.

``compile_batch_expression`` specialises an
:class:`~repro.algebra.expressions.Expression` tree into a closure taking a
:class:`~repro.exec.vectorized.batch.ColumnBatch` and returning either a
numpy array (one value per row) or a Python scalar (for row-independent
subtrees such as literals and parameters).  Predicates additionally pass
through :func:`as_mask`, which broadcasts scalars and coerces to a boolean
mask.

NULL semantics mirror the scalar evaluator exactly:

* a comparison with NULL on either side is **False** — on object columns
  every comparison therefore computes a validity mask first and only
  compares the valid subset (``!=`` and ``==`` against NULL would
  otherwise leak three-valued weirdness);
* arithmetic with NULL yields NULL — the valid subset is computed, the
  rest stays None;
* incomparable non-NULL values raise ``TypeError``, exactly as the
  dict-context evaluator would on the first offending row.

Expression kinds the compiler cannot specialise (opaque
``CallablePredicate`` closures, third-party subclasses, unresolvable
references) fall back to evaluating the scalar slot-compiled closure once
per row of the batch — dict-path semantics at dict-path speed, for the
extensible tail only.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from ...algebra.expressions import (
    _ARITHMETIC,
    _COMPARISONS,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    like_regex,
)
from ...algebra.parameters import ParameterRef
from ...relational.types import NULL
from ...storage.rewrite import DecodeExpr, DictionaryPredicate
from ..expr import compile_expression, slot_resolver
from ..schema import RowSchema, SlotError
from .batch import ColumnBatch, is_null_mask

#: evaluation context for context-free scalar expressions (parameters)
_EMPTY_CONTEXT: dict = {}

BatchValue = Union["np.ndarray", Any]  # a column, or a row-independent scalar
BatchCompiled = Callable[[ColumnBatch], BatchValue]

_COMPARISON_UFUNCS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}
_ARITHMETIC_UFUNCS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
}


def as_mask(value: BatchValue, batch: ColumnBatch) -> "np.ndarray":
    """Coerce a compiled predicate's result to one boolean per row."""
    if isinstance(value, np.ndarray):
        return value if value.dtype == np.bool_ else value.astype(np.bool_)
    return np.full(batch.length, bool(value), dtype=np.bool_)


def _valid_mask(value: BatchValue) -> Optional["np.ndarray"]:
    """Non-NULL positions of a batch value; None means "all valid"."""
    if isinstance(value, np.ndarray):
        nulls = is_null_mask(value)
        if nulls is None or not nulls.any():
            return None
        return ~nulls
    return None  # scalar NULL is handled separately by each operator


def _and_valid(
    left: Optional["np.ndarray"], right: Optional["np.ndarray"]
) -> Optional["np.ndarray"]:
    if left is None:
        return right
    if right is None:
        return left
    return left & right


def _compress(value: BatchValue, valid: "np.ndarray") -> BatchValue:
    return value[valid] if isinstance(value, np.ndarray) else value


def compile_batch_expression(
    expression: Expression, schema: RowSchema
) -> BatchCompiled:
    """Compile ``expression`` into a whole-batch closure over ``schema``."""
    try:
        return _compile(expression, schema)
    except SlotError:
        return _row_fallback(expression, schema)


def _row_fallback(expression: Expression, schema: RowSchema) -> BatchCompiled:
    """Evaluate the scalar slot-compiled closure once per row of the batch."""
    scalar = compile_expression(
        expression, slot_resolver(schema), schema.context_builder()
    )

    def evaluate(batch: ColumnBatch) -> "np.ndarray":
        out = np.empty(batch.length, dtype=object)
        out[:] = [scalar(row) for row in batch.to_tuples()]
        return out

    return evaluate


def _compile(expression: Expression, schema: RowSchema) -> BatchCompiled:
    if isinstance(expression, Literal):
        value = expression.value
        return lambda batch: value

    if isinstance(expression, ColumnRef):
        slot = schema.resolve(expression.column, expression.table)
        return lambda batch: batch.arrays[slot]

    if isinstance(expression, ParameterRef):
        # read the contextvar binding once per *batch*, not once per row
        evaluate = expression.evaluate
        return lambda batch: evaluate(_EMPTY_CONTEXT)

    if isinstance(expression, Comparison):
        return _compile_comparison(expression, schema)

    if isinstance(expression, Arithmetic):
        return _compile_arithmetic(expression, schema)

    if isinstance(expression, And):
        operands = tuple(_compile(op, schema) for op in expression.operands)
        return lambda batch: _combine(operands, batch, np.logical_and)

    if isinstance(expression, Or):
        operands = tuple(_compile(op, schema) for op in expression.operands)
        return lambda batch: _combine(operands, batch, np.logical_or)

    if isinstance(expression, Not):
        operand = _compile(expression.operand, schema)
        return lambda batch: ~as_mask(operand(batch), batch)

    if isinstance(expression, IsNull):
        return _compile_is_null(expression, schema)

    if isinstance(expression, InList):
        return _compile_in_list(expression, schema)

    if isinstance(expression, Between):
        low = Comparison("<=", expression.low, expression.operand)
        high = Comparison("<=", expression.operand, expression.high)
        low_mask = _compile_comparison(low, schema)
        high_mask = _compile_comparison(high, schema)
        return lambda batch: as_mask(low_mask(batch), batch) & as_mask(
            high_mask(batch), batch
        )

    if isinstance(expression, Like):
        operand = _compile(expression.operand, schema)
        pattern = like_regex(expression.pattern)
        negated = expression.negated

        def like(batch: ColumnBatch) -> "np.ndarray":
            value = operand(batch)
            if not isinstance(value, np.ndarray):
                if value is NULL:
                    return np.zeros(batch.length, dtype=np.bool_)
                matched = pattern.fullmatch(str(value)) is not None
                return np.full(batch.length, matched != negated, dtype=np.bool_)
            out = np.fromiter(
                (
                    False
                    if item is NULL
                    else (pattern.fullmatch(str(item)) is not None) != negated
                    for item in value.tolist()
                ),
                dtype=np.bool_,
                count=len(value),
            )
            return out

        return like

    if isinstance(expression, DecodeExpr):
        operand = _compile(expression.operand, schema)
        decode = expression.codec.decode

        def decoded(batch: ColumnBatch) -> BatchValue:
            value = operand(batch)
            if not isinstance(value, np.ndarray):
                return decode(value)
            out = np.empty(len(value), dtype=object)
            out[:] = [decode(item) for item in value.tolist()]
            return out

        return decoded

    if isinstance(expression, DictionaryPredicate):
        # whole-column dictionary side-table lookup: one fancy-index over
        # the precomputed bool table answers range/LIKE for the batch
        operand = _compile(expression.operand, schema)
        table = expression.table

        def dictionary_mask(batch: ColumnBatch) -> "np.ndarray":
            value = operand(batch)
            if not isinstance(value, np.ndarray):
                return np.full(batch.length, table.test(value), dtype=np.bool_)
            return table.mask(value)

        return dictionary_mask

    # CallablePredicate / third-party Expression subclasses
    return _row_fallback(expression, schema)


def _combine(
    operands: Sequence[BatchCompiled], batch: ColumnBatch, op: Any
) -> "np.ndarray":
    result = as_mask(operands[0](batch), batch)
    for operand in operands[1:]:
        result = op(result, as_mask(operand(batch), batch))
    return result


def _elementwise_compare(
    operate: Any, left: BatchValue, right: BatchValue, length: int
) -> "np.ndarray":
    """Per-element Python comparison: the semantics ufuncs cannot express.

    numpy refuses some cross-dtype pairs outright (``np.equal(int64_col,
    'x')`` raises UFuncTypeError) where Python's ``==`` quietly returns
    False; this fallback reproduces the scalar evaluator exactly —
    including *raising* for ordering operators on incomparable types,
    which the dict path does too.
    """
    left_values = left.tolist() if isinstance(left, np.ndarray) else (left,) * length
    right_values = (
        right.tolist() if isinstance(right, np.ndarray) else (right,) * length
    )
    return np.fromiter(
        (
            bool(operate(left_item, right_item))
            for left_item, right_item in zip(left_values, right_values)
        ),
        dtype=np.bool_,
        count=length,
    )


def _compile_comparison(expression: Comparison, schema: RowSchema) -> BatchCompiled:
    left = _compile(expression.left, schema)
    right = _compile(expression.right, schema)
    ufunc = _COMPARISON_UFUNCS[expression.op]
    operate = _COMPARISONS[expression.op]

    def compare(batch: ColumnBatch) -> "np.ndarray":
        left_value = left(batch)
        right_value = right(batch)
        if not isinstance(left_value, np.ndarray) and not isinstance(
            right_value, np.ndarray
        ):
            if left_value is NULL or right_value is NULL:
                return np.zeros(batch.length, dtype=np.bool_)
            return np.full(
                batch.length, bool(operate(left_value, right_value)), dtype=np.bool_
            )
        if left_value is NULL or right_value is NULL:  # scalar NULL side
            return np.zeros(batch.length, dtype=np.bool_)
        valid = _and_valid(_valid_mask(left_value), _valid_mask(right_value))
        if valid is None:
            try:
                return as_mask(ufunc(left_value, right_value), batch)
            except TypeError:  # incl. UFuncTypeError: no loop for this dtype pair
                return _elementwise_compare(
                    operate, left_value, right_value, batch.length
                )
        out = np.zeros(batch.length, dtype=np.bool_)
        compressed_left = _compress(left_value, valid)
        compressed_right = _compress(right_value, valid)
        try:
            out[valid] = as_mask_compressed(ufunc(compressed_left, compressed_right))
        except TypeError:
            out[valid] = _elementwise_compare(
                operate, compressed_left, compressed_right, int(np.count_nonzero(valid))
            )
        return out

    return compare


def as_mask_compressed(value: Any) -> "np.ndarray":
    """Boolean view of a compressed (already length-matched) comparison result."""
    if isinstance(value, np.ndarray):
        return value if value.dtype == np.bool_ else value.astype(np.bool_)
    return np.asarray(value, dtype=np.bool_)


def _compile_arithmetic(expression: Arithmetic, schema: RowSchema) -> BatchCompiled:
    left = _compile(expression.left, schema)
    right = _compile(expression.right, schema)
    ufunc = _ARITHMETIC_UFUNCS[expression.op]
    operate = _ARITHMETIC[expression.op]

    def arithmetic(batch: ColumnBatch) -> BatchValue:
        left_value = left(batch)
        right_value = right(batch)
        if not isinstance(left_value, np.ndarray) and not isinstance(
            right_value, np.ndarray
        ):
            if left_value is NULL or right_value is NULL:
                return NULL
            return operate(left_value, right_value)
        if left_value is NULL or right_value is NULL:  # scalar NULL side
            return np.full(batch.length, None, dtype=object)
        valid = _and_valid(_valid_mask(left_value), _valid_mask(right_value))
        if valid is None:
            return ufunc(left_value, right_value)
        out = np.full(batch.length, None, dtype=object)
        out[valid] = ufunc(_compress(left_value, valid), _compress(right_value, valid))
        return out

    return arithmetic


def _compile_is_null(expression: IsNull, schema: RowSchema) -> BatchCompiled:
    operand = _compile(expression.operand, schema)
    negated = expression.negated

    def check(batch: ColumnBatch) -> "np.ndarray":
        value = operand(batch)
        if not isinstance(value, np.ndarray):
            result = (value is not NULL) if negated else (value is NULL)
            return np.full(batch.length, result, dtype=np.bool_)
        nulls = is_null_mask(value)
        if nulls is None:
            nulls = np.zeros(len(value), dtype=np.bool_)
        return ~nulls if negated else nulls

    return check


def _compile_in_list(expression: InList, schema: RowSchema) -> BatchCompiled:
    operand = _compile(expression.operand, schema)
    negated = expression.negated

    if not any(isinstance(item, Expression) for item in expression.values):
        try:
            members = frozenset(expression.values)
        except TypeError:
            members = None
        if members is not None:

            # a native-dtype column can only ever equal numeric members, so
            # np.isin runs over those alone — feeding it the full mixed
            # member list would let numpy promote everything to strings
            # and silently match nothing
            numeric_members = [
                member for member in members if type(member) in (bool, int, float)
            ]

            def in_set(batch: ColumnBatch) -> "np.ndarray":
                value = operand(batch)
                if not isinstance(value, np.ndarray):
                    if value is NULL:
                        return np.zeros(batch.length, dtype=np.bool_)
                    return np.full(
                        batch.length, (value in members) != negated, dtype=np.bool_
                    )
                if value.dtype.kind in "biuf":
                    matched = None
                    if numeric_members:
                        try:
                            matched = np.isin(value, numeric_members)
                        except (TypeError, OverflowError):
                            matched = None
                        if matched is None:  # e.g. an out-of-range int member
                            member_set = frozenset(numeric_members)
                            matched = np.fromiter(
                                (item in member_set for item in value.tolist()),
                                dtype=np.bool_,
                                count=len(value),
                            )
                    else:
                        matched = np.zeros(len(value), dtype=np.bool_)
                    return ~matched if negated else matched
                out = np.fromiter(
                    (
                        False if item is NULL else (item in members) != negated
                        for item in value.tolist()
                    ),
                    dtype=np.bool_,
                    count=len(value),
                )
                return out

            return in_set

    # value list contains expressions (e.g. parameters): evaluate each once
    # per batch, then compare column-wise with NULL-safe equality
    items = tuple(
        _compile(item, schema) if isinstance(item, Expression) else None
        for item in expression.values
    )
    plain = tuple(expression.values)

    def in_list(batch: ColumnBatch) -> "np.ndarray":
        value = operand(batch)
        matched = np.zeros(batch.length, dtype=np.bool_)
        candidates = [
            compiled(batch) if compiled is not None else plain[index]
            for index, compiled in enumerate(items)
        ]
        if not isinstance(value, np.ndarray):
            if value is NULL:
                return matched
            hit = any(
                candidate is not NULL
                and not isinstance(candidate, np.ndarray)
                and value == candidate
                for candidate in candidates
            )
            return np.full(batch.length, hit != negated, dtype=np.bool_)
        valid = _valid_mask(value)
        for candidate in candidates:
            if candidate is NULL:
                continue
            try:
                matched |= as_mask(np.equal(value, candidate), batch)
            except TypeError:
                # no equality loop for this dtype pair (native column vs a
                # string, say): Python == is simply False everywhere, so
                # the candidate contributes no matches
                continue
        result = ~matched if negated else matched
        if valid is not None:
            # a NULL operand is False regardless of negation (dict-path rule)
            result &= valid
        return result

    return in_list


def compile_batch_predicates(
    predicates: Sequence[Expression], schema: RowSchema
) -> Optional[Callable[[ColumnBatch], "np.ndarray"]]:
    """AND-compile predicates into one batch -> boolean-mask closure."""
    if not predicates:
        return None
    compiled = tuple(
        compile_batch_expression(predicate, schema) for predicate in predicates
    )

    def evaluate(batch: ColumnBatch) -> "np.ndarray":
        mask = as_mask(compiled[0](batch), batch)
        for predicate in compiled[1:]:
            if not mask.any():
                return mask
            mask &= as_mask(predicate(batch), batch)
        return mask

    return evaluate


def broadcast_column(value: BatchValue, batch: ColumnBatch) -> "np.ndarray":
    """Materialise a compiled output expression as one column of the batch."""
    if isinstance(value, np.ndarray):
        return value
    from .batch import full_column

    return full_column(batch.length, value)


def compile_batch_outputs(
    output_columns: Sequence[Any], schema: RowSchema
) -> Callable[[ColumnBatch], List["np.ndarray"]]:
    """Compile a SELECT list into a batch -> output-columns closure.

    The all-plain-columns common case compiles to slot picks (no compute,
    no copies); expression outputs evaluate vectorized, with the usual
    per-row fallback for opaque expressions.
    """
    if all(isinstance(column.expression, ColumnRef) for column in output_columns):
        try:
            slots = [
                schema.resolve(column.expression.column, column.expression.table)
                for column in output_columns
            ]
        except SlotError:
            slots = None
        if slots is not None:
            return lambda batch: [batch.arrays[slot] for slot in slots]

    compiled = tuple(
        compile_batch_expression(column.expression, schema)
        for column in output_columns
    )
    return lambda batch: [
        broadcast_column(expression(batch), batch) for expression in compiled
    ]
