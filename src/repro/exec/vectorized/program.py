"""The columnar TAG-join vertex program: Algorithm 2 over column batches.

:class:`VectorizedTagJoinProgram` runs the exact schedule of its parent
:class:`~repro.exec.program.SlottedTagJoinProgram` — same supersteps, same
message topology, same provenance discipline — but intermediate result
tables become :class:`~repro.exec.vectorized.batch.ColumnBatch` objects
(struct-of-arrays) once they are large enough to pay for it:

* the TAG topology itself is the hash bucketing of the join: attribute
  vertices partition rows by join value, so each collection step's merge
  is a per-bucket gather-join — a boolean provenance mask, column gathers
  (``take``) of the incoming batch and ``repeat``-broadcasts of the
  vertex's own values, all C loops over whole columns;
* sibling tables union by per-slot ``np.concatenate``;
* pushed-down filters still run per tuple vertex (they see exactly one
  stored row); residuals, outputs, GROUP BY keys and aggregate arguments
  evaluate as whole-column mask/gather expressions at result assembly;
* one :meth:`~repro.bsp.engine.SuperstepContext.send_to_many` ships a
  whole batch per fan-out — no per-row message ever exists.

**Adaptive columnarization.**  numpy pays a fixed per-array cost that a
three-row table never recoups, and most TAG tables are tiny (a leaf
relation vertex's own row, an attribute vertex's handful of children).
Tables therefore *start* as slotted tuple rows and convert to columns at
the first concatenation whose combined size reaches
``columnar_threshold``; from then on they stay columnar (batches only
grow along the collection phase).  Small tables take the parent class's
slotted code paths verbatim, so the two regimes cannot diverge
semantically.  A threshold of 0 forces every table columnar — the setting
the differential/golden test suites use to maximise kernel coverage.

Rows crossing any boundary (samples, result tuples, aggregator payloads)
are converted back to pure-Python values, so results are byte-identical to
the tuple paths'.
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from ...algebra.logical import AggregationClass
from ...bsp.engine import SuperstepContext
from ...bsp.graph import Vertex
from ...core.vertex_program import (
    _VALUE_KEY,
    GLOBAL_GROUPS_AGGREGATOR,
    GLOBAL_OUTPUT_AGGREGATOR,
    FragmentConfig,
    Phase,
    ScheduledStep,
)
from ...tag.encoder import TagGraph
from ..fragment import SlottedFragment
from ..program import SlottedTagJoinProgram
from ..schema import SlottedRow
from .batch import ColumnBatch, full_column
from .expr import as_mask
from .fragment import VectorizedFragment
from .operations import factorize_groups, first_row_output

#: default table size at which a concatenation converts to columns; numpy's
#: fixed per-array cost breaks even against per-row tuple work at roughly
#: fifty to a couple of hundred rows per table (see the bench-micro artifact)
DEFAULT_COLUMNAR_THRESHOLD = 64


class VectorizedTagJoinProgram(SlottedTagJoinProgram):
    """Vertex-centric TAG-join over columnar (struct-of-arrays) batches."""

    def __init__(
        self,
        graph: TagGraph,
        config: FragmentConfig,
        slotted: SlottedFragment,
        vectorized: VectorizedFragment,
        columnar_threshold: int = DEFAULT_COLUMNAR_THRESHOLD,
    ) -> None:
        super().__init__(graph, config, slotted)
        self.vectorized = vectorized
        self.columnar_threshold = columnar_threshold
        self.output_batches: List[ColumnBatch] = []

    # ------------------------------------------------------------------
    # receive: batch combine + gather/repeat merge
    # ------------------------------------------------------------------
    def _receive_indexed(
        self,
        vertex: Vertex,
        step_index: int,
        scheduled: ScheduledStep,
        messages: List[Any],
        context: SuperstepContext,
    ) -> bool:
        if scheduled.phase is not Phase.COLLECT:
            return super()._receive_indexed(
                vertex, step_index, scheduled, messages, context
            )
        # dispatch: stay in the slotted regime while the combined table is
        # below the columnar threshold (the single-message case is by far
        # the most common, so it avoids any iteration)
        if len(messages) == 1:
            first = messages[0]
            if type(first) is not ColumnBatch:
                if len(first) < self.columnar_threshold:
                    return super()._receive_indexed(
                        vertex, step_index, scheduled, messages, context
                    )
                batches = [ColumnBatch.from_rows(first)]
            else:
                batches = messages
        else:
            any_batch = False
            total = 0
            for message in messages:
                if type(message) is ColumnBatch:
                    any_batch = True
                else:
                    total += len(message)
            if not any_batch and total < self.columnar_threshold:
                return super()._receive_indexed(
                    vertex, step_index, scheduled, messages, context
                )
            batches = [
                message
                if type(message) is ColumnBatch
                else ColumnBatch.from_rows(message)
                for message in messages
            ]
        step = scheduled.step
        target_node = self.config.plan.node(step.target)
        context.charge(len(messages))

        incoming = batches[0] if len(batches) == 1 else ColumnBatch.concat(batches)
        action = self.slotted.collect[step_index]
        if action.merge is None:
            rows: ColumnBatch = incoming
        else:
            own_row = self._own_row(vertex, target_node)
            if incoming:
                prov_slot = action.prov_slot
                if prov_slot is not None:
                    keep = np.equal(incoming.arrays[prov_slot], vertex.ordinal)
                    masked = incoming.mask(keep)
                else:
                    masked = incoming
                if action.identity or not masked:
                    rows = masked
                elif action.concat:
                    length = masked.length
                    rows = masked.with_appended(
                        [full_column(length, value) for value in own_row]
                    )
                else:
                    length = masked.length
                    arrays = masked.arrays
                    rows = ColumnBatch(
                        [
                            arrays[index]
                            if from_incoming
                            else full_column(length, own_row[index])
                            for from_incoming, index in action.plan
                        ],
                        length,
                    )
            else:
                rows = ColumnBatch.from_row(own_row)
        context.charge(len(rows))
        values = context.state(vertex).setdefault(_VALUE_KEY, {})
        values[step.target] = rows
        return True

    # note: _send needs no override — the parent ships whatever table the
    # state holds (list or batch) through one send_to_many, and a batch
    # sizes itself via its payload_size_hint

    # ------------------------------------------------------------------
    # assembly: masks, column gathers, np.unique group reductions
    # ------------------------------------------------------------------
    def _assemble(
        self,
        vertex: Vertex,
        rows: Any,
        context: SuperstepContext,
    ) -> None:
        if type(rows) is not ColumnBatch:
            # a table that never crossed the columnar threshold: the
            # slotted assemble is both correct and faster at this size
            super()._assemble(vertex, rows, context)
            return
        if not rows:
            return
        config = self.config
        vectorized = self.vectorized
        if vectorized.residual is not None:
            rows = rows.mask(as_mask(vectorized.residual(rows), rows))
            if not rows:
                return
        context.charge(len(rows))

        if config.aggregation_class is AggregationClass.NONE:
            produced = ColumnBatch(vectorized.outputs(rows), rows.length)
            self.output_batches.append(produced)
            if config.collect_output_centrally:
                for row in produced.to_tuples():
                    context.aggregate(GLOBAL_OUTPUT_AGGREGATOR, row)
            return

        aggregates = vectorized.aggregates
        if config.aggregation_class is AggregationClass.LOCAL:
            partial = aggregates.batch_partial(rows)
            head = first_row_output(
                vectorized.output_slots, self.slotted.output, rows, 0
            )
            self.local_groups.append(head + aggregates.finalize(partial))
            return

        # GLOBAL / SCALAR: one (key, (partial, sample)) payload per group
        if config.eager_partial_aggregation:
            key_columns = vectorized.group_key_columns(rows)
            argument_columns = aggregates.argument_columns(rows)
            for key, indices in factorize_groups(key_columns, rows.length):
                partial = aggregates.partial_for(indices, argument_columns)
                sample = rows.row(int(indices[0]))
                context.aggregate(GLOBAL_GROUPS_AGGREGATOR, (key, (partial, sample)))
        else:
            slotted_aggregates = self.slotted.aggregates
            group_key = self.slotted.group_key
            for row in rows.to_tuples():
                partial = slotted_aggregates.empty()
                slotted_aggregates.accumulate(partial, row)
                context.aggregate(
                    GLOBAL_GROUPS_AGGREGATOR, (group_key(row), (partial, row))
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _initial_value(self, vertex: Vertex, node) -> Any:
        rows = super()._initial_value(vertex, node)
        if rows and len(rows) >= self.columnar_threshold:
            return ColumnBatch.from_rows(rows)
        return rows

    def collected_output_tuples(self) -> List[SlottedRow]:
        """All columnar output rows as pure-Python tuples (result boundary).

        Output rows assembled below the columnar threshold live in
        ``self.output_rows`` (the parent's accumulator) instead; the
        executor concatenates both.
        """
        if not self.output_batches:
            return []
        return ColumnBatch.concat(self.output_batches).to_tuples()


__all__ = ["DEFAULT_COLUMNAR_THRESHOLD", "VectorizedTagJoinProgram"]
