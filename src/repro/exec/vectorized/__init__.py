"""Columnar (struct-of-arrays) TAG-join execution: the vectorized kernel.

The fourth execution representation, layered on the slotted substrate:

* :mod:`repro.exec.vectorized.batch` — :class:`ColumnBatch`, one numpy
  array per slot with an object-dtype fallback for opaque values;
* :mod:`repro.exec.vectorized.expr` — whole-batch expression compiler
  (filters as boolean masks, NULL-aware);
* :mod:`repro.exec.vectorized.operations` — ``np.unique``-based GROUP BY
  factorization and aggregate reductions with slotted-compatible partials;
* :mod:`repro.exec.vectorized.fragment` — per-plan compilation riding in
  :class:`~repro.core.compiler.CompiledFragment`;
* :mod:`repro.exec.vectorized.program` — the batch vertex program.

Enable per executor with ``TagJoinExecutor(use_vectorized_kernel=True)``,
or by name through the engine registry (``tag_vectorized``).
"""

from .batch import HAVE_NUMPY, ColumnBatch, column_array, concat_columns, full_column
from .expr import (
    as_mask,
    compile_batch_expression,
    compile_batch_outputs,
    compile_batch_predicates,
)
from .fragment import VectorizedFragment, compile_vectorized_fragment
from .operations import VectorizedAggregates, compile_batch_group_key, factorize_groups
from .program import VectorizedTagJoinProgram

__all__ = [
    "HAVE_NUMPY",
    "ColumnBatch",
    "VectorizedAggregates",
    "VectorizedFragment",
    "VectorizedTagJoinProgram",
    "as_mask",
    "column_array",
    "compile_batch_expression",
    "compile_batch_group_key",
    "compile_batch_outputs",
    "compile_batch_predicates",
    "concat_columns",
    "compile_vectorized_fragment",
    "factorize_groups",
    "full_column",
]
