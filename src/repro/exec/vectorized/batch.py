"""Struct-of-arrays row batches: the columnar counterpart of ``List[SlottedRow]``.

A :class:`ColumnBatch` holds one intermediate TAG-join result table as one
numpy array per slot of its :class:`~repro.exec.schema.RowSchema`.  Columns
whose values are homogeneous ints / floats / bools get native dtypes, so
filters and arithmetic run as real vectorized kernels; everything else
(strings, dates, NULLs, mixed types, arbitrary objects) falls back to
``dtype=object`` arrays, where numpy still drives concatenation, gathers
and masking through C loops over object pointers — far cheaper than a
Python-level loop per row, just without the native-math fast path.

Two invariants keep the columnar path byte-equal to the tuple path:

* **purity** — an ``object`` column only ever contains the original Python
  values.  Mixing a native column into an object column (which would box
  numpy scalars) is prevented at the single place it could happen,
  :func:`concat_columns`, by round-tripping native parts through
  ``tolist()`` first.
* **boundary conversion** — :meth:`ColumnBatch.to_tuples` uses
  ``ndarray.tolist`` per column, which converts native values back into
  plain Python ``int``/``float``/``bool``.  Rows leaving a batch are
  therefore indistinguishable from rows the slotted program built.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

try:  # pragma: no cover - numpy is a declared dependency, but stay importable
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from ...bsp.metrics import payload_size_bytes
from ..schema import SlottedRow

#: dtype kinds considered "native" (vectorizable maths, NULL-free)
_NATIVE_KINDS = frozenset("biuf")

#: observability for the encode-once contract: every call to
#: :func:`column_array` records whether the column materialised native or
#: fell back to ``dtype=object``.  With dictionary/sentinel encoding on,
#: string- and date-backed slots arrive as int codes and must stay native;
#: the hot-path guard test resets these counters, runs a TPC-H q1-like
#: plan fully columnar and asserts zero object fallbacks.
OBJECT_COLUMN_STATS = {"object_columns": 0, "object_values": 0, "native_columns": 0}


def reset_object_column_stats() -> None:
    OBJECT_COLUMN_STATS["object_columns"] = 0
    OBJECT_COLUMN_STATS["object_values"] = 0
    OBJECT_COLUMN_STATS["native_columns"] = 0


if HAVE_NUMPY:
    _NATIVE_DTYPES = {int: np.int64, float: np.float64, bool: np.bool_}
else:  # pragma: no cover
    _NATIVE_DTYPES = {}


def full_column(length: int, value: Any) -> "np.ndarray":
    """A constant column of ``length`` copies of one Python value.

    This is the ``repeat`` side of the kernel's gather/repeat merges: a
    vertex's own value is broadcast against the n incoming rows it joins
    with.  Ints/floats/bools get native dtypes; every other value —
    including None (SQL NULL) — is stored as itself in an object column.
    """
    dtype = _NATIVE_DTYPES.get(type(value))
    if dtype is not None:
        try:
            column = np.empty(length, dtype=dtype)
            column.fill(value)
            return column
        except OverflowError:
            pass
    column = np.empty(length, dtype=object)
    column.fill(value)
    return column


def column_array(values: Sequence[Any]) -> "np.ndarray":
    """Build one column from Python values (native dtype when clean).

    The dtype is guessed from the first value and the conversion happens
    in one C pass; any value that does not fit the guess (a NULL, a
    column with genuinely mixed types) aborts it and the column falls
    back to object dtype.  Within one slot, values all originate from a
    single relation column (which the catalog coerced to one Python type
    at load time) plus None for NULL — so the sample guess is exact,
    never lossy.
    """
    if not values:
        return np.empty(0, dtype=object)
    first = type(values[0])
    if first is int:
        # int64 conversion raises on None and on overflow — safe blind
        try:
            column = np.asarray(values, dtype=np.int64)
            OBJECT_COLUMN_STATS["native_columns"] += 1
            return column
        except (TypeError, ValueError, OverflowError):
            pass
    elif first is float:
        # float64 conversion maps None -> nan silently; a nan in the
        # result means a NULL (or a genuine nan, which must also stay an
        # exact Python object) slipped in — fall back to object then
        try:
            column = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError):
            column = None
        if column is not None and not np.isnan(column).any():
            OBJECT_COLUMN_STATS["native_columns"] += 1
            return column
    elif first is bool and all(type(value) is bool for value in values):
        # bool_ conversion truthifies anything (None -> False): scan first
        OBJECT_COLUMN_STATS["native_columns"] += 1
        return np.asarray(values, dtype=np.bool_)
    OBJECT_COLUMN_STATS["object_columns"] += 1
    OBJECT_COLUMN_STATS["object_values"] += len(values)
    column = np.empty(len(values), dtype=object)
    column[:] = values
    return column


def concat_columns(columns: Sequence["np.ndarray"]) -> "np.ndarray":
    """Concatenate one slot's column across sibling batches.

    When dtypes agree this is a single C-level copy.  When a native column
    meets an object column, the native values are unboxed via ``tolist``
    before concatenation so the result column stays *pure* (no numpy
    scalars hiding inside an object array).
    """
    if len(columns) == 1:
        return columns[0]
    dtypes = {column.dtype for column in columns}
    if len(dtypes) == 1:
        return np.concatenate(columns)
    if all(column.dtype.kind in _NATIVE_KINDS for column in columns):
        return np.concatenate(columns)  # numeric promotion (e.g. int64 + float64)
    merged: List[Any] = []
    for column in columns:
        merged.extend(column.tolist())
    out = np.empty(len(merged), dtype=object)
    out[:] = merged
    return out


class ColumnBatch:
    """One intermediate result table as a tuple of per-slot columns."""

    __slots__ = ("arrays", "length")

    def __init__(self, arrays: Sequence["np.ndarray"], length: int) -> None:
        self.arrays: Tuple["np.ndarray", ...] = tuple(arrays)
        self.length = length

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[SlottedRow]) -> "ColumnBatch":
        """Columnarise a (usually tiny) list of slotted tuple rows."""
        if not rows:
            return cls((), 0)
        return cls(
            [column_array(column) for column in zip(*rows)],
            len(rows),
        )

    @classmethod
    def from_row(cls, row: SlottedRow) -> "ColumnBatch":
        """A single-row batch (a relation vertex's own row entering the flow)."""
        return cls([full_column(1, value) for value in row], 1)

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Stack sibling batches (the union side of the topology join)."""
        batches = [batch for batch in batches if batch.length]
        if not batches:
            return cls((), 0)
        if len(batches) == 1:
            return batches[0]
        width = len(batches[0].arrays)
        return cls(
            [
                concat_columns([batch.arrays[slot] for batch in batches])
                for slot in range(width)
            ],
            sum(batch.length for batch in batches),
        )

    # ------------------------------------------------------------------
    # columnar operators
    # ------------------------------------------------------------------
    def mask(self, keep: "np.ndarray") -> "ColumnBatch":
        """Boolean-mask every column (compiled filters, provenance checks)."""
        if keep.all():
            return self
        kept = int(np.count_nonzero(keep))
        if kept == 0:
            return ColumnBatch((), 0)
        return ColumnBatch([column[keep] for column in self.arrays], kept)

    def take_columns(self, slots: Sequence[int]) -> "ColumnBatch":
        """Project to a slot subset/order (one pointer-copy per column)."""
        return ColumnBatch([self.arrays[slot] for slot in slots], self.length)

    def with_appended(self, columns: Sequence["np.ndarray"]) -> "ColumnBatch":
        """The concat-merge fast path: incoming columns + broadcast own columns."""
        return ColumnBatch(self.arrays + tuple(columns), self.length)

    # ------------------------------------------------------------------
    # boundary conversion
    # ------------------------------------------------------------------
    def to_tuples(self) -> List[SlottedRow]:
        """Rows as plain Python tuples (native columns unboxed by tolist)."""
        if self.length == 0:
            return []
        if not self.arrays:  # zero-width table: n empty tuples
            return [()] * self.length
        return list(zip(*[column.tolist() for column in self.arrays]))

    def column_list(self, slot: int) -> List[Any]:
        """One column as a plain Python list."""
        return self.arrays[slot].tolist()

    def row(self, index: int) -> SlottedRow:
        """One row as a pure-Python tuple (group samples, LOCAL outputs)."""
        values: List[Any] = []
        for column in self.arrays:
            value = column[index]
            values.append(value.item() if isinstance(value, np.generic) else value)
        return tuple(values)

    # ------------------------------------------------------------------
    # container / messaging protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def payload_size_hint(self) -> int:
        """Message-size accounting: per-column width sampling, O(columns)."""
        if self.length == 0:
            return 4
        per_row = 4
        for column in self.arrays:
            kind = column.dtype.kind
            if kind in "iuf":
                per_row += 8
            elif kind == "b":
                per_row += 1
            else:
                per_row += payload_size_bytes(column[0])
        return 4 + self.length * per_row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dtypes = ", ".join(column.dtype.str for column in self.arrays)
        return f"ColumnBatch({self.length} rows x {len(self.arrays)} cols [{dtypes}])"


def is_null_mask(column: "np.ndarray") -> Optional["np.ndarray"]:
    """Positions holding SQL NULL, or None when the dtype cannot hold one."""
    if column.dtype.kind in _NATIVE_KINDS:
        return None
    return np.equal(column, None)
