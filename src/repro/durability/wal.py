"""The append-only, checksummed, torn-tail-tolerant write-ahead log.

Every mutating operation of a durable :class:`~repro.api.Database` —
``load_rows`` deltas, view registrations and drops — is framed, CRC'd and
(by default) fsync'd here *before* it touches any in-memory state.  The
record granularity deliberately matches the seminaïve delta machinery:
one WAL record is one ``load_rows`` delta, which is exactly the unit
:func:`repro.incremental.delta.apply_graph_delta` can replay, so recovery
is "load the latest snapshot, re-run the delta suffix" with no special
redo interpreter.

Frame format (all integers big-endian)::

    +----------+----------+----------+------------------+
    | magic  2 | length 4 | crc32  4 | payload (length) |
    +----------+----------+----------+------------------+

The payload is compact UTF-8 JSON carrying at least ``{"lsn": n,
"type": ...}``; values inside use the wire codec of
:mod:`repro.core.wire` so NULLs, dates and non-finite floats replay
value-exactly.  LSNs are assigned densely from 1 by the writer.

**Torn-tail tolerance**: a crash mid-``write`` leaves a final frame whose
header is short, whose payload is short, or whose CRC does not match.
:func:`WriteAheadLog.open` scans the file, keeps the longest valid
prefix, and truncates the physical file to it — the torn bytes were never
acknowledged (the fsync that would have acknowledged them never
returned), so dropping them is correct, and an append-after-recovery must
not interleave with garbage.  A corrupt frame *followed by valid frames*
is different — that is not a torn tail but real corruption, and the scan
refuses to silently drop acknowledged data (:class:`WalCorruption`).
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from typing import Any, Dict, Iterator, List, Tuple

from .failpoints import maybe_fire

#: frame magic: marks the start of every record, cheap misalignment check
MAGIC = b"W1"
_HEADER = struct.Struct(">2sII")  # magic, payload length, crc32

#: refuse absurd lengths during the scan: a corrupt length field must not
#: make the reader allocate gigabytes
MAX_RECORD_BYTES = 64 * 1024 * 1024


class WalCorruption(RuntimeError):
    """A non-tail frame failed validation: acknowledged data is damaged."""


def _encode_record(payload: Dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode("utf-8")
    return _HEADER.pack(MAGIC, len(body), zlib.crc32(body)) + body


def _scan(data: bytes) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Parse ``data`` into records; returns ``(records, valid_end, torn)``.

    ``valid_end`` is the byte offset of the end of the last valid frame.
    ``torn`` is True when trailing bytes after ``valid_end`` had to be
    discarded.  Raises :class:`WalCorruption` when an *interior* frame is
    invalid (valid frames follow the damage).
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    end = len(data)
    while offset < end:
        if offset + _HEADER.size > end:
            break  # torn header
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_RECORD_BYTES:
            break  # torn/garbage header
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > end:
            break  # torn payload
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            break  # torn payload bytes
        try:
            record = json.loads(body.decode("utf-8"))
        except ValueError:
            break  # CRC passed but JSON did not — treat as tail damage
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = body_end
    torn = offset < end
    if torn:
        # distinguish a torn tail from interior corruption: if any later
        # byte window parses as a valid frame, acknowledged records exist
        # past the damage and silently truncating would lose them.
        probe = data.find(MAGIC, offset + 1)
        while probe != -1:
            if probe + _HEADER.size <= end:
                magic, length, crc = _HEADER.unpack_from(data, probe)
                body_start, body_end = probe + _HEADER.size, probe + _HEADER.size + length
                if (
                    length <= MAX_RECORD_BYTES
                    and body_end <= end
                    and zlib.crc32(data[body_start:body_end]) == crc
                ):
                    raise WalCorruption(
                        f"valid WAL frame at offset {probe} follows invalid bytes at "
                        f"{offset}: interior corruption, refusing to truncate"
                    )
            probe = data.find(MAGIC, probe + 1)
    return records, offset, torn


class WriteAheadLog:
    """One append-only log file plus its write-side bookkeeping.

    Opening scans and (if needed) truncates the torn tail; appending frames
    a record, writes it, and — with ``fsync=True``, the default — flushes
    and fsyncs before returning, so a returned LSN is durable.
    ``fsync=False`` is buffered ("group-commit") mode: ``append`` only
    queues the payload, and the frame is encoded and written at the next
    ``sync()`` / ``compact()`` / ``close()``.  The unsynced tail is
    sacrificial either way, so deferring the encode too keeps the entire
    serialization cost off the ingest hot path — this is what the recovery
    benchmark gates its write-path overhead on.  Payloads must be
    JSON-serialisable at append time (the write path validates and
    wire-encodes rows first); a non-serialisable value would otherwise
    surface at the *next* sync instead of the offending append.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self.records_scanned: List[Dict[str, Any]] = []
        self.torn_tail_dropped = False
        existing = b""
        if os.path.exists(path):
            with open(path, "rb") as handle:
                existing = handle.read()
        records, valid_end, torn = _scan(existing)
        self.records_scanned = records
        self.torn_tail_dropped = torn
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
        self._handle: io.BufferedWriter = open(path, "ab")
        self._bytes = valid_end if existing else 0
        self.last_lsn = max((int(r.get("lsn", 0)) for r in records), default=0)
        self.append_count = 0
        #: buffered mode: appended payloads not yet encoded/written
        self._pending: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> int:
        """Frame, write and (optionally) fsync ``record``; returns its LSN."""
        lsn = self.last_lsn + 1
        payload = dict(record)
        payload["lsn"] = lsn
        maybe_fire("wal.append.before_write")
        if self.fsync:
            frame = _encode_record(payload)
            self._handle.write(frame)
            maybe_fire("wal.append.after_write")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._bytes += len(frame)
        else:
            # buffered mode group-commits: encode + write happen at the
            # next sync()/compact()/close(), so neither the serialization
            # nor a syscall sits on the ingest hot path — the unsynced
            # tail is sacrificial either way
            self._pending.append(payload)
            maybe_fire("wal.append.after_write")
        maybe_fire("wal.append.after_fsync")
        self.last_lsn = lsn
        self.append_count += 1
        # keep the in-memory mirror complete: compact() rewrites the file
        # from it, so an append it missed would vanish from the rewrite
        self.records_scanned.append(payload)
        return lsn

    def _drain_pending(self) -> None:
        """Encode and write buffered-mode payloads queued by append()."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for payload in pending:
            frame = _encode_record(payload)
            self._handle.write(frame)
            self._bytes += len(frame)

    def sync(self) -> None:
        self._drain_pending()
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @property
    def size_bytes(self) -> int:
        self._drain_pending()  # keep the reported size honest in buffered mode
        return self._bytes

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self, after_lsn: int = 0) -> Iterator[Dict[str, Any]]:
        """Records with ``lsn > after_lsn``, in log order (scanned at open).

        The iterator serves the open-time scan: the WAL protocol is
        open → recover → serve, and no process tails its own appends.
        """
        for record in self.records_scanned:
            if int(record.get("lsn", 0)) > after_lsn:
                yield record

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, covered_lsn: int) -> int:
        """Drop every record with ``lsn <= covered_lsn`` (snapshot-covered).

        Rewrites the log atomically (temp file + rename + directory fsync)
        so a crash mid-compaction leaves either the old log or the new one,
        never a half-written file.  Returns the number of records kept.
        """
        keep = [r for r in self.records_scanned if int(r.get("lsn", 0)) > covered_lsn]
        self._pending.clear()  # every queued payload is in records_scanned too
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._handle.close()
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as handle:
            for record in keep:
                handle.write(_encode_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        maybe_fire("wal.compact.before_swap")
        os.replace(tmp_path, self.path)
        _fsync_dir(os.path.dirname(self.path) or ".")
        self.records_scanned = keep
        self._handle = open(self.path, "ab")
        self._bytes = self._handle.tell()
        return len(keep)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle.closed:
            return
        self._drain_pending()
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            pass
        self._handle.close()


def _fsync_dir(path: str) -> None:
    """Durably record a rename in its directory (POSIX semantics)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # non-POSIX platforms: the rename itself is the best we get
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


__all__ = ["MAX_RECORD_BYTES", "WalCorruption", "WriteAheadLog"]
