"""Named failpoints and the fault injector that arms them.

Chaos testing needs the failure to happen at a *named place* inside the
write path — after the WAL record hit the OS but before the fsync, after
the snapshot temp file was written but before the atomic rename, halfway
through a delta application — because those are exactly the windows where
a naive implementation loses acknowledged writes or double-applies them.
Sprinkling ``maybe_fire("wal.append.after_write")`` calls through the
durability, incremental, BSP and serving layers gives the chaos harness a
complete catalog of crash points (:data:`FAILPOINTS`); a
:class:`FaultInjector` arms any subset of them with one of three modes:

* ``raise`` — raise :class:`FaultInjected` at the failpoint (exercises
  error paths without killing the process);
* ``delay`` — sleep at the failpoint (exercises deadlines, cancellation
  and lock timeouts);
* ``crash`` — ``os._exit(137)``: the process dies *instantly*, with no
  ``finally`` blocks, no ``atexit`` hooks and no buffered-file flushing —
  indistinguishable from ``kill -9`` as far as the on-disk state is
  concerned, which is the whole point.

Activation is programmatic (:func:`install`) or environmental
(``REPRO_FAILPOINTS="wal.append.after_write=crash@3;bsp.superstep=delay:0.05"``),
so a chaos test can arm a failpoint in a subprocess it is about to watch
die.  When nothing is armed, :func:`maybe_fire` is a single attribute
check — the production overhead of carrying the failpoints is nil.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Optional, Tuple

#: Exit status used by crash-mode failpoints: the conventional 128+SIGKILL,
#: so a watching parent can tell an injected crash from an ordinary error.
CRASH_EXIT_STATUS = 137

#: the environment variable carrying a failpoint spec string
FAILPOINTS_ENV = "REPRO_FAILPOINTS"

#: Every registered failpoint.  ``maybe_fire`` refuses unknown names so this
#: catalog is complete by construction — the chaos matrix iterates it.
FAILPOINTS = (
    # write-ahead log: around the write() and the fsync of one record
    "wal.append.before_write",
    "wal.append.after_write",
    "wal.append.after_fsync",
    # snapshotting: before anything is written, after the temp file is
    # complete (but not yet visible), and after the atomic rename
    "snapshot.before_write",
    "snapshot.after_tmp_write",
    "snapshot.after_rename",
    # WAL compaction (prefix drop after a successful snapshot)
    "wal.compact.before_swap",
    # delta application inside Database.load_rows
    "delta.apply.before_graph_patch",
    "delta.apply.after_apply",
    # tombstone-delete application inside Database.delete_rows/update_rows
    "delta_delete.before_graph_patch",
    "delta_delete.after_apply",
    # recovery itself (crash-during-recovery must also recover)
    "recovery.before_replay",
    # BSP superstep boundary (every query; also the cancellation check site)
    "bsp.superstep",
    # serve worker dispatch (between dequeue and execution)
    "serve.dispatch",
)

_MODES = ("raise", "delay", "crash")


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-mode failpoint."""

    def __init__(self, name: str) -> None:
        super().__init__(f"fault injected at failpoint {name!r}")
        self.failpoint = name


class FailpointError(ValueError):
    """A failpoint spec names an unknown failpoint or a malformed rule."""


class _Rule:
    """One armed failpoint: fire ``mode`` on the ``trigger``-th hit."""

    __slots__ = ("name", "mode", "trigger", "times", "delay_seconds", "hits", "fired")

    def __init__(
        self,
        name: str,
        mode: str,
        trigger: int = 1,
        times: int = 1,
        delay_seconds: float = 0.05,
    ) -> None:
        if name not in FAILPOINTS:
            raise FailpointError(
                f"unknown failpoint {name!r}; registered: {', '.join(FAILPOINTS)}"
            )
        if mode not in _MODES:
            raise FailpointError(f"unknown failpoint mode {mode!r} (raise/delay/crash)")
        if trigger < 1:
            raise FailpointError(f"trigger hit must be >= 1, got {trigger}")
        self.name = name
        self.mode = mode
        self.trigger = trigger  # fire starting at this hit count (1-based)
        self.times = times  # fire at most this many times (<=0 = forever)
        self.delay_seconds = delay_seconds
        self.hits = 0
        self.fired = 0


class FaultInjector:
    """Holds the armed rules and evaluates hits (thread-safe)."""

    def __init__(self) -> None:
        self._rules: Dict[str, _Rule] = {}
        self._lock = threading.Lock()
        #: fast-path flag read without the lock; see :func:`maybe_fire`
        self.active = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(
        self,
        name: str,
        mode: str,
        trigger: int = 1,
        times: int = 1,
        delay_seconds: float = 0.05,
    ) -> None:
        rule = _Rule(name, mode, trigger, times, delay_seconds)
        with self._lock:
            self._rules[name] = rule
            self.active = True

    def disarm(self, name: Optional[str] = None) -> None:
        with self._lock:
            if name is None:
                self._rules.clear()
            else:
                self._rules.pop(name, None)
            self.active = bool(self._rules)

    def configure(self, spec: str) -> None:
        """Arm failpoints from a spec string.

        Grammar (``;``-separated rules)::

            name=mode[@trigger][xN][:delay_seconds]

        Examples: ``wal.append.after_write=crash@3`` (crash on the third
        hit), ``bsp.superstep=delay:0.02x0`` (sleep 20ms at every
        superstep), ``delta.apply.after_apply=raise`` (raise on first hit).
        """
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise FailpointError(f"malformed failpoint rule {chunk!r} (need name=mode)")
            name, _, rest = chunk.partition("=")
            delay = 0.05
            if ":" in rest:
                rest, _, delay_text = rest.partition(":")
                try:
                    delay = float(delay_text.split("x")[0])
                except ValueError as exc:
                    raise FailpointError(f"malformed delay in {chunk!r}") from exc
            times = 1
            if "x" in rest:
                rest, _, times_text = rest.partition("x")
                try:
                    times = int(times_text)
                except ValueError as exc:
                    raise FailpointError(f"malformed times in {chunk!r}") from exc
            trigger = 1
            if "@" in rest:
                rest, _, trigger_text = rest.partition("@")
                try:
                    trigger = int(trigger_text)
                except ValueError as exc:
                    raise FailpointError(f"malformed trigger in {chunk!r}") from exc
            self.arm(name.strip(), rest.strip(), trigger=trigger, times=times,
                     delay_seconds=delay)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def hit(self, name: str) -> None:
        if name not in FAILPOINTS:
            raise FailpointError(f"maybe_fire() on unregistered failpoint {name!r}")
        with self._lock:
            rule = self._rules.get(name)
            if rule is None:
                return
            rule.hits += 1
            if rule.hits < rule.trigger:
                return
            if rule.times > 0 and rule.fired >= rule.times:
                return
            rule.fired += 1
            mode = rule.mode
            delay = rule.delay_seconds
        # act outside the lock: a crash doesn't care, a delay must not
        # serialize unrelated failpoints, and a raise unwinds caller frames
        if mode == "crash":
            os._exit(CRASH_EXIT_STATUS)
        if mode == "delay":
            time.sleep(delay)
            return
        raise FaultInjected(name)

    def counters(self) -> Dict[str, Tuple[int, int]]:
        """``{name: (hits, fired)}`` for every armed rule (observability)."""
        with self._lock:
            return {name: (rule.hits, rule.fired) for name, rule in self._rules.items()}


# ----------------------------------------------------------------------
# the process-global injector
# ----------------------------------------------------------------------
_INJECTOR = FaultInjector()
_ENV_LOADED = False
_ENV_LOCK = threading.Lock()


def injector() -> FaultInjector:
    """The process-global injector (arming it affects every failpoint)."""
    _load_env_once()
    return _INJECTOR


def install(spec: str) -> FaultInjector:
    """Arm the global injector from a spec string (see ``configure``)."""
    _INJECTOR.configure(spec)
    return _INJECTOR


def clear() -> None:
    """Disarm every failpoint (tests call this in teardown)."""
    _INJECTOR.disarm()


def _load_env_once() -> None:
    global _ENV_LOADED
    if _ENV_LOADED:
        return
    with _ENV_LOCK:
        if _ENV_LOADED:
            return
        spec = os.environ.get(FAILPOINTS_ENV)
        if spec:
            _INJECTOR.configure(spec)
        _ENV_LOADED = True


def maybe_fire(name: str) -> None:
    """Evaluate failpoint ``name``; no-op (one attribute read) when unarmed."""
    _load_env_once()
    if not _INJECTOR.active:
        return
    _INJECTOR.hit(name)


def seeded_crash_schedule(
    seed: int, failpoint: str, max_trigger: int = 5
) -> Tuple[str, int]:
    """A reproducible ``(spec, trigger)`` arming ``failpoint`` to crash.

    The chaos matrix uses this to vary *which* hit of a failpoint kills the
    process across runs while staying reproducible from the seed.
    """
    rng = random.Random((seed, failpoint).__repr__())
    trigger = rng.randint(1, max_trigger)
    return f"{failpoint}=crash@{trigger}", trigger


def crashable_failpoints() -> List[str]:
    """The failpoints the chaos crash matrix iterates (all of them)."""
    return list(FAILPOINTS)


__all__ = [
    "CRASH_EXIT_STATUS",
    "FAILPOINTS",
    "FAILPOINTS_ENV",
    "FailpointError",
    "FaultInjected",
    "FaultInjector",
    "clear",
    "crashable_failpoints",
    "injector",
    "install",
    "maybe_fire",
    "seeded_crash_schedule",
]
