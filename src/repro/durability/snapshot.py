"""Checksummed, atomically-written catalog snapshots.

A snapshot is one JSON file holding everything a :class:`~repro.api.Database`
needs to reconstruct its durable state at a point in the WAL:

* every relation's rows, wire-encoded (:mod:`repro.core.wire`) so dates,
  NULLs and non-finite floats round-trip value-exactly;
* the catalog-global :class:`~repro.storage.dictionary.StringDictionary`
  values in code order — replaying them through ``intern`` reproduces the
  exact code assignment, which keeps persisted plan manifests and encoded
  column stores consistent with a recovered catalog;
* materialized-view definitions (name + SQL; view *contents* are a pure
  function of the data and are re-materialized after recovery);
* the applied-request-id table (idempotency window), so a client retry of
  a write acknowledged *before* the snapshot still dedups *after* it;
* ``wal_lsn``, the high-water mark the snapshot covers — recovery replays
  only WAL records past it, and compaction may drop records at or below.

The file layout is ``{"sha256": <hex>, "state": {...}}`` where the digest
covers the canonical (sorted-key, compact) JSON of ``state``.  Writes go
through a temp file + fsync + atomic rename + directory fsync, so a crash
at any point leaves either no new snapshot or a complete valid one —
never a half-written file the loader could mistake for truth.  The loader
tries snapshots newest-first and skips any that fail the checksum, so a
corrupted latest snapshot degrades to the previous one plus a longer WAL
replay rather than to an unrecoverable store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from .failpoints import maybe_fire

#: bump when the state layout changes incompatibly
SNAPSHOT_FORMAT_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


class SnapshotError(RuntimeError):
    """A snapshot file is unreadable, corrupt, or from an unknown format."""


def snapshot_filename(wal_lsn: int) -> str:
    return f"snapshot-{wal_lsn:012d}.json"


def _canonical(state: Dict[str, Any]) -> bytes:
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(directory: str, state: Dict[str, Any]) -> str:
    """Atomically persist ``state``; returns the snapshot path.

    ``state`` must carry ``wal_lsn`` (names the file) and should carry
    ``format_version`` (stamped if absent).
    """
    state = dict(state)
    state.setdefault("format_version", SNAPSHOT_FORMAT_VERSION)
    wal_lsn = int(state.get("wal_lsn", 0))
    maybe_fire("snapshot.before_write")
    body = _canonical(state)
    document = {"sha256": hashlib.sha256(body).hexdigest(), "state": state}
    path = os.path.join(directory, snapshot_filename(wal_lsn))
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"), allow_nan=False)
        handle.flush()
        os.fsync(handle.fileno())
    maybe_fire("snapshot.after_tmp_write")
    os.replace(tmp_path, path)
    _fsync_dir(directory)
    maybe_fire("snapshot.after_rename")
    return path


def read_snapshot(path: str) -> Dict[str, Any]:
    """Load and checksum-verify one snapshot file; returns its state."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot {path!r}: {exc}") from exc
    if not isinstance(document, dict) or "state" not in document:
        raise SnapshotError(f"snapshot {path!r} missing state envelope")
    state = document["state"]
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot {path!r} state is not an object")
    digest = hashlib.sha256(_canonical(state)).hexdigest()
    if digest != document.get("sha256"):
        raise SnapshotError(f"snapshot {path!r} failed checksum verification")
    version = state.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format_version {version!r}, "
            f"expected {SNAPSHOT_FORMAT_VERSION}"
        )
    return state


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(wal_lsn, path)`` for every snapshot file, newest (highest LSN) first."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def load_latest_snapshot(directory: str) -> Optional[Tuple[Dict[str, Any], str]]:
    """The newest snapshot that passes verification, or ``None``.

    Corrupt/torn snapshot files (a crash cannot produce one through the
    atomic-rename protocol, but disks can) are skipped, not fatal: the
    previous snapshot plus a longer WAL suffix reconstructs the same state.
    """
    for _, path in list_snapshots(directory):
        try:
            return read_snapshot(path), path
        except SnapshotError:
            continue
    return None


def prune_snapshots(directory: str, keep: int = 2) -> List[str]:
    """Delete all but the ``keep`` newest snapshots; returns removed paths."""
    removed: List[str] = []
    for _, path in list_snapshots(directory)[max(keep, 1):]:
        try:
            os.remove(path)
            removed.append(path)
        except OSError:
            pass
    return removed


__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "list_snapshots",
    "load_latest_snapshot",
    "prune_snapshots",
    "read_snapshot",
    "snapshot_filename",
    "write_snapshot",
]
