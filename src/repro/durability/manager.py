"""The durability manager: WAL + snapshots + idempotency for one Database.

One :class:`DurabilityManager` owns the on-disk state under a database's
``data_dir``::

    data_dir/
        wal.log                  append-only delta log (wal.py framing)
        snapshot-<lsn>.json      periodic full-state snapshots (snapshot.py)
        plan_manifest.json       warm-start plan manifest (planner.persist)

and enforces the two orderings every crash-safety argument here rests on:

* **log before apply** — every mutation (``load_rows`` appends,
  ``delete_rows`` tombstones, ``update_rows`` delete+insert pairs) is
  framed, written and fsync'd to the WAL *before* any in-memory state
  changes.  An
  acknowledged write is therefore always in the WAL, so recovery replays
  it; an unacknowledged write either never reached the WAL (the client
  retries and it applies once) or reached it without the ack (recovery
  replays it, and the client's retry dedups against the applied-id table
  the replay rebuilt).  Exactly-once, both directions.
* **snapshot covers a prefix** — a snapshot records the ``wal_lsn`` up to
  which its contents are complete; recovery loads the newest valid
  snapshot and replays only records past that LSN, and compaction only
  drops records a durable snapshot covers.  A crash anywhere between
  "snapshot renamed" and "WAL compacted" is safe: replaying covered
  records is prevented by the LSN filter, not by the compaction.

Recovery (:meth:`DurabilityManager.recover`) proceeds dictionary → rows →
WAL replay → one catalog version bump → view re-materialization, and the
result is asserted (in tests, at every chaos-matrix crash point) equal to
a clean from-scratch load of the same acknowledged rows.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.wire import decode_row, iter_encoded_rows
from .failpoints import maybe_fire
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    load_latest_snapshot,
    prune_snapshots,
    write_snapshot,
)
from .wal import WriteAheadLog

WAL_FILENAME = "wal.log"
PLAN_MANIFEST_FILENAME = "plan_manifest.json"

#: retry-window size: how many distinct write request ids the server
#: remembers for dedup.  Retries older than the window re-apply; the
#: client contract (serve/client.py) retries within seconds, not days.
APPLIED_IDS_LIMIT = 8192


class DurabilityError(RuntimeError):
    """The durable state on disk cannot be reconciled with the catalog."""


class DurabilityManager:
    """Owns a database's WAL, snapshots and applied-request-id table.

    Thread-safety: every mutating call happens under the owning
    database's writer lock (the write path) or during single-threaded
    recovery, so the manager itself needs no locking.
    """

    def __init__(
        self,
        data_dir: str,
        fsync: bool = True,
        snapshot_every: int = 256,
        snapshots_kept: int = 2,
    ) -> None:
        self.data_dir = data_dir
        self.snapshot_every = max(int(snapshot_every), 1)
        self.snapshots_kept = max(int(snapshots_kept), 1)
        os.makedirs(data_dir, exist_ok=True)
        self.wal = WriteAheadLog(os.path.join(data_dir, WAL_FILENAME), fsync=fsync)
        #: LSN the newest durable snapshot covers (0 = no snapshot)
        self.snapshot_lsn = 0
        #: request_id -> rows appended, bounded LRU (the idempotency window)
        self.applied_request_ids: "OrderedDict[str, int]" = OrderedDict()
        self.records_since_snapshot = 0
        self.counters: Dict[str, int] = {
            "wal_appends": 0,
            "wal_records_replayed": 0,
            "snapshots_written": 0,
            "snapshots_loaded": 0,
            "dedup_hits": 0,
            "replay_dedup_skips": 0,
            "torn_tail_dropped": int(self.wal.torn_tail_dropped),
            "recovery_view_skips": 0,
        }
        self.last_recovery_report: Optional[Dict[str, Any]] = None

    @property
    def plan_manifest_path(self) -> str:
        return os.path.join(self.data_dir, PLAN_MANIFEST_FILENAME)

    # ------------------------------------------------------------------
    # idempotency table
    # ------------------------------------------------------------------
    def applied(self, request_id: Optional[str]) -> Optional[int]:
        """Rows appended by a previously applied write, or ``None``."""
        if request_id is None:
            return None
        count = self.applied_request_ids.get(request_id)
        if count is not None:
            self.applied_request_ids.move_to_end(request_id)
            self.counters["dedup_hits"] += 1
        return count

    def note_applied(self, request_id: Optional[str], appended: int) -> None:
        if request_id is None:
            return
        table = self.applied_request_ids
        table[request_id] = appended
        table.move_to_end(request_id)
        while len(table) > APPLIED_IDS_LIMIT:
            table.popitem(last=False)

    # ------------------------------------------------------------------
    # logging (call BEFORE applying, under the writer lock)
    # ------------------------------------------------------------------
    def log_load_rows(
        self,
        relation_name: str,
        rows: Sequence[Sequence[Any]],
        request_id: Optional[str] = None,
    ) -> int:
        """Durably log one ``load_rows`` delta; returns its LSN.

        ``rows`` must already be schema-validated/coerced (the caller runs
        ``Relation.validate_rows`` first) so a logged record can never
        fail to replay.
        """
        record: Dict[str, Any] = {
            "type": "load",
            "relation": relation_name,
            "rows": iter_encoded_rows(rows),
        }
        if request_id is not None:
            record["request_id"] = request_id
        lsn = self.wal.append(record)
        self.counters["wal_appends"] += 1
        self.records_since_snapshot += 1
        return lsn

    def log_delete_rows(
        self,
        relation_name: str,
        rows: Sequence[Sequence[Any]],
        request_id: Optional[str] = None,
    ) -> int:
        """Durably log one tombstone delete; returns its LSN.

        The record carries the deleted rows *by value*, not by position:
        snapshot compaction rewrites relations from live rows only, so
        physical positions do not survive a snapshot boundary while row
        values do.  Replay removes the first live row matching each value
        (bag semantics) — deterministic because WAL order is total.
        """
        record: Dict[str, Any] = {
            "type": "delete",
            "relation": relation_name,
            "rows": iter_encoded_rows(rows),
        }
        if request_id is not None:
            record["request_id"] = request_id
        lsn = self.wal.append(record)
        self.counters["wal_appends"] += 1
        self.records_since_snapshot += 1
        return lsn

    def log_update_rows(
        self,
        relation_name: str,
        deleted_rows: Sequence[Sequence[Any]],
        inserted_rows: Sequence[Sequence[Any]],
        request_id: Optional[str] = None,
    ) -> int:
        """Durably log one update (delete + insert) as a single record.

        One record, one request id: the update replays atomically —
        recovery either applies both halves or (when deduplicated)
        neither, so a crash between the two halves cannot split them.
        """
        record: Dict[str, Any] = {
            "type": "update",
            "relation": relation_name,
            "deleted": iter_encoded_rows(deleted_rows),
            "inserted": iter_encoded_rows(inserted_rows),
        }
        if request_id is not None:
            record["request_id"] = request_id
        lsn = self.wal.append(record)
        self.counters["wal_appends"] += 1
        self.records_since_snapshot += 1
        return lsn

    def log_materialize(self, name: str, sql: str) -> int:
        lsn = self.wal.append({"type": "view", "name": name, "sql": sql})
        self.counters["wal_appends"] += 1
        self.records_since_snapshot += 1
        return lsn

    def log_drop_view(self, name: str) -> int:
        lsn = self.wal.append({"type": "drop_view", "name": name})
        self.counters["wal_appends"] += 1
        self.records_since_snapshot += 1
        return lsn

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def build_state(self, database: Any) -> Dict[str, Any]:
        """Serialize the database's durable state (caller holds write lock)."""
        catalog = database.catalog
        relations = {
            relation.name: iter_encoded_rows(relation.rows)
            for relation in catalog.relations()
        }
        views = [
            {"name": view.name, "sql": view.sql}
            for view in database._views.values()
        ]
        return {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "catalog": catalog.name,
            "schema_fingerprint": catalog.schema_fingerprint(),
            "wal_lsn": self.wal.last_lsn,
            "relations": relations,
            "dictionary": catalog.encoding.dictionary.values_snapshot(),
            "views": views,
            "applied_request_ids": dict(self.applied_request_ids),
        }

    def snapshot(self, database: Any) -> Dict[str, Any]:
        """Write a snapshot now, then compact the WAL prefix it covers."""
        started = time.perf_counter()
        state = self.build_state(database)
        path = write_snapshot(self.data_dir, state)
        covered = int(state["wal_lsn"])
        self.snapshot_lsn = covered
        kept = self.wal.compact(covered)
        prune_snapshots(self.data_dir, keep=self.snapshots_kept)
        self.records_since_snapshot = 0
        self.counters["snapshots_written"] += 1
        return {
            "path": path,
            "wal_lsn": covered,
            "wal_records_kept": kept,
            "seconds": time.perf_counter() - started,
        }

    def maybe_snapshot(self, database: Any) -> Optional[Dict[str, Any]]:
        if self.records_since_snapshot >= self.snapshot_every:
            return self.snapshot(database)
        return None

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, database: Any) -> Dict[str, Any]:
        """Restore durable state into ``database`` (called from its init).

        Order matters: the dictionary is re-interned first so string
        codes come out deterministic across restarts, relation rows are
        *replaced* (never appended — a pre-populated catalog must not
        double-count), the WAL suffix replays raw row appends, the
        catalog version bumps exactly once, and views re-materialize
        last against the now-final data (view contents are a pure
        function of the data, so re-running their SQL is the recovery).
        """
        report: Dict[str, Any] = {
            "snapshot": None,
            "snapshot_lsn": 0,
            "wal_records_replayed": 0,
            "rows_replayed": 0,
            "views_restored": 0,
            "recovered": False,
        }
        catalog = database.catalog
        state = None
        loaded = load_latest_snapshot(self.data_dir)
        if loaded is not None:
            state, path = loaded
            fingerprint = state.get("schema_fingerprint")
            if fingerprint != catalog.schema_fingerprint():
                raise DurabilityError(
                    f"snapshot {path!r} was taken against a different schema "
                    f"(fingerprint {fingerprint!r}); refusing to recover into "
                    f"catalog {catalog.name!r}"
                )
            self.counters["snapshots_loaded"] += 1
            report["snapshot"] = path

        view_defs: "OrderedDict[str, str]" = OrderedDict()
        touched = False

        if state is not None:
            for value in state.get("dictionary", []):
                catalog.encoding.dictionary.intern(value)
            for name, encoded_rows in state.get("relations", {}).items():
                relation = catalog.relation(name)
                relation.delete_where(lambda row: True)
                relation.extend(decode_row(row) for row in encoded_rows)
            for entry in state.get("views", []):
                view_defs[entry["name"]] = entry["sql"]
            for request_id, count in state.get("applied_request_ids", {}).items():
                self.note_applied(request_id, int(count))
            self.snapshot_lsn = int(state.get("wal_lsn", 0))
            report["snapshot_lsn"] = self.snapshot_lsn
            # the WAL may have been compacted empty after this snapshot;
            # the LSN sequence must continue past what the snapshot covers
            # or fresh appends would be filtered out of the next replay
            self.wal.last_lsn = max(self.wal.last_lsn, self.snapshot_lsn)
            touched = True

        maybe_fire("recovery.before_replay")
        for record in self.wal.records(after_lsn=self.snapshot_lsn):
            kind = record.get("type")
            if kind == "load":
                request_id = record.get("request_id")
                if request_id is not None and request_id in self.applied_request_ids:
                    # a retry re-logged a write whose first attempt was
                    # rolled back mid-apply (or whose ack was lost);
                    # replaying both records would double-apply it
                    self.counters["replay_dedup_skips"] += 1
                else:
                    relation = catalog.relation(record["relation"])
                    rows = [decode_row(row) for row in record.get("rows", [])]
                    relation.extend(rows)
                    self.note_applied(request_id, len(rows))
                    report["rows_replayed"] += len(rows)
                    touched = True
            elif kind == "delete":
                request_id = record.get("request_id")
                if request_id is not None and request_id in self.applied_request_ids:
                    self.counters["replay_dedup_skips"] += 1
                else:
                    relation = catalog.relation(record["relation"])
                    rows = [decode_row(row) for row in record.get("rows", [])]
                    # delete by value, first live match per row (bag
                    # semantics): positions don't survive snapshot
                    # compaction, but WAL order is total so the match is
                    # deterministic
                    relation.delete_positions(relation.match_positions(rows))
                    self.note_applied(request_id, len(rows))
                    report["rows_replayed"] += len(rows)
                    touched = True
            elif kind == "update":
                request_id = record.get("request_id")
                if request_id is not None and request_id in self.applied_request_ids:
                    self.counters["replay_dedup_skips"] += 1
                else:
                    relation = catalog.relation(record["relation"])
                    deleted = [decode_row(row) for row in record.get("deleted", [])]
                    inserted = [decode_row(row) for row in record.get("inserted", [])]
                    if deleted:
                        relation.delete_positions(relation.match_positions(deleted))
                    if inserted:
                        relation.extend(inserted)
                    self.note_applied(request_id, len(deleted) + len(inserted))
                    report["rows_replayed"] += len(deleted) + len(inserted)
                    touched = True
            elif kind == "view":
                view_defs[record["name"]] = record["sql"]
            elif kind == "drop_view":
                view_defs.pop(record["name"], None)
            self.counters["wal_records_replayed"] += 1
            report["wal_records_replayed"] += 1
        self.records_since_snapshot = report["wal_records_replayed"]

        if touched:
            # one version bump: statistics, the TAG encoding and engines
            # all lazily rebuild against the recovered data
            catalog.note_data_change()

        for name, sql in view_defs.items():
            try:
                database.materialize(sql, name=name, _durable_log=False)
                report["views_restored"] += 1
            except Exception:
                # views are derived state; a definition that no longer
                # compiles (schema drift) must not block data recovery
                self.counters["recovery_view_skips"] += 1

        report["recovered"] = touched or bool(view_defs)
        self.last_recovery_report = report
        return report

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "wal_lsn": self.wal.last_lsn,
            "wal_size_bytes": self.wal.size_bytes,
            "wal_fsync": self.wal.fsync,
            "snapshot_lsn": self.snapshot_lsn,
            "wal_lag_records": self.records_since_snapshot,
            "snapshot_every": self.snapshot_every,
            "applied_request_ids": len(self.applied_request_ids),
            **self.counters,
        }

    def close(self) -> None:
        self.wal.close()


__all__ = [
    "APPLIED_IDS_LIMIT",
    "DurabilityError",
    "DurabilityManager",
    "PLAN_MANIFEST_FILENAME",
    "WAL_FILENAME",
]
