"""Durability and fault tolerance: WAL, snapshots, failpoints, recovery.

The subsystem behind ``Database(data_dir=...)``: an append-only
checksummed write-ahead log of ``load_rows`` deltas (:mod:`.wal`),
periodic atomic catalog snapshots (:mod:`.snapshot`), the manager that
ties them to a database with exactly-once write semantics
(:mod:`.manager`), and the named-failpoint fault injector the chaos
suite drives (:mod:`.failpoints`).
"""

from .failpoints import (
    CRASH_EXIT_STATUS,
    FAILPOINTS,
    FAILPOINTS_ENV,
    FailpointError,
    FaultInjected,
    FaultInjector,
    clear,
    crashable_failpoints,
    injector,
    install,
    maybe_fire,
    seeded_crash_schedule,
)
from .manager import (
    APPLIED_IDS_LIMIT,
    DurabilityError,
    DurabilityManager,
    PLAN_MANIFEST_FILENAME,
    WAL_FILENAME,
)
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    list_snapshots,
    load_latest_snapshot,
    prune_snapshots,
    read_snapshot,
    snapshot_filename,
    write_snapshot,
)
from .wal import MAX_RECORD_BYTES, WalCorruption, WriteAheadLog

__all__ = [
    "APPLIED_IDS_LIMIT",
    "CRASH_EXIT_STATUS",
    "DurabilityError",
    "DurabilityManager",
    "FAILPOINTS",
    "FAILPOINTS_ENV",
    "FailpointError",
    "FaultInjected",
    "FaultInjector",
    "MAX_RECORD_BYTES",
    "PLAN_MANIFEST_FILENAME",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "WAL_FILENAME",
    "WalCorruption",
    "WriteAheadLog",
    "clear",
    "crashable_failpoints",
    "injector",
    "install",
    "list_snapshots",
    "load_latest_snapshot",
    "maybe_fire",
    "prune_snapshots",
    "read_snapshot",
    "seeded_crash_schedule",
    "snapshot_filename",
    "write_snapshot",
]
