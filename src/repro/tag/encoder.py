"""TAG encoding: map a relational database into a Tuple-Attribute Graph.

The encoding follows paper Section 3 exactly:

1. every tuple ``t`` of relation ``R`` becomes a *tuple vertex* labelled
   ``R`` (duplicates get fresh vertices) storing ``t`` in its properties;
2. every distinct attribute value in the active domain becomes a single
   *attribute vertex* labelled with its domain/type, shared across all
   relations and attribute names that use the value;
3. every occurrence of value ``a`` in attribute ``A`` of an ``R``-tuple
   becomes an edge labelled ``R.A`` between the tuple vertex and the
   attribute vertex (undirected, i.e. materialised as two directed edges).

Floats and long text are not materialised as attribute vertices (they are
kept only inside the tuple vertex), matching the loading policy of
Section 8.2.  The resulting graph is bipartite and query independent.

When the source catalog carries a
:class:`~repro.storage.encoding.CatalogEncoding`, tuple payloads are stored
*encoded*: strings as int32 dictionary codes, dates as epoch days, NULLs as
in-band sentinels.  Attribute vertices for encoded domains are keyed by the
code/epoch day (``attr:str:{code}``, ``attr:date:{days}``) — because the
dictionary is catalog-global, code equality coincides with value equality
across relations, so the paper's value-sharing property is preserved.  The
decoded value is kept on the attribute vertex for the result boundary, and
:meth:`TagGraph.decoded_tuple_data` decodes a tuple payload on demand.
"""

from __future__ import annotations

import datetime as _dt
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bsp.graph import Graph, Vertex, VertexId
from ..relational.catalog import Catalog
from ..relational.relation import Relation
from ..relational.schema import Schema
from ..relational.types import NULL, value_size_bytes
from ..storage.encoding import (
    CODE,
    EPOCH_DAY,
    CatalogEncoding,
    ColumnCodec,
    RelationCodec,
    date_to_epoch_day,
)

#: Property key under which a tuple vertex stores its tuple (a dict
#: ``column name -> value``; values are encoded when the graph has an
#: encoding — use :meth:`TagGraph.decoded_tuple_data` at the boundary).
TUPLE_DATA_KEY = "tuple"
#: Property key under which an attribute vertex stores its (decoded) value.
ATTRIBUTE_VALUE_KEY = "value"
#: Label prefix of attribute vertices, completed with the value's domain.
ATTRIBUTE_LABEL_PREFIX = "attr"


def edge_label(relation_name: str, column_name: str) -> str:
    """The ``R.A`` label carried by TAG edges (paper Section 3, step 3)."""
    return f"{relation_name}.{column_name}"


def tuple_vertex_id(relation_name: str, index: int) -> VertexId:
    return f"{relation_name}_{index}"


def attribute_vertex_id(value: Any) -> VertexId:
    """One vertex per distinct value of the active domain.

    The id embeds the value's type so that, e.g., integer ``1`` and string
    ``"1"`` remain distinct vertices (they belong to different domains and
    never equi-join in SQL without an explicit cast).  Used for raw
    (unencoded) domains; encoded domains key their vertices by code
    (``attr:str:{code}``) or epoch day (``attr:date:{days}``) instead.
    """
    if hasattr(value, "isoformat"):
        return f"attr:date:{value.isoformat()}"
    return f"attr:{type(value).__name__}:{value!r}"


def attribute_label(value: Any) -> str:
    if isinstance(value, bool):
        return f"{ATTRIBUTE_LABEL_PREFIX}:bool"
    if isinstance(value, int):
        return f"{ATTRIBUTE_LABEL_PREFIX}:int"
    if isinstance(value, float):
        return f"{ATTRIBUTE_LABEL_PREFIX}:float"
    if hasattr(value, "isoformat"):
        return f"{ATTRIBUTE_LABEL_PREFIX}:date"
    return f"{ATTRIBUTE_LABEL_PREFIX}:string"


@dataclass
class LoadReport:
    """Loading statistics — the quantities behind Tables 1/2 and Figure 14.

    With an encoding attached, ``tuple_bytes`` counts *encoded* sizes:
    4 bytes per string/date slot plus the amortised dictionary growth the
    slot caused (a string's bytes are paid once, on its catalog-global
    first interning).  Attribute vertices store the decoded value, so
    ``attribute_bytes`` keeps the legacy per-value accounting.
    """

    seconds: float = 0.0
    tuple_vertices: int = 0
    attribute_vertices: int = 0
    edges: int = 0
    tuple_bytes: int = 0
    attribute_bytes: int = 0
    edge_bytes: int = 0
    per_relation: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.tuple_bytes + self.attribute_bytes + self.edge_bytes

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seconds": self.seconds,
            "tuple_vertices": self.tuple_vertices,
            "attribute_vertices": self.attribute_vertices,
            "edges": self.edges,
            "total_bytes": self.total_bytes,
        }


class TagGraph(Graph):
    """A TAG graph with relational-aware lookup helpers.

    All tuple appends — bulk encode, single-row maintenance inserts and
    batched deltas — funnel through :meth:`append_tuple`, so encoding and
    :class:`LoadReport` accounting cannot diverge between the paths.
    """

    def __init__(self, name: str = "tag", encoding: Optional[CatalogEncoding] = None) -> None:
        super().__init__(name)
        self._attribute_ids: Dict[VertexId, VertexId] = {}
        self._tuple_counters: Dict[str, int] = {}
        self.load_report = LoadReport()
        self.encoding = encoding
        # relation name -> RelationCodec (empty when encoding is None)
        self._codecs: Dict[str, RelationCodec] = {}
        # relation name -> per-column (name, dtype, materialise, codec) plan
        self._column_plans: Dict[str, Tuple[Tuple[str, Any, bool, Optional[ColumnCodec]], ...]] = {}
        # attribute vertex -> number of incident tuple edges.  An attribute
        # vertex is shared by every tuple carrying its value; the refcount
        # is what lets a delete free the vertex exactly when the *last*
        # referencing tuple dies — never before (a premature free would
        # break the surviving tuples' joins), never after (an orphan leaks)
        self._attribute_refcounts: Dict[VertexId, int] = {}
        # per-vertex byte accounting so deletes can fold LoadReport exactly
        self._tuple_bytes: Dict[VertexId, int] = {}
        self._attribute_sizes: Dict[VertexId, int] = {}

    # ------------------------------------------------------------------
    # schema registration (encoding + materialisation policy per relation)
    # ------------------------------------------------------------------
    def register_schema(
        self, schema: Schema, materialise_flags: Optional[Sequence[bool]] = None
    ) -> None:
        """Fix the ingest plan for ``schema.name``: which columns become
        attribute vertices and how each column is encoded.  Idempotent
        unless new flags are passed; called implicitly with the default
        per-column policy on first append."""
        if materialise_flags is None:
            if schema.name in self._column_plans:
                return
            flags: Sequence[bool] = [column.materialise_as_vertex for column in schema.columns]
        else:
            flags = list(materialise_flags)
        codec = None
        if self.encoding is not None:
            codec = self.encoding.codec_for(schema)
            self._codecs[schema.name] = codec
        self._column_plans[schema.name] = tuple(
            (
                column.name,
                column.dtype,
                flag,
                codec.by_name[column.name] if codec is not None else None,
            )
            for column, flag in zip(schema.columns, flags)
        )

    def relation_codec(self, relation_name: str) -> Optional[RelationCodec]:
        return self._codecs.get(relation_name)

    # ------------------------------------------------------------------
    # lookups used by the TAG-join vertex programs
    # ------------------------------------------------------------------
    def tuple_vertices_of(self, relation_name: str) -> List[VertexId]:
        return self.vertices_with_label(relation_name)

    def _attribute_id_for(self, value: Any) -> Optional[VertexId]:
        """The vertex id a (decoded) value would live under, or None when
        the value provably has no vertex (string absent from the
        dictionary)."""
        if self.encoding is not None:
            if isinstance(value, str):
                code = self.encoding.dictionary.code_of(value)
                if code < 0:
                    return None
                return f"attr:str:{code}"
            if hasattr(value, "isoformat"):
                if isinstance(value, _dt.datetime):
                    value = value.date()
                return f"attr:date:{date_to_epoch_day(value)}"
        return attribute_vertex_id(value)

    def attribute_vertex_for(self, value: Any) -> Optional[VertexId]:
        vertex_id = self._attribute_id_for(value)
        if vertex_id is None:
            return None
        return vertex_id if self.has_vertex(vertex_id) else None

    def is_tuple_vertex(self, vertex: Vertex) -> bool:
        return TUPLE_DATA_KEY in vertex.properties

    def is_attribute_vertex(self, vertex: Vertex) -> bool:
        return ATTRIBUTE_VALUE_KEY in vertex.properties

    def tuple_data(self, vertex: Vertex) -> Dict[str, Any]:
        return vertex.properties[TUPLE_DATA_KEY]

    def decoded_tuple_data(self, vertex: Vertex) -> Dict[str, Any]:
        """The tuple payload with codes/epoch days decoded back to values.

        The boundary decode for consumers that hand rows to the user
        (direct two-way programs, debugging); the compiled fragment path
        decodes through its own per-output decoders instead.
        """
        data = vertex.properties[TUPLE_DATA_KEY]
        codec = self._codecs.get(vertex.label)
        if codec is None or not codec.has_encoded:
            return data
        return codec.decode_values(data)

    def attribute_value(self, vertex: Vertex) -> Any:
        return vertex.properties[ATTRIBUTE_VALUE_KEY]

    def attribute_vertices_with_edge(self, relation_name: str, column_name: str) -> List[VertexId]:
        """Attribute vertices having at least one ``R.A`` out-edge.

        Used to activate join-attribute vertices at the start of a phase
        without scanning the full attribute-vertex population.
        """
        label = edge_label(relation_name, column_name)
        result = []
        for vertex_id in self._attribute_ids:
            if self.out_degree(vertex_id, label) > 0:
                result.append(vertex_id)
        return result

    def attribute_vertex_ids(self) -> List[VertexId]:
        return list(self._attribute_ids)

    # ------------------------------------------------------------------
    # ingest (bulk encode, maintenance inserts and deltas all land here;
    # paper Section 3: attribute vertices are cheaper to maintain than
    # RDBMS indexes — only local edge changes)
    # ------------------------------------------------------------------
    def append_tuple(
        self, schema: Schema, values: Dict[str, Any], index: Optional[int] = None
    ) -> VertexId:
        """Append one (decoded, schema-coerced) tuple: encode the payload,
        create/connect attribute vertices and do all LoadReport accounting.

        ``index`` pins the tuple's 1-based vertex index explicitly; the
        encoder passes ``physical position + 1`` so vertex indexes stay
        aligned with the relation's physical row positions even when the
        relation carries tombstones (deleted positions simply have no
        vertex).  Without it the next counter value is used — identical,
        as appends only ever land past every existing position.
        """
        plan = self._column_plans.get(schema.name)
        if plan is None:
            self.register_schema(schema)
            plan = self._column_plans[schema.name]
        report = self.load_report
        if index is None:
            index = self._tuple_counters.get(schema.name, 0) + 1
        self._tuple_counters[schema.name] = max(
            self._tuple_counters.get(schema.name, 0), index
        )
        vertex_id = tuple_vertex_id(schema.name, index)
        edges_before = self.edge_count

        data: Dict[str, Any] = dict(values)
        tuple_bytes = 0
        connects: List[Tuple[str, Any, Any, Any, Optional[ColumnCodec]]] = []
        for column_name, dtype, materialise, codec in plan:
            if column_name not in values:
                continue
            value = values[column_name]
            if codec is not None:
                encoded, nbytes = codec.encode_with_bytes(value)
            else:
                encoded, nbytes = value, value_size_bytes(value, dtype)
            data[column_name] = encoded
            tuple_bytes += nbytes
            if value is not NULL and materialise:
                connects.append((column_name, dtype, value, encoded, codec))

        self.add_vertex(vertex_id, schema.name, {TUPLE_DATA_KEY: data})
        report.tuple_bytes += tuple_bytes
        report.tuple_vertices += 1
        self._tuple_bytes[vertex_id] = tuple_bytes
        for column_name, dtype, value, encoded, codec in connects:
            if codec is not None and codec.kind in (CODE, EPOCH_DAY):
                prefix = "str" if codec.kind == CODE else "date"
                attr_id: VertexId = f"attr:{prefix}:{encoded}"
            else:
                attr_id = attribute_vertex_id(value)
            if not self.has_vertex(attr_id):
                attr_bytes = value_size_bytes(value, dtype)
                self.add_vertex(attr_id, attribute_label(value), {ATTRIBUTE_VALUE_KEY: value})
                self._attribute_ids[attr_id] = attr_id
                self._attribute_sizes[attr_id] = attr_bytes
                report.attribute_vertices += 1
                report.attribute_bytes += attr_bytes
            self.add_edge(vertex_id, attr_id, edge_label(schema.name, column_name), undirected=True)
            self._attribute_refcounts[attr_id] = self._attribute_refcounts.get(attr_id, 0) + 1

        # 16 bytes per directed edge: source id reference + target id reference
        report.edge_bytes += (self.edge_count - edges_before) * 16
        report.edges = self.edge_count
        report.per_relation[schema.name] = report.per_relation.get(schema.name, 0) + 1
        return vertex_id

    def insert_tuple(self, schema: Schema, values: Dict[str, Any]) -> VertexId:
        return self.append_tuple(schema, values)

    def delete_tuple(self, vertex_id: VertexId) -> None:
        """Delete a tuple vertex, its incident edges, and — exactly when the
        last referencing tuple dies — its now-unreferenced attribute vertices.

        Attribute vertices are shared across every relation and column
        carrying the value, so freeing them is refcounted: a vertex still
        referenced by any surviving tuple must stay (its joins depend on
        it), and one referenced by nobody must go (it would otherwise leak
        and keep matching equality lookups against deleted data).
        """
        self.delete_tuples([vertex_id])

    def delete_tuples(self, vertex_ids: Sequence[VertexId]) -> None:
        """Batch form of :meth:`delete_tuple` — same semantics, shared scans.

        A hot attribute vertex (a low-cardinality segment or priority
        value) can carry thousands of reverse edges; filtering its edge
        list once per deleted tuple makes a bulk delete quadratic.  The
        batch filters every affected reverse-edge list exactly once
        against the whole victim set, and removes the dead vertices from
        their label lists in one pass.
        """
        dead = set(vertex_ids)
        if not dead:
            return
        vertices = []
        for vertex_id in vertex_ids:
            vertex = self.vertex(vertex_id)  # raises before any mutation
            if not self.is_tuple_vertex(vertex):
                raise ValueError(f"{vertex_id!r} is not a tuple vertex")
            vertices.append(vertex)
        report = self.load_report
        edges_before = self.edge_count
        # one reference drop per incident edge, grouped per attribute
        drops: Dict[VertexId, int] = {}
        touched: set = set()  # (attribute id, edge label) lists to filter
        for vertex_id in dead:
            for edge in self.out_edges(vertex_id):
                drops[edge.target] = drops.get(edge.target, 0) + 1
                touched.add((edge.target, edge.label))
        for attr_id, label in touched:
            reverse_list = self._out_edges[attr_id].get(label, [])
            kept = [reverse for reverse in reverse_list if reverse.target not in dead]
            if kept:
                self._out_edges[attr_id][label] = kept
            else:
                # drop the label key entirely: a surviving attribute vertex
                # must look exactly like a re-encode, which never creates
                # empty adjacency lists
                self._out_edges[attr_id].pop(label, None)
            self._edge_count -= len(reverse_list) - len(kept)
        dead_attributes: List[VertexId] = []
        for attr_id, dropped in drops.items():
            remaining = self._attribute_refcounts.get(attr_id, 0) - dropped
            if remaining > 0:
                self._attribute_refcounts[attr_id] = remaining
            else:
                self._attribute_refcounts.pop(attr_id, None)
                if self.has_vertex(attr_id):
                    dead_attributes.append(attr_id)
                self._attribute_ids.pop(attr_id, None)
                report.attribute_vertices -= 1
                report.attribute_bytes -= self._attribute_sizes.pop(attr_id, 0)
        self.remove_vertices(list(dead) + dead_attributes)
        for vertex in vertices:
            report.tuple_vertices -= 1
            report.tuple_bytes -= self._tuple_bytes.pop(vertex.vertex_id, 0)
            if vertex.label in report.per_relation:
                report.per_relation[vertex.label] -= 1
        report.edge_bytes -= (edges_before - self.edge_count) * 16
        report.edges = self.edge_count

    def delete_relation_tuples(self, schema: Schema, positions: Sequence[int]) -> List[VertexId]:
        """Delete the tuple vertices at the given physical row positions.

        Positions are the relation's stable physical coordinates; the
        vertex index is ``position + 1`` by the append-time invariant.
        """
        deleted = [
            tuple_vertex_id(schema.name, position + 1) for position in positions
        ]
        self.delete_tuples(deleted)
        return deleted

    def note_tuple_floor(self, relation_name: str, count: int) -> None:
        """Raise the relation's tuple counter to at least ``count`` so the
        next counter-assigned append cannot reuse a deleted position's
        index (the encoder calls this with the physical row count)."""
        if count > self._tuple_counters.get(relation_name, 0):
            self._tuple_counters[relation_name] = count

    # internal ------------------------------------------------------------
    def _connect(self, tuple_vertex: VertexId, relation: str, column: str, value: Any) -> None:
        """Legacy raw-value connect (no encoding, no byte accounting)."""
        attr_id = attribute_vertex_id(value)
        if not self.has_vertex(attr_id):
            self.add_vertex(attr_id, attribute_label(value), {ATTRIBUTE_VALUE_KEY: value})
            self._attribute_ids[attr_id] = attr_id
            self.load_report.attribute_vertices += 1
        self.add_edge(tuple_vertex, attr_id, edge_label(relation, column), undirected=True)
        self._attribute_refcounts[attr_id] = self._attribute_refcounts.get(attr_id, 0) + 1


class TagEncoder:
    """Builds a :class:`TagGraph` from a relational :class:`Catalog`."""

    def __init__(self, materialise_overrides: Optional[Dict[Tuple[str, str], bool]] = None) -> None:
        """
        Args:
            materialise_overrides: optional map ``(relation, column) -> bool``
                forcing attribute-vertex materialisation on or off for
                specific columns, overriding the per-column/domain policy.
        """
        self._overrides = dict(materialise_overrides or {})

    def encode(self, catalog: Catalog, name: Optional[str] = None) -> TagGraph:
        """Encode every relation of ``catalog`` into one TAG graph."""
        graph = TagGraph(
            name or f"tag({catalog.name})",
            encoding=getattr(catalog, "encoding", None),
        )
        started = time.perf_counter()
        for relation in catalog:
            self._encode_relation(graph, relation)
        report = graph.load_report
        report.seconds = time.perf_counter() - started
        report.tuple_vertices = sum(
            len(graph.tuple_vertices_of(relation.name)) for relation in catalog
        )
        report.attribute_vertices = len(graph.attribute_vertex_ids())
        report.edges = graph.edge_count
        return graph

    # ------------------------------------------------------------------
    def _encode_relation(self, graph: TagGraph, relation: Relation) -> None:
        schema = relation.schema
        graph.register_schema(
            schema,
            [
                self._overrides.get((schema.name, column.name), column.materialise_as_vertex)
                for column in schema.columns
            ],
        )
        column_names = schema.column_names
        # encode by *physical* position (+1) so tuple vertex indexes match
        # the relation's stable row coordinates; tombstoned positions get
        # no vertex, and the counter floor keeps future appends past them
        for position, row in relation.live_items():
            graph.append_tuple(schema, dict(zip(column_names, row)), index=position + 1)
        graph.note_tuple_floor(schema.name, relation.physical_count)


def encode_catalog(catalog: Catalog, **kwargs) -> TagGraph:
    """Convenience wrapper: ``TagEncoder().encode(catalog)``."""
    return TagEncoder(**kwargs).encode(catalog)
