"""TAG encoding: map a relational database into a Tuple-Attribute Graph.

The encoding follows paper Section 3 exactly:

1. every tuple ``t`` of relation ``R`` becomes a *tuple vertex* labelled
   ``R`` (duplicates get fresh vertices) storing ``t`` in its properties;
2. every distinct attribute value in the active domain becomes a single
   *attribute vertex* labelled with its domain/type, shared across all
   relations and attribute names that use the value;
3. every occurrence of value ``a`` in attribute ``A`` of an ``R``-tuple
   becomes an edge labelled ``R.A`` between the tuple vertex and the
   attribute vertex (undirected, i.e. materialised as two directed edges).

Floats and long text are not materialised as attribute vertices (they are
kept only inside the tuple vertex), matching the loading policy of
Section 8.2.  The resulting graph is bipartite and query independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..bsp.graph import Graph, Vertex, VertexId
from ..relational.catalog import Catalog
from ..relational.relation import Relation
from ..relational.schema import Schema
from ..relational.types import NULL, value_size_bytes

#: Property key under which a tuple vertex stores its tuple (a dict
#: ``column name -> value``).
TUPLE_DATA_KEY = "tuple"
#: Property key under which an attribute vertex stores its value.
ATTRIBUTE_VALUE_KEY = "value"
#: Label prefix of attribute vertices, completed with the value's domain.
ATTRIBUTE_LABEL_PREFIX = "attr"


def edge_label(relation_name: str, column_name: str) -> str:
    """The ``R.A`` label carried by TAG edges (paper Section 3, step 3)."""
    return f"{relation_name}.{column_name}"


def tuple_vertex_id(relation_name: str, index: int) -> VertexId:
    return f"{relation_name}_{index}"


def attribute_vertex_id(value: Any) -> VertexId:
    """One vertex per distinct value of the active domain.

    The id embeds the value's type so that, e.g., integer ``1`` and string
    ``"1"`` remain distinct vertices (they belong to different domains and
    never equi-join in SQL without an explicit cast).
    """
    if hasattr(value, "isoformat"):
        return f"attr:date:{value.isoformat()}"
    return f"attr:{type(value).__name__}:{value!r}"


def attribute_label(value: Any) -> str:
    if isinstance(value, bool):
        return f"{ATTRIBUTE_LABEL_PREFIX}:bool"
    if isinstance(value, int):
        return f"{ATTRIBUTE_LABEL_PREFIX}:int"
    if isinstance(value, float):
        return f"{ATTRIBUTE_LABEL_PREFIX}:float"
    if hasattr(value, "isoformat"):
        return f"{ATTRIBUTE_LABEL_PREFIX}:date"
    return f"{ATTRIBUTE_LABEL_PREFIX}:string"


@dataclass
class LoadReport:
    """Loading statistics — the quantities behind Tables 1/2 and Figure 14."""

    seconds: float = 0.0
    tuple_vertices: int = 0
    attribute_vertices: int = 0
    edges: int = 0
    tuple_bytes: int = 0
    attribute_bytes: int = 0
    edge_bytes: int = 0
    per_relation: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.tuple_bytes + self.attribute_bytes + self.edge_bytes

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seconds": self.seconds,
            "tuple_vertices": self.tuple_vertices,
            "attribute_vertices": self.attribute_vertices,
            "edges": self.edges,
            "total_bytes": self.total_bytes,
        }


class TagGraph(Graph):
    """A TAG graph with relational-aware lookup helpers."""

    def __init__(self, name: str = "tag") -> None:
        super().__init__(name)
        self._attribute_ids: Dict[VertexId, VertexId] = {}
        self._tuple_counters: Dict[str, int] = {}
        self.load_report = LoadReport()

    # ------------------------------------------------------------------
    # lookups used by the TAG-join vertex programs
    # ------------------------------------------------------------------
    def tuple_vertices_of(self, relation_name: str) -> List[VertexId]:
        return self.vertices_with_label(relation_name)

    def attribute_vertex_for(self, value: Any) -> Optional[VertexId]:
        vertex_id = attribute_vertex_id(value)
        return vertex_id if self.has_vertex(vertex_id) else None

    def is_tuple_vertex(self, vertex: Vertex) -> bool:
        return TUPLE_DATA_KEY in vertex.properties

    def is_attribute_vertex(self, vertex: Vertex) -> bool:
        return ATTRIBUTE_VALUE_KEY in vertex.properties

    def tuple_data(self, vertex: Vertex) -> Dict[str, Any]:
        return vertex.properties[TUPLE_DATA_KEY]

    def attribute_value(self, vertex: Vertex) -> Any:
        return vertex.properties[ATTRIBUTE_VALUE_KEY]

    def attribute_vertices_with_edge(self, relation_name: str, column_name: str) -> List[VertexId]:
        """Attribute vertices having at least one ``R.A`` out-edge.

        Used to activate join-attribute vertices at the start of a phase
        without scanning the full attribute-vertex population.
        """
        label = edge_label(relation_name, column_name)
        result = []
        for vertex_id in self._attribute_ids:
            if self.out_degree(vertex_id, label) > 0:
                result.append(vertex_id)
        return result

    def attribute_vertex_ids(self) -> List[VertexId]:
        return list(self._attribute_ids)

    # ------------------------------------------------------------------
    # incremental maintenance (paper Section 3: attribute vertices are
    # cheaper to maintain than RDBMS indexes — only local edge changes)
    # ------------------------------------------------------------------
    def insert_tuple(self, schema: Schema, values: Dict[str, Any]) -> VertexId:
        index = self._tuple_counters.get(schema.name, 0) + 1
        self._tuple_counters[schema.name] = index
        vertex_id = tuple_vertex_id(schema.name, index)
        self.add_vertex(vertex_id, schema.name, {TUPLE_DATA_KEY: dict(values)})
        for column in schema.columns:
            value = values.get(column.name, NULL)
            if value is NULL or not column.materialise_as_vertex:
                continue
            self._connect(vertex_id, schema.name, column.name, value)
        return vertex_id

    def delete_tuple(self, vertex_id: VertexId) -> None:
        """Delete a tuple vertex and its incident edges (attribute vertices stay)."""
        vertex = self.vertex(vertex_id)
        if not self.is_tuple_vertex(vertex):
            raise ValueError(f"{vertex_id!r} is not a tuple vertex")
        # remove reverse edges from attribute vertices pointing back at us
        for edge in self.out_edges(vertex_id):
            reverse_list = self._out_edges[edge.target].get(edge.label, [])
            self._out_edges[edge.target][edge.label] = [
                reverse for reverse in reverse_list if reverse.target != vertex_id
            ]
            self._edge_count -= len(reverse_list) - len(
                self._out_edges[edge.target][edge.label]
            )
        self.remove_vertex(vertex_id)

    # internal ------------------------------------------------------------
    def _connect(self, tuple_vertex: VertexId, relation: str, column: str, value: Any) -> None:
        attr_id = attribute_vertex_id(value)
        if not self.has_vertex(attr_id):
            self.add_vertex(attr_id, attribute_label(value), {ATTRIBUTE_VALUE_KEY: value})
            self._attribute_ids[attr_id] = attr_id
        self.add_edge(tuple_vertex, attr_id, edge_label(relation, column), undirected=True)


class TagEncoder:
    """Builds a :class:`TagGraph` from a relational :class:`Catalog`."""

    def __init__(self, materialise_overrides: Optional[Dict[Tuple[str, str], bool]] = None) -> None:
        """
        Args:
            materialise_overrides: optional map ``(relation, column) -> bool``
                forcing attribute-vertex materialisation on or off for
                specific columns, overriding the per-column/domain policy.
        """
        self._overrides = dict(materialise_overrides or {})

    def encode(self, catalog: Catalog, name: Optional[str] = None) -> TagGraph:
        """Encode every relation of ``catalog`` into one TAG graph."""
        graph = TagGraph(name or f"tag({catalog.name})")
        started = time.perf_counter()
        for relation in catalog:
            self._encode_relation(graph, relation)
        report = graph.load_report
        report.seconds = time.perf_counter() - started
        report.tuple_vertices = sum(
            len(graph.tuple_vertices_of(relation.name)) for relation in catalog
        )
        report.attribute_vertices = len(graph.attribute_vertex_ids())
        report.edges = graph.edge_count
        return graph

    # ------------------------------------------------------------------
    def _encode_relation(self, graph: TagGraph, relation: Relation) -> None:
        schema = relation.schema
        report = graph.load_report
        materialise_flags = [
            self._overrides.get((schema.name, column.name), column.materialise_as_vertex)
            for column in schema.columns
        ]
        count_before_edges = graph.edge_count
        for index, row in enumerate(relation, start=1):
            vertex_id = tuple_vertex_id(schema.name, index)
            values = dict(zip(schema.column_names, row))
            graph.add_vertex(vertex_id, schema.name, {TUPLE_DATA_KEY: values})
            report.tuple_bytes += sum(
                value_size_bytes(value, column.dtype)
                for value, column in zip(row, schema.columns)
            )
            for value, column, materialise in zip(row, schema.columns, materialise_flags):
                if value is NULL or not materialise:
                    continue
                already_present = graph.has_vertex(attribute_vertex_id(value))
                graph._connect(vertex_id, schema.name, column.name, value)
                if not already_present:
                    report.attribute_bytes += value_size_bytes(value, column.dtype)
        graph._tuple_counters[schema.name] = len(relation)
        new_edges = graph.edge_count - count_before_edges
        # 16 bytes per directed edge: source id reference + target id reference
        report.edge_bytes += new_edges * 16
        report.per_relation[schema.name] = len(relation)


def encode_catalog(catalog: Catalog, **kwargs) -> TagGraph:
    """Convenience wrapper: ``TagEncoder().encode(catalog)``."""
    return TagEncoder(**kwargs).encode(catalog)
