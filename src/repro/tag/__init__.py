"""TAG encoding: Tuple-Attribute Graph representation of relational data."""

from .encoder import (
    ATTRIBUTE_VALUE_KEY,
    TUPLE_DATA_KEY,
    LoadReport,
    TagEncoder,
    TagGraph,
    attribute_label,
    attribute_vertex_id,
    edge_label,
    encode_catalog,
    tuple_vertex_id,
)
from .statistics import (
    TagStatistics,
    column_selectivity,
    edge_label_degrees,
    heavy_value_count,
    storage_comparison,
)

__all__ = [
    "ATTRIBUTE_VALUE_KEY",
    "LoadReport",
    "TUPLE_DATA_KEY",
    "TagEncoder",
    "TagGraph",
    "TagStatistics",
    "attribute_label",
    "attribute_vertex_id",
    "column_selectivity",
    "edge_label",
    "edge_label_degrees",
    "encode_catalog",
    "heavy_value_count",
    "storage_comparison",
    "tuple_vertex_id",
]
