"""Size and shape statistics of TAG graphs.

Backs the reproduction of Figure 14 (loaded data sizes) and Tables 1/2
(loading times), and provides the degree/selectivity statistics the
TAG-join planner uses to pick traversal orders and heavy/light thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..relational.catalog import Catalog
from .encoder import TagGraph, edge_label


@dataclass
class TagStatistics:
    """Summary statistics of a TAG graph."""

    tuple_vertices: int
    attribute_vertices: int
    edges: int
    total_bytes: int
    load_seconds: float
    vertices_by_label: Dict[str, int]

    @classmethod
    def of(cls, graph: TagGraph) -> "TagStatistics":
        report = graph.load_report
        return cls(
            tuple_vertices=report.tuple_vertices,
            attribute_vertices=report.attribute_vertices,
            edges=graph.edge_count,
            total_bytes=report.total_bytes,
            load_seconds=report.seconds,
            vertices_by_label=graph.count_by_label(),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tuple_vertices": self.tuple_vertices,
            "attribute_vertices": self.attribute_vertices,
            "edges": self.edges,
            "total_bytes": self.total_bytes,
            "load_seconds": self.load_seconds,
        }


def edge_label_degrees(graph: TagGraph, relation: str, column: str) -> List[int]:
    """Out-degrees of attribute vertices along ``relation.column`` edges.

    Degree 1 everywhere means the column is key-like; large degrees signal
    skew (heavy values), which is what the heavy/light split of the cyclic
    algorithm keys on (Section 6.1.2).
    """
    label = edge_label(relation, column)
    degrees = []
    for vertex_id in graph.attribute_vertex_ids():
        degree = graph.out_degree(vertex_id, label)
        if degree:
            degrees.append(degree)
    return degrees


def column_selectivity(graph: TagGraph, relation: str, column: str) -> float:
    """Distinct values / tuples for a column, estimated from the TAG graph."""
    degrees = edge_label_degrees(graph, relation, column)
    total = sum(degrees)
    if total == 0:
        return 0.0
    return len(degrees) / total


def heavy_value_count(graph: TagGraph, relation: str, column: str, threshold: int) -> int:
    """Number of values occurring more than ``threshold`` times in ``relation.column``."""
    return sum(1 for degree in edge_label_degrees(graph, relation, column) if degree > threshold)


def storage_comparison(graph: TagGraph, catalog: Catalog) -> Dict[str, int]:
    """Bytes stored relationally vs as a TAG graph (Figure 14's comparison)."""
    return {
        "relational_bytes": catalog.total_data_size_bytes(),
        "tag_bytes": graph.load_report.total_bytes,
        "tag_tuple_bytes": graph.load_report.tuple_bytes,
        "tag_attribute_bytes": graph.load_report.attribute_bytes,
        "tag_edge_bytes": graph.load_report.edge_bytes,
    }
