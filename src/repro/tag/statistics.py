"""Size, shape and value statistics backing the TAG-join planner.

Backs the reproduction of Figure 14 (loaded data sizes) and Tables 1/2
(loading times), and provides the degree/selectivity statistics the
TAG-join planner uses to pick traversal orders and heavy/light thresholds.

The second half of the module is the catalog-level statistics store the
cost-based planner consumes: per-relation cardinalities plus per-column
distinct-value counts (NDV), null counts and derived selectivities,
gathered in one pass over the loaded catalog.  These numbers feed the
message-volume cost model of :mod:`repro.planner.cost` and the
cardinality estimates of the baseline engine's join-order planner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from ..algebra.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from ..algebra.parameters import ParameterRef
from ..incremental.sketch import KMVSketch
from ..relational.catalog import Catalog
from ..relational.relation import Relation
from ..relational.types import NULL
from .encoder import TagGraph, edge_label


@dataclass
class TagStatistics:
    """Summary statistics of a TAG graph."""

    tuple_vertices: int
    attribute_vertices: int
    edges: int
    total_bytes: int
    load_seconds: float
    vertices_by_label: Dict[str, int]

    @classmethod
    def of(cls, graph: TagGraph) -> "TagStatistics":
        report = graph.load_report
        return cls(
            tuple_vertices=report.tuple_vertices,
            attribute_vertices=report.attribute_vertices,
            edges=graph.edge_count,
            total_bytes=report.total_bytes,
            load_seconds=report.seconds,
            vertices_by_label=graph.count_by_label(),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tuple_vertices": self.tuple_vertices,
            "attribute_vertices": self.attribute_vertices,
            "edges": self.edges,
            "total_bytes": self.total_bytes,
            "load_seconds": self.load_seconds,
        }


def edge_label_degrees(graph: TagGraph, relation: str, column: str) -> List[int]:
    """Out-degrees of attribute vertices along ``relation.column`` edges.

    Degree 1 everywhere means the column is key-like; large degrees signal
    skew (heavy values), which is what the heavy/light split of the cyclic
    algorithm keys on (Section 6.1.2).
    """
    label = edge_label(relation, column)
    degrees = []
    for vertex_id in graph.attribute_vertex_ids():
        degree = graph.out_degree(vertex_id, label)
        if degree:
            degrees.append(degree)
    return degrees


def column_selectivity(graph: TagGraph, relation: str, column: str) -> float:
    """Distinct values / tuples for a column, estimated from the TAG graph."""
    degrees = edge_label_degrees(graph, relation, column)
    total = sum(degrees)
    if total == 0:
        return 0.0
    return len(degrees) / total


def heavy_value_count(graph: TagGraph, relation: str, column: str, threshold: int) -> int:
    """Number of values occurring more than ``threshold`` times in ``relation.column``."""
    return sum(1 for degree in edge_label_degrees(graph, relation, column) if degree > threshold)


def storage_comparison(graph: TagGraph, catalog: Catalog) -> Dict[str, int]:
    """Bytes stored relationally vs as a TAG graph (Figure 14's comparison)."""
    return {
        "relational_bytes": catalog.total_data_size_bytes(),
        "tag_bytes": graph.load_report.total_bytes,
        "tag_tuple_bytes": graph.load_report.tuple_bytes,
        "tag_attribute_bytes": graph.load_report.attribute_bytes,
        "tag_edge_bytes": graph.load_report.edge_bytes,
    }


# ----------------------------------------------------------------------
# catalog-level statistics for the cost-based planner
# ----------------------------------------------------------------------
#: selectivity assumed for predicates the estimator has no model for
DEFAULT_PREDICATE_SELECTIVITY = 1.0 / 3.0
#: selectivity assumed for range comparisons (<, <=, >, >=)
RANGE_SELECTIVITY = 1.0 / 3.0
#: selectivity assumed for BETWEEN predicates
BETWEEN_SELECTIVITY = 1.0 / 4.0
#: selectivity assumed for LIKE predicates
LIKE_SELECTIVITY = 1.0 / 4.0


@dataclass(frozen=True)
class ColumnStatistics:
    """Value statistics of one column: distinct and null counts.

    ``sketch`` is the column's mergeable KMV distinct-value synopsis,
    seeded with every value seen at collect time.  It is what keeps
    ``distinct_values`` honest across delta ingests without rescanning:
    new values fold into the sketch, and the NDV is re-estimated from it
    (exact below the sketch size, ~6% relative error beyond).
    """

    column: str
    distinct_values: int
    null_count: int
    row_count: int
    sketch: Optional[KMVSketch] = None

    @property
    def selectivity(self) -> float:
        """Distinct values per row (1.0 means key-like, small means skewed)."""
        if self.row_count == 0:
            return 0.0
        return self.distinct_values / self.row_count

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count


@dataclass(frozen=True)
class RelationStatistics:
    """Cardinality and per-column statistics of one base relation."""

    relation: str
    rows: int
    bytes: int
    columns: Dict[str, ColumnStatistics]

    @classmethod
    def of(cls, relation: Relation) -> "RelationStatistics":
        names = relation.schema.column_names
        nulls: Dict[str, int] = {name: 0 for name in names}
        sketches: Dict[str, KMVSketch] = {name: KMVSketch() for name in names}
        for row in relation:
            for name, value in zip(names, row):
                if value is NULL or value is None:
                    nulls[name] += 1
                else:
                    sketches[name].add(value)
        row_count = len(relation)
        # NDV comes from the relation, which reads the encoded column
        # store's distinct-code sets (exact, already maintained at insert
        # time) when the relation is catalog-bound — the "dictionary
        # sizes are statistics" half of the encoding contract.  Unbound
        # relations fall back to the memoized value scan.
        columns = {
            name: ColumnStatistics(
                column=name,
                distinct_values=relation.distinct_count(name),
                null_count=nulls[name],
                row_count=row_count,
                sketch=sketches[name],
            )
            for name in names
        }
        return cls(
            relation=relation.name,
            rows=row_count,
            bytes=relation.data_size_bytes(),
            columns=columns,
        )

    def ndv(self, column: str) -> int:
        stats = self.columns.get(column)
        return stats.distinct_values if stats is not None else max(1, self.rows)

    def with_delta(
        self, rows: Sequence[Dict[str, Any]], added_bytes: int = 0
    ) -> "RelationStatistics":
        """A copy reflecting ``rows`` appended, without rescanning.

        Cardinality and null counts update exactly; NDV folds the new
        values into each column's KMV sketch and re-estimates.  The
        estimate is kept monotonic (``max`` with the previous count) —
        under appends alone the true NDV can only grow, so sketch jitter
        must never shrink the planner's input.  It is also *capped* at
        previous-count-plus-appended-rows: appending ``n`` rows can add at
        most ``n`` distinct values, and the cap is what stops a sketch
        still carrying deletion drift (values removed but not yet rebuilt
        away) from re-inflating the NDV it can no longer vouch for.
        """
        row_count = self.rows + len(rows)
        columns: Dict[str, ColumnStatistics] = {}
        for name, stats in self.columns.items():
            null_added = 0
            sketch = stats.sketch
            for row in rows:
                value = row.get(name, NULL)
                if value is NULL or value is None:
                    null_added += 1
                elif sketch is not None:
                    sketch.add(value)
            distinct = stats.distinct_values
            if sketch is not None:
                ceiling = stats.distinct_values + len(rows)
                distinct = max(distinct, min(sketch.estimate(), ceiling))
            columns[name] = replace(
                stats,
                distinct_values=distinct,
                null_count=stats.null_count + null_added,
                row_count=row_count,
            )
        return replace(
            self, rows=row_count, bytes=self.bytes + added_bytes, columns=columns
        )

    def with_removals(
        self,
        relation: Relation,
        removed_rows: Sequence[Dict[str, Any]],
        removed_bytes: int = 0,
    ) -> "RelationStatistics":
        """A copy reflecting ``removed_rows`` deleted, without a full rescan.

        Cardinality, null counts and bytes decrease exactly.  NDV is read
        back from the (already tombstoned) relation — exact for free on
        encoded columns via the store's distinct-code refcounts, one
        memoized live-row scan otherwise.  The KMV sketches cannot
        subtract, so each one records its deletion drift and is re-seeded
        from the surviving values once drift passes
        :data:`~repro.incremental.sketch.REBUILD_DRIFT_RATIO` — that is
        what lets the estimate re-converge instead of over-counting the
        dead values forever.
        """
        row_count = max(0, self.rows - len(removed_rows))
        columns: Dict[str, ColumnStatistics] = {}
        for name, stats in self.columns.items():
            null_removed = 0
            value_removed = 0
            for row in removed_rows:
                value = row.get(name, NULL)
                if value is NULL or value is None:
                    null_removed += 1
                else:
                    value_removed += 1
            sketch = stats.sketch
            if sketch is not None and value_removed:
                sketch.note_removals(value_removed)
                if sketch.needs_rebuild(row_count):
                    sketch.rebuild_from(
                        value
                        for value in relation.column_values(name)
                        if value is not NULL and value is not None
                    )
            columns[name] = replace(
                stats,
                distinct_values=relation.distinct_count(name),
                null_count=max(0, stats.null_count - null_removed),
                row_count=row_count,
                sketch=sketch,
            )
        return replace(
            self,
            rows=row_count,
            bytes=max(0, self.bytes - removed_bytes),
            columns=columns,
        )


@dataclass
class CatalogStatistics:
    """Statistics of a whole catalog, collected once at load time.

    ``collect`` makes a single pass over every relation; the planner holds
    on to the resulting object for the life of the executor and refreshes
    it only when the catalog version changes (see
    :meth:`repro.relational.catalog.Catalog.version`).
    """

    catalog_name: str
    catalog_version: int
    relations: Dict[str, RelationStatistics] = field(default_factory=dict)
    collection_seconds: float = 0.0

    @classmethod
    def collect(cls, catalog: Catalog) -> "CatalogStatistics":
        started = time.perf_counter()
        relations = {relation.name: RelationStatistics.of(relation) for relation in catalog}
        return cls(
            catalog_name=catalog.name,
            catalog_version=catalog.version,
            relations=relations,
            collection_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        catalog: Catalog,
        relation_name: str,
        rows: Sequence[Dict[str, Any]],
        added_bytes: int = 0,
    ) -> None:
        """Fold appended ``rows`` (as column->value dicts) in, in place.

        Updates the one relation's statistics via its sketches and stamps
        the catalog's *current* version, so a following
        :func:`refreshed_statistics` call short-circuits instead of
        rescanning.  Because the cost-based planners hold a reference to
        this object, their cost inputs are fresh the moment this returns.
        """
        stats = self.relations.get(relation_name)
        if stats is None:
            self.relations[relation_name] = RelationStatistics.of(
                catalog.relation(relation_name)
            )
        else:
            self.relations[relation_name] = stats.with_delta(rows, added_bytes)
        self.catalog_version = catalog.version

    def apply_removal(
        self,
        catalog: Catalog,
        relation_name: str,
        removed_rows: Sequence[Dict[str, Any]],
        removed_bytes: int = 0,
    ) -> None:
        """Fold deleted ``removed_rows`` out, in place (tombstone path).

        The deletion mirror of :meth:`apply_delta`: exact cardinality,
        null-count and byte decreases, NDV re-read from the live relation,
        sketch drift tracked (and rebuilt past the threshold) — then the
        catalog's current version is stamped so the planners keep their
        reference without a rescan.  Must run *after* the relation has
        tombstoned the rows, since it reads live-only state back.
        """
        stats = self.relations.get(relation_name)
        relation = catalog.relation(relation_name)
        if stats is None:
            self.relations[relation_name] = RelationStatistics.of(relation)
        else:
            self.relations[relation_name] = stats.with_removals(
                relation, removed_rows, removed_bytes
            )
        self.catalog_version = catalog.version

    # ------------------------------------------------------------------
    def cardinality(self, table: str) -> int:
        stats = self.relations.get(table)
        return stats.rows if stats is not None else 1

    def distinct_count(self, table: str, column: str) -> int:
        stats = self.relations.get(table)
        if stats is None:
            return 1
        return max(1, stats.ndv(column))

    def equality_selectivity(self, table: str, column: str) -> float:
        """Fraction of rows matching ``column = literal`` under uniformity."""
        return 1.0 / self.distinct_count(table, column)

    # ------------------------------------------------------------------
    # predicate selectivity estimation (System-R style heuristics)
    # ------------------------------------------------------------------
    def predicate_selectivity(self, table: str, predicate: Expression) -> float:
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(table, predicate)
        if isinstance(predicate, Between):
            return BETWEEN_SELECTIVITY
        if isinstance(predicate, Like):
            return 1.0 - LIKE_SELECTIVITY if predicate.negated else LIKE_SELECTIVITY
        if isinstance(predicate, InList):
            column = _single_column(predicate.operand)
            if column is not None:
                ndv = self.distinct_count(table, column)
                fraction = min(1.0, len(predicate.values) / ndv)
            else:
                fraction = DEFAULT_PREDICATE_SELECTIVITY
            return 1.0 - fraction if predicate.negated else fraction
        if isinstance(predicate, IsNull):
            fraction = self._null_fraction(table, predicate.operand)
            return 1.0 - fraction if predicate.negated else fraction
        if isinstance(predicate, And):
            product = 1.0
            for part in predicate.operands:
                product *= self.predicate_selectivity(table, part)
            return product
        if isinstance(predicate, Or):
            miss = 1.0
            for part in predicate.operands:
                miss *= 1.0 - self.predicate_selectivity(table, part)
            return 1.0 - miss
        if isinstance(predicate, Not):
            return 1.0 - self.predicate_selectivity(table, predicate.operand)
        return DEFAULT_PREDICATE_SELECTIVITY

    def _comparison_selectivity(self, table: str, predicate: Comparison) -> float:
        column = _single_column(predicate.left) or _single_column(predicate.right)
        if predicate.op == "=":
            if column is not None and _is_constant(predicate.left, predicate.right):
                return self.equality_selectivity(table, column)
            return DEFAULT_PREDICATE_SELECTIVITY
        if predicate.op in ("!=", "<>"):
            if column is not None and _is_constant(predicate.left, predicate.right):
                return 1.0 - self.equality_selectivity(table, column)
            return 1.0 - DEFAULT_PREDICATE_SELECTIVITY
        if predicate.op in ("<", "<=", ">", ">="):
            return RANGE_SELECTIVITY
        return DEFAULT_PREDICATE_SELECTIVITY

    def _null_fraction(self, table: str, operand: Expression) -> float:
        column = _single_column(operand)
        stats = self.relations.get(table)
        if column is None or stats is None:
            return DEFAULT_PREDICATE_SELECTIVITY
        column_stats = stats.columns.get(column)
        return column_stats.null_fraction if column_stats is not None else 0.0

    def estimated_rows(
        self, table: str, predicates: Sequence[Expression] = ()
    ) -> float:
        """Cardinality of ``table`` after applying pushed-down ``predicates``."""
        rows = float(self.cardinality(table))
        for predicate in predicates:
            rows *= self.predicate_selectivity(table, predicate)
        return max(rows, 0.0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "catalog": self.catalog_name,
            "version": self.catalog_version,
            "collection_seconds": self.collection_seconds,
            "relations": {
                name: {"rows": stats.rows, "bytes": stats.bytes}
                for name, stats in self.relations.items()
            },
        }


def refreshed_statistics(
    catalog: Catalog, cached: Optional[CatalogStatistics]
) -> CatalogStatistics:
    """Return ``cached`` if still valid for ``catalog``, else re-collect.

    The single source of the invalidation rule (catalog version comparison),
    shared by the TAG cost-based planner and the RDBMS baseline planner so
    their refresh semantics cannot diverge.
    """
    if cached is None or cached.catalog_version != catalog.version:
        return CatalogStatistics.collect(catalog)
    return cached


def _single_column(expression: Expression) -> Optional[str]:
    """The bare column name when ``expression`` is a single column reference."""
    if isinstance(expression, ColumnRef):
        return expression.column
    return None


def _is_constant(left: Expression, right: Expression) -> bool:
    """True when exactly one side is a constant (literal or bound parameter).

    Query parameters count as constants: a prepared ``column = :v`` filter
    has the same shape as ``column = literal`` for estimation purposes even
    though the value is only known at execution time.
    """

    def constant(expression: Expression) -> bool:
        return isinstance(expression, (Literal, ParameterRef))

    return constant(left) != constant(right)
