"""Small library of classic vertex programs.

These are not part of TAG-join itself; they exist to validate the BSP
substrate against well-known algorithms (connected components, SSSP,
degree counting) exactly as one would sanity-check a new Pregel engine
before layering a novel workload on top of it.  They also demonstrate the
run-scoped state idiom: cross-superstep values go through
``context.state(vertex)`` during the run and are read back from
``self.run_state`` in ``result``, never touching the shared graph.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .aggregators import SumAggregator
from .engine import BSPEngine, SuperstepContext, VertexProgram
from .graph import Graph, Vertex


class ConnectedComponents(VertexProgram):
    """Hash-min label propagation: each vertex converges to the minimum
    vertex id in its (weakly) connected component."""

    STATE_KEY = "component"

    def compute(
        self, vertex: Vertex, messages: List[Any], graph: Graph, context: SuperstepContext
    ) -> None:
        state = context.state(vertex)
        current = state.get(self.STATE_KEY)
        candidate = min(messages) if messages else None
        if context.superstep == 0:
            candidate = vertex.vertex_id if candidate is None else min(candidate, vertex.vertex_id)
        if current is None or (candidate is not None and candidate < current):
            state[self.STATE_KEY] = candidate
            for edge in graph.out_edges(vertex.vertex_id):
                context.charge()
                context.send(edge.target, candidate)

    def result(self, graph: Graph, aggregators) -> Dict[str, Any]:
        return {
            vertex.vertex_id: self.run_state.peek(vertex).get(self.STATE_KEY, vertex.vertex_id)
            for vertex in graph.vertices()
        }


class SingleSourceShortestPaths(VertexProgram):
    """Classic Pregel SSSP over edges with a numeric ``weight`` property."""

    STATE_KEY = "distance"

    def __init__(self, source: str, weight_property: str = "weight") -> None:
        self.source = source
        self.weight_property = weight_property

    def initial_active_vertices(self, graph: Graph):
        return [self.source]

    def compute(
        self, vertex: Vertex, messages: List[Any], graph: Graph, context: SuperstepContext
    ) -> None:
        state = context.state(vertex)
        best = state.get(self.STATE_KEY)
        incoming = min(messages) if messages else None
        if context.superstep == 0 and vertex.vertex_id == self.source:
            incoming = 0.0
        if incoming is None:
            return
        if best is None or incoming < best:
            state[self.STATE_KEY] = incoming
            for edge in graph.out_edges(vertex.vertex_id):
                weight = edge.properties.get(self.weight_property, 1.0)
                context.charge()
                context.send(edge.target, incoming + weight)

    def result(self, graph: Graph, aggregators) -> Dict[str, Optional[float]]:
        return {
            vertex.vertex_id: self.run_state.peek(vertex).get(self.STATE_KEY)
            for vertex in graph.vertices()
        }


class DegreeCount(VertexProgram):
    """One-superstep program that records each vertex's out-degree and sums
    the total edge count in a global aggregator (exercises aggregators)."""

    AGGREGATOR = "total_degree"

    def __init__(self, engine: BSPEngine) -> None:
        engine.register_aggregator(SumAggregator(self.AGGREGATOR))

    def compute(
        self, vertex: Vertex, messages: List[Any], graph: Graph, context: SuperstepContext
    ) -> None:
        if context.superstep > 0:
            return
        degree = graph.out_degree(vertex.vertex_id)
        context.state(vertex)["degree"] = degree
        context.charge(degree)
        context.aggregate(self.AGGREGATOR, degree)

    def result(self, graph: Graph, aggregators) -> Dict[str, Any]:
        return {
            "degrees": {
                v.vertex_id: self.run_state.peek(v).get("degree", 0) for v in graph.vertices()
            },
            "total": aggregators.get(self.AGGREGATOR).value(),
        }
