"""Communication / computation cost accounting for BSP runs.

The paper's cost measure (Section 2, "Cost Measure") counts the total
number of messages sent over all supersteps and the total per-vertex
computation.  For the distributed experiments (Section 8.6) the relevant
quantity is *network traffic*: bytes crossing machine boundaries.  The
metrics objects here capture all three so benchmarks can report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


def payload_size_bytes(payload: Any) -> int:
    """Approximate serialized size of a message payload.

    Numbers and dates count 8 bytes, strings their length, containers the
    sum of their elements plus a small per-element overhead.  This mirrors
    the fixed-width message-size assumption of the paper's analysis
    (Section 5.2.1) while still letting the collection phase's tuple-bearing
    messages weigh more than id-bearing ones.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        # large homogeneous containers (the collection phase's row tables)
        # are sized by sampling the first element to keep accounting O(1)
        # per message instead of O(payload)
        size = len(payload)
        if size == 0:
            return 4
        if size > 8:
            first = next(iter(payload))
            return 4 + size * payload_size_bytes(first)
        return 4 + sum(payload_size_bytes(element) for element in payload)
    if isinstance(payload, dict):
        return 4 + sum(
            payload_size_bytes(key) + payload_size_bytes(value)
            for key, value in payload.items()
        )
    if hasattr(payload, "isoformat"):  # date / datetime
        return 8
    # columnar batches (and any future table-like payload) size themselves;
    # duck-typed so this module never imports the execution layer
    hint = getattr(payload, "payload_size_hint", None)
    if hint is not None:
        return hint()
    return 16


@dataclass
class SuperstepMetrics:
    """Counters for one superstep."""

    superstep: int
    active_vertices: int = 0
    messages_sent: int = 0
    message_bytes: int = 0
    network_messages: int = 0
    network_bytes: int = 0
    compute_units: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "superstep": self.superstep,
            "active_vertices": self.active_vertices,
            "messages_sent": self.messages_sent,
            "message_bytes": self.message_bytes,
            "network_messages": self.network_messages,
            "network_bytes": self.network_bytes,
            "compute_units": self.compute_units,
        }


@dataclass
class RunMetrics:
    """Aggregated counters for a whole vertex-program run (or query)."""

    label: str = "run"
    supersteps: List[SuperstepMetrics] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    # query planning/compilation accounting (filled by the TAG-join executor)
    compile_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def new_superstep(self, superstep: int) -> SuperstepMetrics:
        metrics = SuperstepMetrics(superstep)
        self.supersteps.append(metrics)
        return metrics

    # ------------------------------------------------------------------
    # totals (the quantities reported in the paper's tables/figures)
    # ------------------------------------------------------------------
    @property
    def superstep_count(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        return sum(step.messages_sent for step in self.supersteps)

    @property
    def total_message_bytes(self) -> int:
        return sum(step.message_bytes for step in self.supersteps)

    @property
    def total_network_messages(self) -> int:
        return sum(step.network_messages for step in self.supersteps)

    @property
    def total_network_bytes(self) -> int:
        return sum(step.network_bytes for step in self.supersteps)

    @property
    def total_compute(self) -> int:
        return sum(step.compute_units for step in self.supersteps)

    @property
    def max_active_vertices(self) -> int:
        return max((step.active_vertices for step in self.supersteps), default=0)

    def merge(self, other: "RunMetrics") -> None:
        """Fold another run's counters into this one (multi-phase queries)."""
        offset = len(self.supersteps)
        for step in other.supersteps:
            copied = SuperstepMetrics(
                superstep=offset + step.superstep,
                active_vertices=step.active_vertices,
                messages_sent=step.messages_sent,
                message_bytes=step.message_bytes,
                network_messages=step.network_messages,
                network_bytes=step.network_bytes,
                compute_units=step.compute_units,
            )
            self.supersteps.append(copied)
        self.wall_time_seconds += other.wall_time_seconds
        self.compile_seconds += other.compile_seconds
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses

    def summary(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "supersteps": self.superstep_count,
            "messages": self.total_messages,
            "message_bytes": self.total_message_bytes,
            "network_messages": self.total_network_messages,
            "network_bytes": self.total_network_bytes,
            "compute": self.total_compute,
            "wall_time_seconds": self.wall_time_seconds,
            "compile_seconds": self.compile_seconds,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunMetrics({self.label}: {self.superstep_count} supersteps, "
            f"{self.total_messages} msgs, {self.total_compute} compute)"
        )
