"""The vertex-centric BSP execution engine (a Pregel-style simulator).

The engine drives a :class:`VertexProgram` over a :class:`~repro.bsp.graph.Graph`
in synchronous supersteps (paper Section 2):

* every active vertex runs ``compute`` with the messages delivered to it;
* messages sent during superstep *i* are delivered at superstep *i + 1*;
* a vertex deactivates at the end of a superstep and is reactivated only by
  an incoming message (the model used by the paper's Algorithm 2);
* global aggregator vertices collect values contributed during the
  superstep and expose them to the next one;
* a *master hook* (``before_superstep``) runs once per superstep on the
  coordinator — TAG-join uses it to pop the next traversal label from the
  plan stack, mirroring the query driver of a TigerGraph GSQL query.

The engine is single-process but partition-aware: a
:class:`~repro.bsp.partition.Partitioner` assigns vertices to workers and
the metrics distinguish intra-worker from cross-worker (network) messages,
which is what the paper's distributed experiments measure.

Per-run scratch state is **run-scoped**: each :meth:`BSPEngine.run` owns a
fresh :class:`RunState` mapping vertex ids to scratch dictionaries, exposed
to vertex programs as ``context.state(vertex)``.  Nothing a program writes
during a run ever lands on the shared :class:`~repro.bsp.graph.Graph`, so
any number of runs — including runs driven by different threads — may
execute concurrently over one immutable graph.  A :class:`BSPEngine`
instance itself is single-run plumbing (outbox, metrics); callers that
execute concurrently create one engine per run, which is exactly what
:class:`repro.core.executor.TagJoinExecutor` does.
"""

from __future__ import annotations

import time
from collections import defaultdict
from types import MappingProxyType
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.cancellation import check_cancelled
from ..durability.failpoints import maybe_fire
from .aggregators import Aggregator, AggregatorRegistry
from .graph import Edge, Graph, Vertex, VertexId
from .metrics import RunMetrics, payload_size_bytes
from .partition import Partitioner, SinglePartitioner


class BSPError(RuntimeError):
    """Raised for protocol violations (e.g. messaging an unknown vertex)."""


# immutable so a stray write through a peek() result raises instead of
# leaking into every RunState's view of every untouched vertex
_EMPTY_STATE: Mapping[str, Any] = MappingProxyType({})


class RunState:
    """Per-run vertex scratch state: ``vertex_id -> {key: value}``.

    One instance lives exactly as long as one :meth:`BSPEngine.run` and is
    never attached to the shared graph, which is what makes concurrent
    executions over a single graph safe: each run's marked edges, partial
    join tables and algorithm-specific scratch values are private to it.
    Entries are created lazily, so a run over a huge graph that touches a
    handful of vertices costs memory proportional to the touched set — and
    tearing a run down is dropping one object, not an :math:`O(|V|)` sweep
    over every vertex of the graph.
    """

    __slots__ = ("_by_vertex",)

    def __init__(self) -> None:
        self._by_vertex: Dict[VertexId, Dict[str, Any]] = {}

    def of(self, vertex: Union[Vertex, VertexId]) -> Dict[str, Any]:
        """The (lazily created) scratch dict of ``vertex`` for this run."""
        vertex_id = vertex.vertex_id if isinstance(vertex, Vertex) else vertex
        state = self._by_vertex.get(vertex_id)
        if state is None:
            state = self._by_vertex[vertex_id] = {}
        return state

    def peek(self, vertex: Union[Vertex, VertexId]) -> Mapping[str, Any]:
        """Read-only view: the vertex's scratch dict, or an empty mapping.

        Unlike :meth:`of` this never allocates, so result assembly can scan
        a whole graph without materialising entries for untouched vertices.
        (The empty mapping is immutable; use :meth:`of` to write.)
        """
        vertex_id = vertex.vertex_id if isinstance(vertex, Vertex) else vertex
        return self._by_vertex.get(vertex_id, _EMPTY_STATE)

    def touched_vertices(self) -> Iterator[VertexId]:
        """Ids of the vertices that acquired scratch state during the run."""
        return iter(self._by_vertex)

    def __len__(self) -> int:
        return len(self._by_vertex)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunState({len(self._by_vertex)} vertices touched)"


class SuperstepContext:
    """Per-superstep facade handed to ``VertexProgram.compute``.

    Provides message sending, aggregator access, run-scoped vertex state,
    cost charging and the current superstep number.  All communication
    accounting flows through this object.
    """

    def __init__(
        self,
        engine: "BSPEngine",
        superstep: int,
        run_state: Optional[RunState] = None,
    ) -> None:
        self._engine = engine
        self.superstep = superstep
        self.run_state = run_state if run_state is not None else RunState()
        self._outbox: Dict[VertexId, List[Any]] = defaultdict(list)
        self._aggregator_inbox: List[Tuple[str, Any]] = []
        self._messages_sent = 0
        self._message_bytes = 0
        self._network_messages = 0
        self._network_bytes = 0
        self._compute_units = 0
        self._halt_requested = False
        self._current_vertex: Optional[Vertex] = None

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, target: VertexId, payload: Any) -> None:
        """Send ``payload`` to ``target``, delivered next superstep."""
        if not self._engine.graph.has_vertex(target):
            raise BSPError(f"message sent to unknown vertex {target!r}")
        self._outbox[target].append(payload)
        self._messages_sent += 1
        size = payload_size_bytes(payload)
        self._message_bytes += size
        if self._current_vertex is not None:
            source_partition = self._engine.partition_of(self._current_vertex.vertex_id)
            target_partition = self._engine.partition_of(target)
            if source_partition != target_partition:
                self._network_messages += 1
                self._network_bytes += size

    def send_along(self, edge: Edge, payload: Any) -> None:
        """Send a message across ``edge`` (to its target)."""
        self.send(edge.target, payload)

    def send_to_many(self, targets: Sequence[VertexId], payload: Any) -> None:
        """Batched variant of :meth:`send`: one payload fanned out to many targets.

        Semantically identical to calling :meth:`send` once per target:
        the same messages land in the same inboxes, with the same message
        count and the same cross-worker attribution.  Byte accounting is
        cheaper, not identical — the payload is sized once for the whole
        fan-out and row *tables* (lists) are always sized by first-row
        sampling, so ``message_bytes`` for a small table of uneven rows
        may differ slightly from the per-target :meth:`send` total (which
        walks containers of up to eight elements exactly).  The slotted
        TAG-join program uses this to ship its per-superstep row batches
        (one list of slotted tuples per destination vertex) without paying
        the per-edge bookkeeping of the row-at-a-time path.
        """
        if not targets:
            return
        engine = self._engine
        graph = engine.graph
        outbox = self._outbox
        if type(payload) is list and payload:
            # a collection-phase row table: sample one row instead of
            # walking up to eight (the small-container exact path)
            size = 4 + len(payload) * payload_size_bytes(payload[0])
        else:
            size = payload_size_bytes(payload)
        current = self._current_vertex
        network = 0
        if current is None or engine.num_workers == 1:
            # single-worker runs can never cross a partition boundary, so
            # skip the per-target partition lookups entirely
            for target in targets:
                if not graph.has_vertex(target):
                    raise BSPError(f"message sent to unknown vertex {target!r}")
                outbox[target].append(payload)
        else:
            source_partition = engine.partition_of(current.vertex_id)
            for target in targets:
                if not graph.has_vertex(target):
                    raise BSPError(f"message sent to unknown vertex {target!r}")
                outbox[target].append(payload)
                if engine.partition_of(target) != source_partition:
                    network += 1
        count = len(targets)
        self._messages_sent += count
        self._message_bytes += size * count
        self._network_messages += network
        self._network_bytes += network * size

    # ------------------------------------------------------------------
    # run-scoped vertex state
    # ------------------------------------------------------------------
    def state(self, vertex: Union[Vertex, VertexId]) -> Dict[str, Any]:
        """The scratch dict of ``vertex``, private to the current run.

        This replaces the old pattern of mutating ``vertex.state`` on the
        shared graph: the returned dict lives in the run's
        :class:`RunState`, so concurrent runs over one graph never observe
        each other's scratch values and no cross-run reset is needed.
        """
        return self.run_state.of(vertex)

    # ------------------------------------------------------------------
    # aggregators
    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the global aggregator ``name``.

        Contributions are also charged as messages: the aggregator is a
        vertex whose id every vertex knows (Section 2), so talking to it is
        communication, and it is exactly the bottleneck the paper observes
        for global aggregation.
        """
        if name not in self._engine.aggregators:
            raise BSPError(f"unknown aggregator {name!r}")
        self._aggregator_inbox.append((name, value))
        self._messages_sent += 1
        size = payload_size_bytes(value)
        self._message_bytes += size
        if self._current_vertex is not None and self._engine.num_workers > 1:
            # the aggregator lives on worker 0 by convention
            if self._engine.partition_of(self._current_vertex.vertex_id) != 0:
                self._network_messages += 1
                self._network_bytes += size

    def aggregated_value(self, name: str) -> Any:
        """Read the value an aggregator held at the start of this superstep."""
        return self._engine.aggregators.get(name).value()

    # ------------------------------------------------------------------
    # cost accounting & control
    # ------------------------------------------------------------------
    def charge(self, units: int = 1) -> None:
        """Charge ``units`` of per-vertex computation (edge scans, joins...)."""
        self._compute_units += units

    def halt(self) -> None:
        """Request global termination after this superstep (master hook only)."""
        self._halt_requested = True

    # internal -----------------------------------------------------------
    def _set_current_vertex(self, vertex: Optional[Vertex]) -> None:
        self._current_vertex = vertex


class VertexProgram:
    """User-defined vertex program (paper Section 2).

    Subclasses implement ``compute``; they may override the lifecycle hooks
    to drive multi-phase computations.  Cross-superstep per-vertex scratch
    values go through ``context.state(vertex)`` — the engine binds the
    run's :class:`RunState` to :attr:`run_state` before the first superstep
    so ``result`` can read what ``compute`` wrote.  One instance serves one
    run at a time: concurrent runs need one program (and one engine) each.
    """

    #: the scratch state of the run currently executing this program
    #: (bound by :meth:`BSPEngine.run`; None before the program has run)
    run_state: Optional[RunState] = None

    def initial_active_vertices(self, graph: Graph) -> Iterable[VertexId]:
        """Vertices active at superstep 0 (default: all)."""
        return graph.vertex_ids()

    def before_superstep(self, superstep: int, graph: Graph, context: SuperstepContext) -> None:
        """Master hook run once before each superstep's vertex computations."""

    def compute(
        self,
        vertex: Vertex,
        messages: List[Any],
        graph: Graph,
        context: SuperstepContext,
    ) -> None:
        """Per-vertex computation; must only touch local data and messages."""
        raise NotImplementedError

    def after_superstep(self, superstep: int, graph: Graph, context: SuperstepContext) -> None:
        """Master hook run after the superstep's vertex computations."""

    def result(self, graph: Graph, aggregators: AggregatorRegistry) -> Any:
        """Assemble the distributed output after termination (default: None)."""
        return None


class BSPEngine:
    """Runs vertex programs over a graph in synchronous supersteps."""

    def __init__(
        self,
        graph: Graph,
        partitioner: Optional[Partitioner] = None,
        max_supersteps: int = 10_000,
    ) -> None:
        self.graph = graph
        self.partitioner = partitioner or SinglePartitioner()
        self.max_supersteps = max_supersteps
        self.aggregators = AggregatorRegistry()
        self._partition_cache: Dict[VertexId, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.partitioner.num_workers

    def partition_of(self, vertex_id: VertexId) -> int:
        partition = self._partition_cache.get(vertex_id)
        if partition is None:
            partition = self.partitioner.partition_of(vertex_id)
            self._partition_cache[vertex_id] = partition
        return partition

    def register_aggregator(self, aggregator: Aggregator) -> Aggregator:
        return self.aggregators.register(aggregator)

    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        metrics: Optional[RunMetrics] = None,
        initial_messages: Optional[Dict[VertexId, List[Any]]] = None,
        run_state: Optional[RunState] = None,
    ) -> Any:
        """Execute ``program`` to completion and return ``program.result``.

        Args:
            program: the vertex program to run.
            metrics: optional metrics accumulator (a fresh one is created
                otherwise and attached to the return value via
                ``engine.last_metrics``).
            initial_messages: optional messages delivered at superstep 0 (in
                addition to the program's initial active set).
            run_state: the run's scratch state; a fresh, empty
                :class:`RunState` is created when omitted.  The graph itself
                is never written to, so no cross-run reset happens here —
                external programs still using the legacy ``vertex.state``
                slot must call ``graph.reset_all_state()`` themselves
                between runs (the engine no longer does it for them).

        A program instance is **single-run**: the engine binds the run's
        state to ``program.run_state`` and programs accumulate results on
        themselves, so concurrent runs must each construct their own
        program (as :class:`repro.core.executor.TagJoinExecutor` does per
        query).  Sequential reuse of an instance re-binds cleanly.
        """
        run_state = run_state if run_state is not None else RunState()
        program.run_state = run_state
        run_metrics = metrics if metrics is not None else RunMetrics(
            label=type(program).__name__
        )
        start = time.perf_counter()

        inbox: Dict[VertexId, List[Any]] = defaultdict(list)
        if initial_messages:
            for vertex_id, payloads in initial_messages.items():
                inbox[vertex_id].extend(payloads)
        active: Set[VertexId] = set(program.initial_active_vertices(self.graph))
        active |= set(inbox)

        superstep = 0
        while superstep < self.max_supersteps:
            # the cooperative cancellation point: a deadline-exceeded or
            # cancelled query raises out of the barrier instead of running
            # to completion on an abandoned worker; also a chaos failpoint
            check_cancelled()
            maybe_fire("bsp.superstep")
            if not active and not inbox:
                break
            context = SuperstepContext(self, superstep, run_state)
            step_metrics = run_metrics.new_superstep(superstep)

            program.before_superstep(superstep, self.graph, context)
            if context._halt_requested:
                self._flush_aggregators(context)
                self._record(step_metrics, context, active_count=0)
                break

            step_metrics.active_vertices = len(active)
            graph = self.graph
            graph_vertex = graph.vertex
            inbox_get = inbox.get
            compute = program.compute
            for vertex_id in active:
                vertex = graph_vertex(vertex_id)
                context._current_vertex = vertex
                # vertices active without messages get a fresh empty list
                # (never a shared one: programs may use messages as scratch)
                compute(vertex, inbox_get(vertex_id) or [], graph, context)
            context._current_vertex = None

            program.after_superstep(superstep, self.graph, context)

            self._flush_aggregators(context)
            self._record(step_metrics, context, active_count=len(active))

            # barrier: messages sent now are delivered next superstep, and
            # only their recipients are active then (paper Section 2).  The
            # context is dropped right after, so its outbox *is* the next
            # inbox — no per-superstep copy of every message list.
            inbox = context._outbox
            active = set(inbox)
            superstep += 1
            if context._halt_requested:
                break
        else:
            raise BSPError(
                f"vertex program {type(program).__name__} exceeded "
                f"{self.max_supersteps} supersteps"
            )

        run_metrics.wall_time_seconds += time.perf_counter() - start
        self.last_metrics = run_metrics
        return program.result(self.graph, self.aggregators)

    # ------------------------------------------------------------------
    def _flush_aggregators(self, context: SuperstepContext) -> None:
        for name, value in context._aggregator_inbox:
            self.aggregators.get(name).accumulate(value)

    @staticmethod
    def _record(step_metrics, context: SuperstepContext, active_count: int) -> None:
        step_metrics.active_vertices = active_count
        step_metrics.messages_sent += context._messages_sent
        step_metrics.message_bytes += context._message_bytes
        step_metrics.network_messages += context._network_messages
        step_metrics.network_bytes += context._network_bytes
        step_metrics.compute_units += context._compute_units
