"""The vertex-centric BSP execution engine (a Pregel-style simulator).

The engine drives a :class:`VertexProgram` over a :class:`~repro.bsp.graph.Graph`
in synchronous supersteps (paper Section 2):

* every active vertex runs ``compute`` with the messages delivered to it;
* messages sent during superstep *i* are delivered at superstep *i + 1*;
* a vertex deactivates at the end of a superstep and is reactivated only by
  an incoming message (the model used by the paper's Algorithm 2);
* global aggregator vertices collect values contributed during the
  superstep and expose them to the next one;
* a *master hook* (``before_superstep``) runs once per superstep on the
  coordinator — TAG-join uses it to pop the next traversal label from the
  plan stack, mirroring the query driver of a TigerGraph GSQL query.

The engine is single-process but partition-aware: a
:class:`~repro.bsp.partition.Partitioner` assigns vertices to workers and
the metrics distinguish intra-worker from cross-worker (network) messages,
which is what the paper's distributed experiments measure.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .aggregators import Aggregator, AggregatorRegistry
from .graph import Edge, Graph, Vertex, VertexId
from .metrics import RunMetrics, payload_size_bytes
from .partition import Partitioner, SinglePartitioner


class BSPError(RuntimeError):
    """Raised for protocol violations (e.g. messaging an unknown vertex)."""


class SuperstepContext:
    """Per-superstep facade handed to ``VertexProgram.compute``.

    Provides message sending, aggregator access, cost charging and the
    current superstep number.  All communication accounting flows through
    this object.
    """

    def __init__(
        self,
        engine: "BSPEngine",
        superstep: int,
    ) -> None:
        self._engine = engine
        self.superstep = superstep
        self._outbox: Dict[VertexId, List[Any]] = defaultdict(list)
        self._aggregator_inbox: List[Tuple[str, Any]] = []
        self._messages_sent = 0
        self._message_bytes = 0
        self._network_messages = 0
        self._network_bytes = 0
        self._compute_units = 0
        self._halt_requested = False
        self._current_vertex: Optional[Vertex] = None

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, target: VertexId, payload: Any) -> None:
        """Send ``payload`` to ``target``, delivered next superstep."""
        if not self._engine.graph.has_vertex(target):
            raise BSPError(f"message sent to unknown vertex {target!r}")
        self._outbox[target].append(payload)
        self._messages_sent += 1
        size = payload_size_bytes(payload)
        self._message_bytes += size
        if self._current_vertex is not None:
            source_partition = self._engine.partition_of(self._current_vertex.vertex_id)
            target_partition = self._engine.partition_of(target)
            if source_partition != target_partition:
                self._network_messages += 1
                self._network_bytes += size

    def send_along(self, edge: Edge, payload: Any) -> None:
        """Send a message across ``edge`` (to its target)."""
        self.send(edge.target, payload)

    # ------------------------------------------------------------------
    # aggregators
    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the global aggregator ``name``.

        Contributions are also charged as messages: the aggregator is a
        vertex whose id every vertex knows (Section 2), so talking to it is
        communication, and it is exactly the bottleneck the paper observes
        for global aggregation.
        """
        if name not in self._engine.aggregators:
            raise BSPError(f"unknown aggregator {name!r}")
        self._aggregator_inbox.append((name, value))
        self._messages_sent += 1
        size = payload_size_bytes(value)
        self._message_bytes += size
        if self._current_vertex is not None and self._engine.num_workers > 1:
            # the aggregator lives on worker 0 by convention
            if self._engine.partition_of(self._current_vertex.vertex_id) != 0:
                self._network_messages += 1
                self._network_bytes += size

    def aggregated_value(self, name: str) -> Any:
        """Read the value an aggregator held at the start of this superstep."""
        return self._engine.aggregators.get(name).value()

    # ------------------------------------------------------------------
    # cost accounting & control
    # ------------------------------------------------------------------
    def charge(self, units: int = 1) -> None:
        """Charge ``units`` of per-vertex computation (edge scans, joins...)."""
        self._compute_units += units

    def halt(self) -> None:
        """Request global termination after this superstep (master hook only)."""
        self._halt_requested = True

    # internal -----------------------------------------------------------
    def _set_current_vertex(self, vertex: Optional[Vertex]) -> None:
        self._current_vertex = vertex


class VertexProgram:
    """User-defined vertex program (paper Section 2).

    Subclasses implement ``compute``; they may override the lifecycle hooks
    to drive multi-phase computations.
    """

    def initial_active_vertices(self, graph: Graph) -> Iterable[VertexId]:
        """Vertices active at superstep 0 (default: all)."""
        return graph.vertex_ids()

    def before_superstep(self, superstep: int, graph: Graph, context: SuperstepContext) -> None:
        """Master hook run once before each superstep's vertex computations."""

    def compute(
        self,
        vertex: Vertex,
        messages: List[Any],
        graph: Graph,
        context: SuperstepContext,
    ) -> None:
        """Per-vertex computation; must only touch local data and messages."""
        raise NotImplementedError

    def after_superstep(self, superstep: int, graph: Graph, context: SuperstepContext) -> None:
        """Master hook run after the superstep's vertex computations."""

    def result(self, graph: Graph, aggregators: AggregatorRegistry) -> Any:
        """Assemble the distributed output after termination (default: None)."""
        return None


class BSPEngine:
    """Runs vertex programs over a graph in synchronous supersteps."""

    def __init__(
        self,
        graph: Graph,
        partitioner: Optional[Partitioner] = None,
        max_supersteps: int = 10_000,
    ) -> None:
        self.graph = graph
        self.partitioner = partitioner or SinglePartitioner()
        self.max_supersteps = max_supersteps
        self.aggregators = AggregatorRegistry()
        self._partition_cache: Dict[VertexId, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.partitioner.num_workers

    def partition_of(self, vertex_id: VertexId) -> int:
        partition = self._partition_cache.get(vertex_id)
        if partition is None:
            partition = self.partitioner.partition_of(vertex_id)
            self._partition_cache[vertex_id] = partition
        return partition

    def register_aggregator(self, aggregator: Aggregator) -> Aggregator:
        return self.aggregators.register(aggregator)

    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        metrics: Optional[RunMetrics] = None,
        reset_vertex_state: bool = True,
        initial_messages: Optional[Dict[VertexId, List[Any]]] = None,
    ) -> Any:
        """Execute ``program`` to completion and return ``program.result``.

        Args:
            program: the vertex program to run.
            metrics: optional metrics accumulator (a fresh one is created
                otherwise and attached to the return value via
                ``engine.last_metrics``).
            reset_vertex_state: clear per-vertex scratch state before the run.
            initial_messages: optional messages delivered at superstep 0 (in
                addition to the program's initial active set).
        """
        if reset_vertex_state:
            self.graph.reset_all_state()
        run_metrics = metrics if metrics is not None else RunMetrics(
            label=type(program).__name__
        )
        start = time.perf_counter()

        inbox: Dict[VertexId, List[Any]] = defaultdict(list)
        if initial_messages:
            for vertex_id, payloads in initial_messages.items():
                inbox[vertex_id].extend(payloads)
        active: Set[VertexId] = set(program.initial_active_vertices(self.graph))
        active |= set(inbox)

        superstep = 0
        while superstep < self.max_supersteps:
            if not active and not inbox:
                break
            context = SuperstepContext(self, superstep)
            step_metrics = run_metrics.new_superstep(superstep)

            program.before_superstep(superstep, self.graph, context)
            if context._halt_requested:
                self._flush_aggregators(context)
                self._record(step_metrics, context, active_count=0)
                break

            step_metrics.active_vertices = len(active)
            for vertex_id in active:
                vertex = self.graph.vertex(vertex_id)
                messages = inbox.get(vertex_id, [])
                context._set_current_vertex(vertex)
                program.compute(vertex, messages, self.graph, context)
            context._set_current_vertex(None)

            program.after_superstep(superstep, self.graph, context)

            self._flush_aggregators(context)
            self._record(step_metrics, context, active_count=len(active))

            # barrier: messages sent now are delivered next superstep, and
            # only their recipients are active then (paper Section 2).
            inbox = defaultdict(list)
            for target, payloads in context._outbox.items():
                inbox[target].extend(payloads)
            active = set(inbox)
            superstep += 1
            if context._halt_requested:
                break
        else:
            raise BSPError(
                f"vertex program {type(program).__name__} exceeded "
                f"{self.max_supersteps} supersteps"
            )

        run_metrics.wall_time_seconds += time.perf_counter() - start
        self.last_metrics = run_metrics
        return program.result(self.graph, self.aggregators)

    # ------------------------------------------------------------------
    def _flush_aggregators(self, context: SuperstepContext) -> None:
        for name, value in context._aggregator_inbox:
            self.aggregators.get(name).accumulate(value)

    @staticmethod
    def _record(step_metrics, context: SuperstepContext, active_count: int) -> None:
        step_metrics.active_vertices = active_count
        step_metrics.messages_sent += context._messages_sent
        step_metrics.message_bytes += context._message_bytes
        step_metrics.network_messages += context._network_messages
        step_metrics.network_bytes += context._network_bytes
        step_metrics.compute_units += context._compute_units
