"""Vertex partitioning across simulated workers / machines.

The vertex-centric abstraction treats every vertex as a processor; real
engines map vertices onto hardware workers (threads within a server, or
machines in a cluster).  The partitioner assigns each vertex a worker id so
the engine can classify messages as intra-worker or cross-worker: the
latter are the "network traffic" reported in the paper's distributed
experiments (Figure 16).
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from .graph import Graph, VertexId


class Partitioner:
    """Assigns vertices to ``num_workers`` partitions."""

    def __init__(self, num_workers: int = 1) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def partition_of(self, vertex_id: VertexId) -> int:
        raise NotImplementedError

    def assign(self, graph: Graph) -> Dict[VertexId, int]:
        return {vertex_id: self.partition_of(vertex_id) for vertex_id in graph.vertex_ids()}

    def load(self, graph: Graph) -> List[int]:
        """Number of vertices per partition (load-balance diagnostics)."""
        counts = [0] * self.num_workers
        for vertex_id in graph.vertex_ids():
            counts[self.partition_of(vertex_id)] += 1
        return counts


class HashPartitioner(Partitioner):
    """Deterministic hash partitioning (TigerGraph's default automatic placement)."""

    def partition_of(self, vertex_id: VertexId) -> int:
        digest = zlib.crc32(str(vertex_id).encode("utf-8"))
        return digest % self.num_workers


class RoundRobinPartitioner(Partitioner):
    """Round-robin placement in insertion order (used in load-balance ablations)."""

    def __init__(self, num_workers: int = 1) -> None:
        super().__init__(num_workers)
        self._assignments: Dict[VertexId, int] = {}
        self._next = 0

    def partition_of(self, vertex_id: VertexId) -> int:
        if vertex_id not in self._assignments:
            self._assignments[vertex_id] = self._next % self.num_workers
            self._next += 1
        return self._assignments[vertex_id]


class SinglePartitioner(Partitioner):
    """Everything on one worker: the single-server experiments of Section 8.2-8.5."""

    def __init__(self) -> None:
        super().__init__(1)

    def partition_of(self, vertex_id: VertexId) -> int:
        return 0
