"""Vertex-centric BSP substrate: graph store, Pregel-style engine, aggregators."""

from .aggregators import (
    Aggregator,
    AggregatorRegistry,
    CollectAggregator,
    CountAggregator,
    GroupAggregator,
    MaxAggregator,
    MinAggregator,
    SumAggregator,
)
from .engine import BSPEngine, BSPError, RunState, SuperstepContext, VertexProgram
from .graph import Edge, Graph, GraphError, Vertex, VertexId
from .metrics import RunMetrics, SuperstepMetrics, payload_size_bytes
from .partition import (
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    SinglePartitioner,
)

__all__ = [
    "Aggregator",
    "AggregatorRegistry",
    "BSPEngine",
    "BSPError",
    "CollectAggregator",
    "CountAggregator",
    "Edge",
    "Graph",
    "GraphError",
    "GroupAggregator",
    "HashPartitioner",
    "MaxAggregator",
    "MinAggregator",
    "Partitioner",
    "RoundRobinPartitioner",
    "RunMetrics",
    "RunState",
    "SinglePartitioner",
    "SumAggregator",
    "SuperstepContext",
    "SuperstepMetrics",
    "Vertex",
    "VertexId",
    "VertexProgram",
    "payload_size_bytes",
]
