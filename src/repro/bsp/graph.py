"""Property-graph storage for the vertex-centric BSP engine.

Vertices and edges carry a label and a property map, exactly the data model
assumed by the paper's Section 2/3: a vertex has an id, a label, state, and
a list of outgoing (labelled) edges.  The store keeps a per-vertex index of
outgoing edges grouped by label because TAG-join's vertex programs
constantly ask for "my out-edges labelled ``R.A``" (Algorithm 2, lines
11-13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

VertexId = str


class GraphError(KeyError):
    """Raised for unknown vertex ids or duplicate insertions."""


@dataclass
class Edge:
    """A directed, labelled edge with an optional property map."""

    source: VertexId
    target: VertexId
    label: str
    properties: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge({self.source} -[{self.label}]-> {self.target})"


@dataclass
class Vertex:
    """A labelled vertex with a property map.

    ``properties`` holds the durable data loaded into the graph (for TAG:
    the tuple values, or the attribute value).  Per-query scratch data
    (marked edges, accumulated partial joins) no longer lives here: vertex
    programs keep it in the run-scoped
    :class:`~repro.bsp.engine.RunState` via ``context.state(vertex)``, so
    the graph stays immutable during execution and concurrent runs never
    interfere.

    ``state`` is a **legacy** slot kept for external programs written
    against the old shared-scratch model and for the serialized-baseline
    emulation in the bench harness; the engine and every built-in program
    neither read, write nor clear it.
    """

    vertex_id: VertexId
    label: str
    properties: Dict[str, Any] = field(default_factory=dict)
    state: Dict[str, Any] = field(default_factory=dict)
    #: graph-assigned dense integer id, unique for the graph's lifetime
    #: (never reused after removal).  The slotted/vectorized programs use
    #: it as the provenance value so provenance columns stay native int64
    #: instead of falling back to object dtype on the vertex-id string.
    ordinal: int = -1

    def reset_state(self) -> None:
        """Legacy: clear the deprecated shared scratch slot."""
        self.state.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vertex({self.vertex_id}:{self.label})"


class Graph:
    """An in-memory labelled property graph with label-indexed adjacency."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._vertices: Dict[VertexId, Vertex] = {}
        # adjacency: vertex id -> edge label -> list of edges
        self._out_edges: Dict[VertexId, Dict[str, List[Edge]]] = {}
        self._vertices_by_label: Dict[str, List[VertexId]] = {}
        self._edge_count = 0
        self._next_ordinal = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        vertex_id: VertexId,
        label: str,
        properties: Optional[Dict[str, Any]] = None,
    ) -> Vertex:
        if vertex_id in self._vertices:
            raise GraphError(f"vertex {vertex_id!r} already exists")
        vertex = Vertex(vertex_id, label, dict(properties or {}), ordinal=self._next_ordinal)
        self._next_ordinal += 1
        self._vertices[vertex_id] = vertex
        self._out_edges[vertex_id] = {}
        self._vertices_by_label.setdefault(label, []).append(vertex_id)
        return vertex

    def add_edge(
        self,
        source: VertexId,
        target: VertexId,
        label: str,
        properties: Optional[Dict[str, Any]] = None,
        undirected: bool = False,
    ) -> Edge:
        """Add an edge; with ``undirected=True`` also add the reverse edge.

        The TAG encoding treats edges as two-way relationships and models
        each as a pair of directed edges (paper footnote 3).
        """
        if source not in self._vertices:
            raise GraphError(f"unknown source vertex {source!r}")
        if target not in self._vertices:
            raise GraphError(f"unknown target vertex {target!r}")
        edge = Edge(source, target, label, dict(properties or {}))
        self._out_edges[source].setdefault(label, []).append(edge)
        self._edge_count += 1
        if undirected:
            reverse = Edge(target, source, label, dict(properties or {}))
            self._out_edges[target].setdefault(label, []).append(reverse)
            self._edge_count += 1
        return edge

    def remove_vertex(self, vertex_id: VertexId) -> None:
        """Remove a vertex and its outgoing edges (incoming edges are left dangling).

        Only used by incremental maintenance; TAG-join itself never
        mutates the graph.
        """
        vertex = self.vertex(vertex_id)
        self._vertices_by_label[vertex.label].remove(vertex_id)
        removed = sum(len(edges) for edges in self._out_edges[vertex_id].values())
        self._edge_count -= removed
        del self._out_edges[vertex_id]
        del self._vertices[vertex_id]

    def remove_vertices(self, vertex_ids: Iterable[VertexId]) -> None:
        """Batch form of :meth:`remove_vertex`.

        Filters each affected label list once for the whole batch —
        per-vertex ``list.remove`` would rescan the label's full
        population per removal, turning a bulk delete quadratic.
        """
        dead = set(vertex_ids)
        if not dead:
            return
        labels = {self.vertex(vertex_id).label for vertex_id in dead}
        for label in labels:
            survivors = [v for v in self._vertices_by_label[label] if v not in dead]
            self._vertices_by_label[label] = survivors
        for vertex_id in dead:
            removed = sum(len(edges) for edges in self._out_edges[vertex_id].values())
            self._edge_count -= removed
            del self._out_edges[vertex_id]
            del self._vertices[vertex_id]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def vertex(self, vertex_id: VertexId) -> Vertex:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise GraphError(f"unknown vertex {vertex_id!r}") from None

    def has_vertex(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._vertices

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex_ids(self) -> Iterator[VertexId]:
        return iter(self._vertices.keys())

    def vertices_with_label(self, label: str) -> List[VertexId]:
        return list(self._vertices_by_label.get(label, []))

    def labels(self) -> List[str]:
        return list(self._vertices_by_label)

    def out_edges(self, vertex_id: VertexId, label: Optional[str] = None) -> List[Edge]:
        by_label = self._out_edges.get(vertex_id, {})
        if label is not None:
            return list(by_label.get(label, []))
        edges: List[Edge] = []
        for edge_list in by_label.values():
            edges.extend(edge_list)
        return edges

    def edge_targets(self, vertex_id: VertexId, label: str) -> List[VertexId]:
        """Target ids of the ``label``-edges out of a vertex, without copying edges.

        The hot-path variant of ``[e.target for e in out_edges(v, label)]``:
        :meth:`out_edges` defensively copies the edge list on every call,
        which the TAG-join send loops pay once per vertex per superstep.
        """
        edges = self._out_edges.get(vertex_id, {}).get(label)
        if not edges:
            return []
        return [edge.target for edge in edges]

    def out_edge_labels(self, vertex_id: VertexId) -> List[str]:
        return list(self._out_edges.get(vertex_id, {}))

    def out_degree(self, vertex_id: VertexId, label: Optional[str] = None) -> int:
        by_label = self._out_edges.get(vertex_id, {})
        if label is not None:
            return len(by_label.get(label, []))
        return sum(len(edge_list) for edge_list in by_label.values())

    def neighbours(self, vertex_id: VertexId, label: Optional[str] = None) -> List[VertexId]:
        return [edge.target for edge in self.out_edges(vertex_id, label)]

    # ------------------------------------------------------------------
    # whole-graph statistics
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def count_by_label(self) -> Dict[str, int]:
        return {label: len(ids) for label, ids in self._vertices_by_label.items()}

    def reset_all_state(self) -> None:
        """Legacy: the O(|V|) sweep the engine used to run between queries.

        Run-scoped state (:class:`~repro.bsp.engine.RunState`) made this
        unnecessary — no built-in code calls it anymore.  It is retained for
        external programs still using ``vertex.state`` and so the bench
        harness can faithfully reproduce the cost of the old serialized
        execution path when measuring the concurrency speedup.
        """
        for vertex in self._vertices.values():
            if vertex.state:
                vertex.state.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({self.name}, |V|={self.vertex_count}, |E|={self.edge_count})"
