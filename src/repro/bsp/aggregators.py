"""Global aggregator vertices.

Aggregators let vertices collaborate on a global value (paper Section 2,
"Aggregators"): every vertex knows the aggregator's id and can send values
to it; the aggregated value is readable at the next superstep (and at the
end of the run).  TAG-join uses them for scalar/global aggregation
(Section 7) and for the Cartesian-product Algorithm B (Section 6.3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, List, Optional, TypeVar

T = TypeVar("T")


class Aggregator(Generic[T]):
    """Base aggregator: accumulates values sent by vertices during a superstep."""

    def __init__(self, name: str) -> None:
        self.name = name

    def accumulate(self, value: Any) -> None:
        raise NotImplementedError

    def value(self) -> T:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear the accumulated state (called when a new query starts)."""
        raise NotImplementedError


class SumAggregator(Aggregator[float]):
    """Sums numeric contributions (SQL SUM / COUNT global aggregation)."""

    def __init__(self, name: str, initial: float = 0) -> None:
        super().__init__(name)
        self._initial = initial
        self._total = initial

    def accumulate(self, value: Any) -> None:
        self._total += value

    def value(self) -> float:
        return self._total

    def reset(self) -> None:
        self._total = self._initial


class CountAggregator(Aggregator[int]):
    """Counts the number of contributions."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._count = 0

    def accumulate(self, value: Any) -> None:
        self._count += 1

    def value(self) -> int:
        return self._count

    def reset(self) -> None:
        self._count = 0


class MinAggregator(Aggregator[Any]):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._value: Optional[Any] = None

    def accumulate(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def value(self) -> Any:
        return self._value

    def reset(self) -> None:
        self._value = None


class MaxAggregator(Aggregator[Any]):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._value: Optional[Any] = None

    def accumulate(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def value(self) -> Any:
        return self._value

    def reset(self) -> None:
        self._value = None


class CollectAggregator(Aggregator[List[Any]]):
    """Collects every contributed value (used to gather distributed output)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._values: List[Any] = []

    def accumulate(self, value: Any) -> None:
        self._values.append(value)

    def value(self) -> List[Any]:
        return self._values

    def reset(self) -> None:
        self._values = []


class GroupAggregator(Aggregator[Dict[Any, Any]]):
    """Keyed aggregation: the global GROUP BY structure of Section 7 (GA).

    Vertices contribute ``(key, value)`` pairs; the aggregator folds values
    per key with ``combine`` (default: sum).  This models TigerGraph's
    global MapAccum used for multi-attribute GROUP BY.
    """

    def __init__(
        self,
        name: str,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        initial: Any = 0,
    ) -> None:
        super().__init__(name)
        self._combine = combine or (lambda current, update: current + update)
        self._initial = initial
        self._groups: Dict[Any, Any] = {}

    def accumulate(self, value: Any) -> None:
        key, update = value
        if key in self._groups:
            self._groups[key] = self._combine(self._groups[key], update)
        else:
            self._groups[key] = self._combine(self._initial, update)

    def value(self) -> Dict[Any, Any]:
        return self._groups

    def reset(self) -> None:
        self._groups = {}


class AggregatorRegistry:
    """The set of aggregator vertices available to a BSP run."""

    def __init__(self) -> None:
        self._aggregators: Dict[str, Aggregator] = {}

    def register(self, aggregator: Aggregator) -> Aggregator:
        self._aggregators[aggregator.name] = aggregator
        return aggregator

    def get(self, name: str) -> Aggregator:
        return self._aggregators[name]

    def __contains__(self, name: str) -> bool:
        return name in self._aggregators

    def values(self) -> Dict[str, Any]:
        return {name: aggregator.value() for name, aggregator in self._aggregators.items()}

    def reset_all(self) -> None:
        for aggregator in self._aggregators.values():
            aggregator.reset()

    def contributions(self) -> int:
        """Number of registered aggregators (diagnostics)."""
        return len(self._aggregators)
