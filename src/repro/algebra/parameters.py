"""Query parameters: placeholder expressions plus execution-time bindings.

A :class:`ParameterRef` stands where a literal would appear in a predicate
(``WHERE o.O_TOTAL > :threshold`` or ``... = ?``).  Because its ``repr``
— which the plan-cache fingerprint is built from — names the parameter
rather than any concrete value, every execution of the same parameterized
query shares one cache entry: the prepared-statement plan is compiled once
and re-run under different bindings.

Bindings are carried in a :mod:`contextvars` context variable rather than
being baked into the expression tree, so a compiled fragment cached by one
session can be executed concurrently by another session with different
values (each thread sees only its own binding).  Executors never touch
this module directly; :class:`repro.api.Session` wraps each execution in
:func:`bind_parameters`.
"""

from __future__ import annotations

import datetime
import numbers
from contextvars import ContextVar, Token
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Union

from .expressions import Expression, ExpressionError, RowContext


class ParameterError(ValueError):
    """Raised for missing, unknown or ill-typed query parameters."""


#: the parameter assignment of the execution currently in flight (per context)
_ACTIVE_PARAMETERS: ContextVar[Optional[Mapping[str, Any]]] = ContextVar(
    "repro_active_parameters", default=None
)


@dataclass(frozen=True)
class ParameterRef(Expression):
    """A named query parameter (``:name``; positional ``?`` become ``p0, p1, ...``)."""

    name: str

    def evaluate(self, context: RowContext) -> Any:
        bound = _ACTIVE_PARAMETERS.get()
        if bound is None or self.name not in bound:
            raise ExpressionError(
                f"unbound query parameter :{self.name} "
                "(execute through a Session or bind_parameters())"
            )
        return bound[self.name]

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        # value-free on purpose: this is what parameter-generic plan-cache
        # fingerprints hash, so all bindings of :name render identically
        return f"Param(:{self.name})"


class bind_parameters:
    """Make ``values`` visible to every :class:`ParameterRef` in this context.

    A plain (re-usable per instance, but not re-entrant) context manager
    rather than a generator so the reset is structural: ``__exit__``
    unconditionally restores the previous binding, which guarantees an
    execution that raises mid-run — a failing parameterized query, a
    planner error, a BSP protocol violation — can never leak its bound
    values into the next query executed on the same thread.  The values
    are snapshot (``dict(values)``) *before* the contextvar is touched, so
    a bad ``values`` object cannot leave a half-installed binding either.
    """

    def __init__(self, values: Mapping[str, Any]) -> None:
        self._values = dict(values)
        self._token: Optional[Token] = None

    def __enter__(self) -> None:
        self._token = _ACTIVE_PARAMETERS.set(self._values)

    def __exit__(self, *exc_info: Any) -> None:
        token, self._token = self._token, None
        if token is not None:
            _ACTIVE_PARAMETERS.reset(token)


def current_parameters() -> Optional[Mapping[str, Any]]:
    """The binding active in this execution context, if any."""
    return _ACTIVE_PARAMETERS.get()


# ----------------------------------------------------------------------
# discovering the parameters of an expression / query spec
# ----------------------------------------------------------------------
def iter_subexpressions(expression: Expression) -> Iterator[Expression]:
    """Depth-first walk over an expression tree (the node itself included).

    Works structurally over the frozen dataclasses of
    :mod:`repro.algebra.expressions`: any field holding an Expression — or a
    tuple containing Expressions, as ``InList.values`` may once parameters
    appear inside IN-lists — is descended into.
    """
    yield expression
    if not is_dataclass(expression):
        return
    for spec_field in fields(expression):
        value = getattr(expression, spec_field.name)
        if isinstance(value, Expression):
            yield from iter_subexpressions(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Expression):
                    yield from iter_subexpressions(item)


def expression_parameters(expression: Expression) -> List[str]:
    """Names of the parameters referenced by ``expression`` (in walk order)."""
    names: List[str] = []
    for node in iter_subexpressions(expression):
        if isinstance(node, ParameterRef) and node.name not in names:
            names.append(node.name)
    return names


def spec_parameters(spec: Any) -> List[str]:
    """Every parameter name appearing anywhere in a QuerySpec (subqueries included)."""
    names: List[str] = []

    def add(expression: Optional[Expression]) -> None:
        if expression is None:
            return
        for name in expression_parameters(expression):
            if name not in names:
                names.append(name)

    def visit(block: Any) -> None:
        for alias_filters in block.filters.values():
            for predicate in alias_filters:
                add(predicate)
        for predicate in block.residual_predicates:
            add(predicate)
        for output_column in block.output:
            add(output_column.expression)
        for aggregate in block.aggregates:
            add(aggregate.argument)
        for subquery in block.subqueries:
            add(subquery.outer_expr)
            visit(subquery.query)

    visit(spec)
    return names


# ----------------------------------------------------------------------
# normalising user-supplied bindings
# ----------------------------------------------------------------------
ParamsInput = Union[Mapping[str, Any], Sequence[Any], None]


def positional_name(index: int) -> str:
    """The synthesized name of the ``index``-th ``?`` placeholder."""
    return f"p{index}"


def normalize_parameters(
    params: ParamsInput, expected: Sequence[str]
) -> Dict[str, Any]:
    """Check a user-supplied binding against a statement's parameter list.

    Accepts a mapping (named parameters; a leading ``:`` on keys is
    tolerated) or a sequence (positional parameters, matched to ``?``
    placeholders in order).  Raises :class:`ParameterError` on missing or
    unknown names so mistakes surface before any engine runs.
    """
    expected_names = list(expected)
    if params is None:
        if expected_names:
            raise ParameterError(f"query expects parameters {expected_names}, none given")
        return {}
    if isinstance(params, Mapping):
        provided = {str(key).lstrip(":"): value for key, value in params.items()}
    else:
        if isinstance(params, (str, bytes)):
            raise ParameterError("positional parameters must be a list or tuple of values")
        provided = {positional_name(i): value for i, value in enumerate(params)}
    missing = [name for name in expected_names if name not in provided]
    if missing:
        raise ParameterError(f"missing parameter values for {missing}")
    unknown = sorted(set(provided) - set(expected_names))
    if unknown:
        raise ParameterError(
            f"unknown parameters {unknown} (query expects {expected_names or 'none'})"
        )
    return provided


_TYPE_CHECKS = {
    "int": lambda value: isinstance(value, numbers.Integral) and not isinstance(value, bool),
    "float": lambda value: isinstance(value, numbers.Real) and not isinstance(value, bool),
    "string": lambda value: isinstance(value, str),
    "text": lambda value: isinstance(value, str),
    "date": lambda value: isinstance(value, datetime.date),
    "bool": lambda value: isinstance(value, bool),
}


def check_parameter_types(
    provided: Mapping[str, Any], declared: Mapping[str, str]
) -> None:
    """Validate bound values against column types inferred at bind time.

    ``declared`` maps parameter names to the :class:`~repro.relational.types.DataType`
    value-string of the column each parameter is compared against (only
    parameters whose type could be inferred appear).  ``None`` values pass —
    they mean SQL NULL.
    """
    for name, type_name in declared.items():
        if name not in provided:
            continue
        value = provided[name]
        if value is None:
            continue
        check = _TYPE_CHECKS.get(type_name)
        if check is not None and not check(value):
            raise ParameterError(
                f"parameter :{name} expects a {type_name} value, "
                f"got {type(value).__name__} ({value!r})"
            )
