"""Logical query representation shared by every engine in the reproduction.

A :class:`QuerySpec` is a flat select-project-join-aggregate block (the IR
that the SQL binder produces, that the iterator/distributed baselines plan
from, and that the TAG-join compiler turns into a TAG traversal plan).  It
captures exactly the query class exercised in the paper's experiments:

* equi-join queries over aliased base relations (acyclic or cyclic),
* per-relation filter predicates (pushed-down selections),
* residual multi-relation predicates,
* GROUP BY + aggregation (local / global / scalar per Section 7),
* EXISTS / NOT EXISTS / IN / NOT IN / scalar subqueries, possibly
  correlated with the outer block,
* outer joins, DISTINCT and projections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..relational.catalog import Catalog
from .expressions import ColumnRef, Expression


class QueryError(ValueError):
    """Raised for ill-formed query specifications."""


class JoinType(enum.Enum):
    INNER = "inner"
    LEFT_OUTER = "left"
    RIGHT_OUTER = "right"
    FULL_OUTER = "full"
    SEMI = "semi"
    ANTI = "anti"


class AggFunc(enum.Enum):
    COUNT = "count"
    COUNT_DISTINCT = "count_distinct"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class SubqueryKind(enum.Enum):
    EXISTS = "exists"
    NOT_EXISTS = "not_exists"
    IN = "in"
    NOT_IN = "not_in"
    SCALAR = "scalar"


class AggregationClass(enum.Enum):
    """The paper's taxonomy of aggregation styles (Section 7).

    NONE   - pure select-project-join query;
    LOCAL  - GROUP BY on one attribute (or attributes functionally
             determined by one), computable per attribute vertex;
    GLOBAL - multi-attribute GROUP BY needing a global aggregator vertex;
    SCALAR - aggregates with no GROUP BY (single output tuple).
    """

    NONE = "none"
    LOCAL = "local"
    GLOBAL = "global"
    SCALAR = "scalar"


@dataclass(frozen=True)
class TableRef:
    """A base relation occurrence ``table AS alias``."""

    table: str
    alias: str

    def __repr__(self) -> str:
        return f"{self.table} AS {self.alias}" if self.table != self.alias else self.table


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join condition ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> Tuple[str, str]:
        return (self.left_alias, self.right_alias)

    def reversed(self) -> "JoinCondition":
        return JoinCondition(
            self.right_alias, self.right_column, self.left_alias, self.left_column
        )

    def side(self, alias: str) -> Optional[str]:
        """The column on ``alias``'s side, or None if the alias is not involved."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        return None

    def __repr__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the SELECT list, e.g. ``SUM(l.price * l.qty) AS revenue``."""

    function: AggFunc
    argument: Optional[Expression]  # None means COUNT(*)
    alias: str

    def __post_init__(self) -> None:
        if self.argument is None and self.function not in (AggFunc.COUNT,):
            raise QueryError(f"{self.function.value} requires an argument expression")


@dataclass(frozen=True)
class OutputColumn:
    """A non-aggregate output column (a plain expression with an alias)."""

    expression: Expression
    alias: str


@dataclass
class SubqueryPredicate:
    """A subquery appearing as a predicate of the outer WHERE clause.

    ``correlation`` lists equi-join conditions whose *left* side refers to an
    alias of the outer block and whose *right* side refers to an alias of the
    inner block; the paper evaluates these with forward-lookup navigation
    (Section 7, Correlated Subqueries).
    """

    kind: SubqueryKind
    query: "QuerySpec"
    outer_expr: Optional[Expression] = None  # for IN / NOT IN / scalar compare
    inner_column: Optional[ColumnRef] = None  # subquery column matched by IN
    comparison_op: Optional[str] = None  # for scalar subqueries, e.g. ">"
    correlation: List[JoinCondition] = field(default_factory=list)

    @property
    def is_correlated(self) -> bool:
        return bool(self.correlation)


@dataclass
class OuterJoinSpec:
    """Marks one join edge as an outer join of the given type."""

    condition: JoinCondition
    join_type: JoinType


@dataclass
class QuerySpec:
    """A single SPJA query block (see module docstring)."""

    tables: List[TableRef] = field(default_factory=list)
    join_conditions: List[JoinCondition] = field(default_factory=list)
    filters: Dict[str, List[Expression]] = field(default_factory=dict)
    residual_predicates: List[Expression] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)
    output: List[OutputColumn] = field(default_factory=list)
    subqueries: List[SubqueryPredicate] = field(default_factory=list)
    outer_joins: List[OuterJoinSpec] = field(default_factory=list)
    distinct: bool = False
    name: str = "query"

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------
    def alias_map(self) -> Dict[str, str]:
        return {table_ref.alias: table_ref.table for table_ref in self.tables}

    def aliases(self) -> List[str]:
        return [table_ref.alias for table_ref in self.tables]

    def table_for(self, alias: str) -> str:
        for table_ref in self.tables:
            if table_ref.alias == alias:
                return table_ref.table
        raise QueryError(f"unknown alias {alias!r} in query {self.name!r}")

    def filters_for(self, alias: str) -> List[Expression]:
        return self.filters.get(alias, [])

    def add_filter(self, alias: str, predicate: Expression) -> None:
        self.filters.setdefault(alias, []).append(predicate)

    def join_columns_of(self, alias: str) -> Set[str]:
        """All columns of ``alias`` used in some equi-join condition."""
        columns: Set[str] = set()
        for condition in self.join_conditions:
            column = condition.side(alias)
            if column is not None:
                columns.add(column)
        for sub in self.subqueries:
            for condition in sub.correlation:
                if condition.left_alias == alias:
                    columns.add(condition.left_column)
        return columns

    def required_columns_of(self, alias: str) -> Set[str]:
        """Columns of ``alias`` needed anywhere (joins, filters, output, aggregates)."""
        needed = set(self.join_columns_of(alias))
        for predicate in self.filters_for(alias):
            needed |= _own_columns(predicate, alias)
        for predicate in self.residual_predicates:
            needed |= _own_columns(predicate, alias)
        for output_column in self.output:
            needed |= _own_columns(output_column.expression, alias)
        for group_col in self.group_by:
            if group_col.table == alias:
                needed.add(group_col.column)
        for aggregate in self.aggregates:
            if aggregate.argument is not None:
                needed |= _own_columns(aggregate.argument, alias)
        return needed

    def outer_join_for(self, condition: JoinCondition) -> JoinType:
        for outer in self.outer_joins:
            if outer.condition == condition or outer.condition == condition.reversed():
                return outer.join_type
        return JoinType.INNER

    @property
    def has_aggregation(self) -> bool:
        return bool(self.aggregates)

    def result_columns(self) -> List[str]:
        """The result's column names, identical across every engine.

        Declared outputs come first (in SELECT-list order), then aggregate
        aliases.  A query with neither — possible through the builder API —
        falls back to the qualified columns the query references anywhere,
        alias by alias in FROM order with columns sorted: the projection
        the TAG engine materialises for such queries, and the narrowest
        common denominator across engines (the baselines may carry extra
        columns in their row dicts; those remain accessible via ``rows``
        but are not part of the declared column order).
        """
        columns = [column.alias for column in self.output]
        columns.extend(aggregate.alias for aggregate in self.aggregates)
        if columns:
            return columns
        for alias in self.aliases():
            columns.extend(
                f"{alias}.{column}" for column in sorted(self.required_columns_of(alias))
            )
        return columns

    # ------------------------------------------------------------------
    # validation & classification
    # ------------------------------------------------------------------
    def validate(self, catalog: Catalog) -> None:
        """Check that every table, alias and column reference resolves."""
        seen_aliases: Set[str] = set()
        for table_ref in self.tables:
            if table_ref.alias in seen_aliases:
                raise QueryError(f"duplicate alias {table_ref.alias!r}")
            seen_aliases.add(table_ref.alias)
            if table_ref.table not in catalog:
                raise QueryError(f"unknown relation {table_ref.table!r}")
        alias_map = self.alias_map()
        for condition in self.join_conditions:
            for alias, column in (
                (condition.left_alias, condition.left_column),
                (condition.right_alias, condition.right_column),
            ):
                if alias not in alias_map:
                    raise QueryError(f"join condition references unknown alias {alias!r}")
                schema = catalog.schema(alias_map[alias])
                if column not in schema:
                    raise QueryError(
                        f"join condition references unknown column {alias}.{column}"
                    )
        for alias in self.filters:
            if alias not in alias_map:
                raise QueryError(f"filter references unknown alias {alias!r}")
        for group_col in self.group_by:
            if group_col.table is not None and group_col.table not in alias_map:
                raise QueryError(f"GROUP BY references unknown alias {group_col.table!r}")
        for sub in self.subqueries:
            sub.query.validate(catalog)
            for condition in sub.correlation:
                if condition.left_alias not in alias_map:
                    raise QueryError(
                        "correlated subquery references unknown outer alias "
                        f"{condition.left_alias!r}"
                    )

    def aggregation_class(self, catalog: Optional[Catalog] = None) -> AggregationClass:
        """Classify the aggregation style (paper Section 7 taxonomy)."""
        if not self.aggregates:
            return AggregationClass.NONE
        if not self.group_by:
            return AggregationClass.SCALAR
        if len(self.group_by) == 1:
            return AggregationClass.LOCAL
        if catalog is not None and self._single_key_determines_groups(catalog):
            return AggregationClass.LOCAL
        return AggregationClass.GLOBAL

    def _single_key_determines_groups(self, catalog: Catalog) -> bool:
        """True when one GROUP BY attribute functionally determines the others.

        We use the key metadata available in the catalog: if some group-by
        column is the primary key of its relation and every other group-by
        column belongs to the same relation, the PK determines them.
        """
        alias_map = self.alias_map()
        for candidate in self.group_by:
            if candidate.table is None:
                continue
            table = alias_map.get(candidate.table)
            if table is None or table not in catalog:
                continue
            schema = catalog.schema(table)
            if not schema.is_primary_key(candidate.column):
                continue
            if all(other.table == candidate.table for other in self.group_by):
                return True
        return False

    # ------------------------------------------------------------------
    # graph-shaped views used by the GHD machinery
    # ------------------------------------------------------------------
    def join_graph_edges(self) -> List[Tuple[str, str]]:
        """Alias pairs connected by at least one equi-join condition."""
        edges = set()
        for condition in self.join_conditions:
            edge = tuple(sorted((condition.left_alias, condition.right_alias)))
            edges.add(edge)
        return sorted(edges)

    def is_connected(self) -> bool:
        """Whether the join graph connects every alias (no Cartesian product needed)."""
        aliases = self.aliases()
        if len(aliases) <= 1:
            return True
        adjacency: Dict[str, Set[str]] = {alias: set() for alias in aliases}
        for left, right in self.join_graph_edges():
            adjacency[left].add(right)
            adjacency[right].add(left)
        seen = {aliases[0]}
        frontier = [aliases[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(aliases)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuerySpec({self.name}: {len(self.tables)} tables, "
            f"{len(self.join_conditions)} join conditions, "
            f"{len(self.aggregates)} aggregates)"
        )


def _own_columns(expression: Expression, alias: str) -> Set[str]:
    """Columns of ``expression`` qualified with ``alias``."""
    owned = set()
    for qualified in expression.columns():
        if "." in qualified:
            table, column = qualified.split(".", 1)
            if table == alias:
                owned.add(column)
        else:
            # unqualified references are resolved later; conservatively skip
            continue
    return owned
