"""Scalar and predicate expressions.

Expressions appear in WHERE clauses (selections pushed to attribute
vertices in the TAG-join reduction phase, paper Section 7), in SELECT lists
and in aggregate arguments.  They evaluate against a *row context*: a
mapping from qualified column names (``alias.column``) to values;
unqualified names are also resolvable when unambiguous.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..relational.types import NULL

RowContext = Dict[str, Any]


class ExpressionError(ValueError):
    """Raised for malformed expressions or unresolvable column references."""


class Expression:
    """Base class of all scalar / boolean expressions."""

    def evaluate(self, context: RowContext) -> Any:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Qualified column names referenced by this expression."""
        return frozenset()

    # small algebra for composing predicates in builders and tests
    def __and__(self, other: "Expression") -> "Expression":
        return And([self, other])

    def __or__(self, other: "Expression") -> "Expression":
        return Or([self, other])

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, context: RowContext) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to ``table_alias.column`` (alias may be None when unambiguous)."""

    column: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    def evaluate(self, context: RowContext) -> Any:
        key = self.qualified
        if key in context:
            return context[key]
        if self.table is None:
            # fall back to a unique suffix match: "col" matching "alias.col"
            matches = [k for k in context if k.endswith(f".{self.column}") or k == self.column]
            if len(matches) == 1:
                return context[matches[0]]
            if not matches:
                raise ExpressionError(f"unresolved column {self.column!r}")
            raise ExpressionError(f"ambiguous column {self.column!r}: {sorted(matches)}")
        raise ExpressionError(f"unresolved column {key!r}")

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.qualified])

    def __repr__(self) -> str:
        return f"Col({self.qualified})"


_COMPARISONS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison; SQL three-valued logic (NULL operand -> False)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, context: RowContext) -> bool:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if left is NULL or right is NULL:
            return False
        return _COMPARISONS[self.op](left, right)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic over numeric operands; NULL propagates."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, context: RowContext) -> Any:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if left is NULL or right is NULL:
            return NULL
        return _ARITHMETIC[self.op](left, right)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class And(Expression):
    operands: Tuple[Expression, ...]

    def __init__(self, operands: Sequence[Expression]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, context: RowContext) -> bool:
        return all(operand.evaluate(context) for operand in self.operands)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.columns()
        return result

    def __repr__(self) -> str:
        return " AND ".join(repr(operand) for operand in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    operands: Tuple[Expression, ...]

    def __init__(self, operands: Sequence[Expression]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, context: RowContext) -> bool:
        return any(operand.evaluate(context) for operand in self.operands)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.columns()
        return result

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(operand) for operand in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, context: RowContext) -> bool:
        return not self.operand.evaluate(context)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def evaluate(self, context: RowContext) -> bool:
        is_null = self.operand.evaluate(context) is NULL
        return not is_null if self.negated else is_null

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)``.

    Elements are plain literal values; an element may also be an
    :class:`Expression` (a query parameter inside the IN-list), evaluated
    against the row context like any other expression.
    """

    operand: Expression
    values: Tuple[Any, ...]
    negated: bool = False

    def __init__(self, operand: Expression, values: Iterable[Any], negated: bool = False) -> None:
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "negated", negated)

    def evaluate(self, context: RowContext) -> bool:
        value = self.operand.evaluate(context)
        if value is NULL:
            return False
        result = any(
            value == (item.evaluate(context) if isinstance(item, Expression) else item)
            for item in self.values
        )
        return not result if self.negated else result

    def columns(self) -> FrozenSet[str]:
        result = self.operand.columns()
        for item in self.values:
            if isinstance(item, Expression):
                result |= item.columns()
        return result


@dataclass(frozen=True)
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive)."""

    operand: Expression
    low: Expression
    high: Expression

    def evaluate(self, context: RowContext) -> bool:
        value = self.operand.evaluate(context)
        low = self.low.evaluate(context)
        high = self.high.evaluate(context)
        if value is NULL or low is NULL or high is NULL:
            return False
        return low <= value <= high

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def evaluate(self, context: RowContext) -> bool:
        value = self.operand.evaluate(context)
        if value is NULL:
            return False
        matched = _like_match(str(value), self.pattern)
        return not matched if self.negated else matched

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()


def like_regex(pattern: str):
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex.

    The single source of truth for LIKE semantics: both the interpreted
    :class:`Like` evaluation and the slot compiler's precompiled variant
    (:mod:`repro.exec.expr`) translate through here, so the two execution
    paths cannot diverge.
    """
    import re

    regex_parts: List[str] = []
    for character in pattern:
        if character == "%":
            regex_parts.append(".*")
        elif character == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(character))
    return re.compile("".join(regex_parts))


def _like_match(value: str, pattern: str) -> bool:
    """Match SQL LIKE patterns via a translated regular expression."""
    return like_regex(pattern).fullmatch(value) is not None


# ----------------------------------------------------------------------
# convenience constructors used heavily by tests and the workload queries
# ----------------------------------------------------------------------
def col(name: str, table: Optional[str] = None) -> ColumnRef:
    """``col("O_CUSTKEY", "o")`` or ``col("o.O_CUSTKEY")``."""
    if table is None and "." in name:
        table, name = name.split(".", 1)
    return ColumnRef(name, table)


def lit(value: Any) -> Literal:
    return Literal(value)


def eq(left: Expression, right: Expression) -> Comparison:
    return Comparison("=", left, right)


def conjunction(predicates: Sequence[Expression]) -> Optional[Expression]:
    """AND together a list of predicates (None for an empty list)."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(list(predicates))


def split_conjuncts(predicate: Optional[Expression]) -> List[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        conjuncts: List[Expression] = []
        for operand in predicate.operands:
            conjuncts.extend(split_conjuncts(operand))
        return conjuncts
    return [predicate]
