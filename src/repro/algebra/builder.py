"""Fluent builder for :class:`~repro.algebra.logical.QuerySpec`.

The workload query sets and the examples construct queries either from SQL
text (``repro.sql``) or programmatically through this builder, which reads
close to the relational algebra the paper manipulates::

    query = (
        QueryBuilder("revenue_by_nation")
        .table("NATION", "n")
        .table("CUSTOMER", "c")
        .table("ORDERS", "o")
        .join("n", "N_NATIONKEY", "c", "C_NATIONKEY")
        .join("c", "C_CUSTKEY", "o", "O_CUSTKEY")
        .where("o", Comparison(">=", col("o.O_ORDERDATE"), lit(date(1995, 1, 1))))
        .group_by("n", "N_NAME")
        .aggregate(AggFunc.SUM, col("o.O_TOTALPRICE"), "revenue")
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .expressions import ColumnRef, Expression, col
from .logical import (
    AggFunc,
    AggregateSpec,
    JoinCondition,
    JoinType,
    OuterJoinSpec,
    OutputColumn,
    QueryError,
    QuerySpec,
    SubqueryKind,
    SubqueryPredicate,
    TableRef,
)


class QueryBuilder:
    """Incrementally assembles a :class:`QuerySpec`."""

    def __init__(self, name: str = "query") -> None:
        self._spec = QuerySpec(name=name)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def table(self, table: str, alias: Optional[str] = None) -> "QueryBuilder":
        self._spec.tables.append(TableRef(table, alias or table))
        return self

    def tables(self, *refs: Sequence[str]) -> "QueryBuilder":
        for ref in refs:
            if isinstance(ref, str):
                self.table(ref)
            else:
                self.table(*ref)
        return self

    # ------------------------------------------------------------------
    # join conditions
    # ------------------------------------------------------------------
    def join(
        self,
        left_alias: str,
        left_column: str,
        right_alias: str,
        right_column: str,
        join_type: JoinType = JoinType.INNER,
    ) -> "QueryBuilder":
        condition = JoinCondition(left_alias, left_column, right_alias, right_column)
        self._spec.join_conditions.append(condition)
        if join_type is not JoinType.INNER:
            self._spec.outer_joins.append(OuterJoinSpec(condition, join_type))
        return self

    def natural_join(self, left_alias: str, right_alias: str, column: str) -> "QueryBuilder":
        return self.join(left_alias, column, right_alias, column)

    # ------------------------------------------------------------------
    # WHERE clause
    # ------------------------------------------------------------------
    def where(self, alias: str, predicate: Expression) -> "QueryBuilder":
        """Single-relation filter on ``alias`` (pushed down to that relation)."""
        self._spec.add_filter(alias, predicate)
        return self

    def where_residual(self, predicate: Expression) -> "QueryBuilder":
        """Multi-relation predicate applied after the join."""
        self._spec.residual_predicates.append(predicate)
        return self

    # ------------------------------------------------------------------
    # subqueries
    # ------------------------------------------------------------------
    def exists(
        self,
        subquery: QuerySpec,
        correlation: Iterable[JoinCondition] = (),
        negated: bool = False,
    ) -> "QueryBuilder":
        kind = SubqueryKind.NOT_EXISTS if negated else SubqueryKind.EXISTS
        self._spec.subqueries.append(
            SubqueryPredicate(kind=kind, query=subquery, correlation=list(correlation))
        )
        return self

    def in_subquery(
        self,
        outer_expr: Expression,
        subquery: QuerySpec,
        inner_column: ColumnRef,
        negated: bool = False,
        correlation: Iterable[JoinCondition] = (),
    ) -> "QueryBuilder":
        kind = SubqueryKind.NOT_IN if negated else SubqueryKind.IN
        self._spec.subqueries.append(
            SubqueryPredicate(
                kind=kind,
                query=subquery,
                outer_expr=outer_expr,
                inner_column=inner_column,
                correlation=list(correlation),
            )
        )
        return self

    def scalar_subquery(
        self,
        outer_expr: Expression,
        comparison_op: str,
        subquery: QuerySpec,
        correlation: Iterable[JoinCondition] = (),
    ) -> "QueryBuilder":
        self._spec.subqueries.append(
            SubqueryPredicate(
                kind=SubqueryKind.SCALAR,
                query=subquery,
                outer_expr=outer_expr,
                comparison_op=comparison_op,
                correlation=list(correlation),
            )
        )
        return self

    # ------------------------------------------------------------------
    # GROUP BY / aggregates / SELECT list
    # ------------------------------------------------------------------
    def group_by(self, alias: str, column: str) -> "QueryBuilder":
        self._spec.group_by.append(ColumnRef(column, alias))
        return self

    def aggregate(
        self, function: AggFunc, argument: Optional[Expression], alias: str
    ) -> "QueryBuilder":
        self._spec.aggregates.append(AggregateSpec(function, argument, alias))
        return self

    def count_star(self, alias: str = "count") -> "QueryBuilder":
        return self.aggregate(AggFunc.COUNT, None, alias)

    def select(self, expression: Expression, alias: Optional[str] = None) -> "QueryBuilder":
        if alias is None:
            if isinstance(expression, ColumnRef):
                alias = expression.column
            else:
                raise QueryError("non-column output expressions need an explicit alias")
        self._spec.output.append(OutputColumn(expression, alias))
        return self

    def select_columns(self, *qualified_names: str) -> "QueryBuilder":
        for qualified in qualified_names:
            self.select(col(qualified))
        return self

    def distinct(self, flag: bool = True) -> "QueryBuilder":
        self._spec.distinct = flag
        return self

    # ------------------------------------------------------------------
    def build(self) -> QuerySpec:
        if not self._spec.tables:
            raise QueryError("a query needs at least one table")
        return self._spec
