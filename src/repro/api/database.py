"""The session-oriented public API: ``Database`` -> ``Session`` -> results.

One :class:`Database` owns everything the paper builds *once per dataset*
— the query-independent TAG encoding, the catalog statistics, one shared
:class:`~repro.planner.cache.PlanCache` — and hands out lightweight
:class:`Session` objects that execute SQL (optionally parameterized),
prepare statements and render cross-engine EXPLAIN plans.  Because every
executor created through the facade shares the one plan cache and
statistics store, plan reuse is automatic across sessions and across
parameter values:

    db = Database.from_catalog(catalog)            # encodes + collects stats
    with db.connect() as session:
        hot = session.prepare(
            "SELECT COUNT(*) AS n FROM ORDERS o WHERE o.O_TOTAL > :t")
        hot.execute({"t": 50})                     # compiles (one cache miss)
        hot.execute({"t": 500})                    # warm: plan-cache hit
        print(session.explain(hot.sql))            # rooted join tree + costs

Data loads go through :meth:`Database.load_rows`, which applies the write
as a *delta*: new tuple/attribute vertices are appended to the existing
TAG encoding in place, statistics fold the new rows into their sketches,
executors are patched through their ``apply_delta`` hook, and registered
materialized views are maintained by seminaïve re-runs over only the new
vertices.  Compiled plans survive every data-only write (their cache keys
depend only on the schema version); only schema changes or an explicit
out-of-band :meth:`Database.note_data_change` fall back to the old
scorched-earth rebuild.  Writers serialize against in-flight readers on a
reader/writer lock, so sessions never observe a half-applied delta.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..algebra.expressions import Between, ColumnRef, Comparison, Expression, InList
from ..algebra.logical import QuerySpec
from ..algebra.parameters import (
    ParamsInput,
    bind_parameters,
    check_parameter_types,
    iter_subexpressions,
    normalize_parameters,
    spec_parameters,
)
from ..core.executor import QueryResult, StaleEngineError
from ..durability.failpoints import maybe_fire
from ..incremental.locks import ReadWriteLock
from ..incremental.maintenance import MaintenanceCounters
from ..planner import PlanCache
from ..relational.catalog import Catalog
from ..tag.statistics import CatalogStatistics, refreshed_statistics
from .registry import Engine, EngineContext, create_engine, resolve_engine_name


class Database:
    """A loaded database plus every engine that can query it.

    Args:
        catalog: the relational instance all engines share.
        engine: default engine name for new sessions (registry name/alias).
        num_workers: simulated worker count for the TAG/distributed engines.
        plan_cache: a shared compiled-plan cache; one is created when omitted.
        plan_cache_path: when set, :meth:`close` persists a statement
            manifest here and :meth:`warm_plan_cache` replays it at startup
            so a restarted process skips recompilation (the serving layer's
            warm start).
        engine_options: per-engine keyword overrides, e.g.
            ``{"tag": {"cross_check_plans": True}, "spark": {"num_partitions": 8}}``.
        data_dir: when set, the database is *durable*: every
            :meth:`load_rows` delta is written to an fsync'd write-ahead
            log under this directory before it applies, periodic snapshots
            bound replay time, and construction **recovers** — the latest
            valid snapshot is loaded, the WAL suffix replayed, registered
            views re-materialized, and the plan cache warmed from the
            persisted manifest (``plan_cache_path`` defaults to
            ``data_dir/plan_manifest.json``).  See
            :mod:`repro.durability`.
        wal_fsync: fsync the WAL on every append (the durability default);
            ``False`` trades machine-crash durability for write latency
            (process crashes still lose nothing).
        snapshot_every: WAL records between automatic snapshots.
    """

    #: prepared-statement recipes retained for manifest persistence (LRU)
    _STATEMENT_LOG_ENTRIES = 512

    def __init__(
        self,
        catalog: Catalog,
        engine: str = "tag",
        num_workers: int = 1,
        plan_cache: Optional[PlanCache] = None,
        plan_cache_entries: int = 256,
        plan_cache_path: Optional[str] = None,
        engine_options: Optional[Dict[str, Dict[str, Any]]] = None,
        graph: Optional[Any] = None,
        data_dir: Optional[str] = None,
        wal_fsync: bool = True,
        snapshot_every: int = 256,
    ) -> None:
        self.catalog = catalog
        self.default_engine = resolve_engine_name(engine)
        self.num_workers = num_workers
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_entries)
        self.plan_cache_path = plan_cache_path
        self.engine_options = {
            resolve_engine_name(name): dict(options)
            for name, options in (engine_options or {}).items()
        }
        # accept a pre-encoded TAG graph (bench harnesses encode once and
        # share it); it is still re-encoded if the data version moves on
        self._graph: Optional[Any] = graph
        self._graph_version: Optional[int] = catalog.version if graph is not None else None
        self._statistics: Optional[CatalogStatistics] = None
        self._engines: Dict[str, Engine] = {}
        self._engine_versions: Dict[str, int] = {}
        #: (engine, sql) -> bound QuerySpec, recorded by Session.prepare so
        #: close() can persist a warm-start manifest of every query shape
        self._statement_log: "OrderedDict[Tuple[str, str], QuerySpec]" = OrderedDict()
        self._closed = False
        self._lock = threading.RLock()
        #: readers (query executions) share; writers (delta application,
        #: view refresh) get exclusivity — see Session._run_rebinding
        self._rw_lock = ReadWriteLock()
        #: registered materialized views by name
        self._views: "OrderedDict[str, Any]" = OrderedDict()
        #: what incremental maintenance did; mutated under _lock
        self.maintenance = MaintenanceCounters()
        #: durability: WAL + snapshots + idempotency (None = memory-only)
        self._durability = None
        self.recovery_report: Optional[Dict[str, Any]] = None
        self.warm_start_report: Optional[Dict[str, Any]] = None
        if data_dir is not None:
            from ..durability import DurabilityManager

            self._durability = DurabilityManager(
                data_dir, fsync=wal_fsync, snapshot_every=snapshot_every
            )
            if self.plan_cache_path is None:
                self.plan_cache_path = self._durability.plan_manifest_path
            # recover durable state (snapshot + WAL replay + views), then
            # layer the plan-manifest warm start on top of the recovered
            # catalog — the manifest matches by schema fingerprint, which
            # recovery cannot have changed
            self.recovery_report = self._durability.recover(self)
            self.warm_start_report = self.warm_plan_cache()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, catalog: Catalog, **kwargs: Any) -> "Database":
        """The blessed constructor: wrap an already-populated catalog."""
        return cls(catalog, **kwargs)

    # ------------------------------------------------------------------
    # shared, invalidation-aware resources
    # ------------------------------------------------------------------
    def tag_graph(self) -> Any:
        """The TAG encoding of the catalog, built once and per data version."""
        from ..tag.encoder import encode_catalog

        with self._lock:
            if self._graph is None or self._graph_version != self.catalog.version:
                rebuilding = self._graph is not None
                started = time.perf_counter()
                self._graph = encode_catalog(self.catalog)
                self._graph_version = self.catalog.version
                if rebuilding:
                    elapsed = time.perf_counter() - started
                    self.maintenance.full_rebuild_seconds += elapsed
                    self.maintenance.last_rebuild_seconds = elapsed
            return self._graph

    @property
    def statistics(self) -> CatalogStatistics:
        """Catalog statistics, recollected whenever the catalog version moves."""
        with self._lock:
            self._statistics = refreshed_statistics(self.catalog, self._statistics)
            return self._statistics

    def engine(self, name: Optional[str] = None) -> Engine:
        """The (cached) engine instance registered under ``name``.

        Engines are rebuilt lazily after :meth:`note_data_change` so the
        TAG engine always queries the current encoding.
        """
        canonical = resolve_engine_name(name or self.default_engine)
        with self._lock:
            self._check_open()
            cached = self._engines.get(canonical)
            if (
                cached is not None
                and not getattr(cached, "retired", False)
                and self._engine_versions.get(canonical) == self.catalog.version
            ):
                return cached
            context = EngineContext(
                catalog=self.catalog,
                tag_graph=self.tag_graph,
                plan_cache=self.plan_cache,
                statistics=self.statistics,
                num_workers=self.num_workers,
                options=self.engine_options.get(canonical, {}),
            )
            engine = create_engine(canonical, context)
            self._engines[canonical] = engine
            self._engine_versions[canonical] = self.catalog.version
            return engine

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(self, engine: Optional[str] = None) -> "Session":
        """Open a session (cheap; any number may be open concurrently)."""
        self._check_open()
        return Session(self, engine=engine or self.default_engine)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"Database({self.catalog.name!r}) is closed; create a new one "
                "to keep querying"
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        self._check_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Retire every executor and flush the persisted plan-cache manifest.

        Idempotent.  When ``plan_cache_path`` is configured the statement
        manifest is written *before* the executors go away, so the next
        process can :meth:`warm_plan_cache` from it.  A durable database
        additionally takes a final snapshot (compacting the WAL), so the
        next open replays nothing.  After closing, new sessions/engines
        raise ``RuntimeError``; sessions already holding this database
        fail on their next engine resolution.
        """
        with self._lock:
            if self._closed:
                return
            if self.plan_cache_path is not None:
                try:
                    self.flush_plan_manifest()
                except OSError:
                    pass  # a read-only disk must not wedge shutdown
            if self._durability is not None:
                try:
                    if self._durability.records_since_snapshot:
                        self._durability.snapshot(self)
                except OSError:
                    pass  # clean-close snapshot is an optimization only
                self._durability.close()
            for engine in self._engines.values():
                retire = getattr(engine, "retire", None)
                if callable(retire):
                    retire(f"database {self.catalog.name!r} closed")
            self._engines.clear()
            self._engine_versions.clear()
            self._closed = True

    # ------------------------------------------------------------------
    # persisted plan cache (warm starts)
    # ------------------------------------------------------------------
    def _record_statement(self, engine_name: str, sql: str, spec: QuerySpec) -> None:
        """Remember a prepared statement's recipe for manifest persistence."""
        key = (engine_name, sql)
        with self._lock:
            self._statement_log[key] = spec
            self._statement_log.move_to_end(key)
            while len(self._statement_log) > self._STATEMENT_LOG_ENTRIES:
                self._statement_log.popitem(last=False)

    def flush_plan_manifest(self, path: Optional[str] = None) -> Optional[str]:
        """Persist every recorded statement as a warm-start manifest.

        Returns the path written, or ``None`` when no path is configured.
        Fingerprints are computed at flush time against the *current*
        catalog version, so a manifest is always internally consistent
        even if statements were prepared before a data change.
        """
        from ..planner.persist import PlanManifest, PlanManifestEntry, save_manifest

        path = path if path is not None else self.plan_cache_path
        if path is None:
            return None
        with self._lock:
            recorded = list(self._statement_log.items())
        entries = []
        for (engine_name, sql), spec in recorded:
            fingerprint = None
            try:
                fingerprinter = getattr(self.engine(engine_name), "fragment_fingerprint", None)
                if callable(fingerprinter):
                    fingerprint = fingerprinter(spec)
            except Exception:
                fingerprint = None  # unfingerprintable shapes still warm from SQL
            entries.append(PlanManifestEntry(engine=engine_name, sql=sql, fingerprint=fingerprint))
        manifest = PlanManifest.for_catalog(self.catalog, entries)
        return save_manifest(path, manifest)

    def warm_plan_cache(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Replay a persisted manifest: parse, bind and compile every entry.

        Warming happens through each engine's ``prepare_plan`` hook, which
        stores compiled fragments in the shared plan cache without
        executing anything — afterwards the first live execution of every
        warmed shape is a cache hit (zero compilations).  Entries are
        skipped (never fatal) when the manifest is missing/corrupt, was
        recorded against a different catalog version, names an engine
        without a plan cache, or no longer parses.  Returns a report:
        ``{"path", "matched", "entries", "warmed", "skipped"}``.
        """
        from ..planner.persist import load_manifest
        from ..sql import parse_and_bind

        path = path if path is not None else self.plan_cache_path
        report: Dict[str, Any] = {
            "path": path,
            "matched": False,
            "entries": 0,
            "warmed": 0,
            "skipped": 0,
        }
        if path is None:
            return report
        manifest = load_manifest(path)
        if manifest is None:
            return report
        report["entries"] = len(manifest.entries)
        if not manifest.matches_catalog(self.catalog):
            report["skipped"] = len(manifest.entries)
            return report
        report["matched"] = True
        for entry in manifest.entries:
            try:
                canonical = resolve_engine_name(entry.engine)
                prepare = getattr(self.engine(canonical), "prepare_plan", None)
                if not callable(prepare):
                    report["skipped"] += 1
                    continue
                spec = parse_and_bind(entry.sql, self.catalog, name="warm")
                if prepare(spec):
                    report["warmed"] += 1
                    # keep the recipe alive so the next close() re-persists it
                    self._record_statement(canonical, entry.sql, spec)
                else:
                    report["skipped"] += 1
            except Exception:
                report["skipped"] += 1  # schema drift etc.; warm the rest
        return report

    # ------------------------------------------------------------------
    # batched concurrent execution
    # ------------------------------------------------------------------
    def execute_many(
        self,
        queries: Sequence[Union[str, QuerySpec, Tuple[Union[str, QuerySpec], ParamsInput]]],
        params: Optional[Sequence[ParamsInput]] = None,
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
        mode: str = "thread",
    ) -> List["QueryResult"]:
        """Execute a batch of queries concurrently; results in input order.

        Each entry of ``queries`` is SQL text, a bound :class:`QuerySpec`,
        or a ``(query, params)`` pair; alternatively ``params`` supplies one
        binding per query positionally.  Executions fan out over
        ``max_workers`` workers (default ``min(4, cpu_count, len(batch))``)
        against the one immutable encoded graph: per-run vertex state is
        run-scoped and parameter bindings are context-local, so no
        serialization happens anywhere on the query path and every worker's
        result is identical to what a serial loop would produce.

        ``mode`` selects the worker kind:

        * ``"thread"`` (default) — a thread pool.  Plan-cache and
          statistics counters accumulate normally; per-query wall time is
          unchanged, and throughput is bounded by the interpreter (the GIL
          serializes pure-Python compute even though nothing in this
          library does anymore).
        * ``"process"`` — fork-based worker processes (POSIX only; falls
          back to threads where ``fork`` is unavailable).  Children inherit
          the encoded graph, statistics and warm plan cache copy-on-write,
          so the batch runs with real hardware parallelism; cache/statistic
          counter updates made inside children are not reflected back.
          Queries and results must be picklable.  The known query-path
          locks are held across the fork, but forking while *other*
          threads are concurrently executing against or mutating this
          database is not supported (the usual ``fork``-plus-threads
          caveat); run process batches from a quiet point.

        The first failing query's exception is re-raised after the batch
        drains.
        """
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown execute_many mode {mode!r} (thread or process)")
        queries = list(queries)  # accept any iterable; we traverse it twice
        if params is not None:
            params = list(params)
            if len(params) != len(queries):
                raise ValueError(
                    f"params supplies {len(params)} bindings for {len(queries)} queries"
                )
            if any(isinstance(query, tuple) for query in queries):
                raise ValueError(
                    "pass bindings either inline as (query, params) tuples or "
                    "positionally via params=, not both"
                )
            items: List[Tuple[Union[str, QuerySpec], ParamsInput]] = list(zip(queries, params))
        else:
            items = [
                item if isinstance(item, tuple) else (item, None)  # type: ignore[list-item]
                for item in queries
            ]
        if not items:
            return []
        session = self.connect(engine=engine)
        session.engine  # resolve (and lazily build) the engine once, up front
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1)
        # never spawn more workers than there is work (also for explicit values)
        max_workers = max(1, min(max_workers, len(items)))

        def run_one(item: Tuple[Union[str, QuerySpec], ParamsInput]) -> "QueryResult":
            query, bindings = item
            if isinstance(query, QuerySpec):
                return session.execute(query, params=bindings)
            return session.sql(query, params=bindings)

        if max_workers == 1:
            return [run_one(item) for item in items]
        if mode == "process" and hasattr(os, "fork"):
            return self._execute_many_forked(items, session.engine_name, max_workers)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(run_one, item) for item in items]
            return [future.result() for future in futures]

    def _execute_many_forked(
        self,
        items: List[Tuple[Union[str, QuerySpec], ParamsInput]],
        engine_name: str,
        max_workers: int,
    ) -> List["QueryResult"]:
        """Fan a batch out over forked worker processes.

        The workers are forked *after* the engine, graph, statistics and
        plan cache are warm, so they share the expensive read-only state
        with the parent copy-on-write.  The database reaches each worker
        through the pool's *initializer* — with the fork start method its
        arguments are inherited by reference, never pickled — so a worker
        respawned later (e.g. after an OOM kill) rebinds the right
        database too.  The locks every child query path acquires (this
        database's, the shared plan cache's, the engine registry's) are
        held across the initial fork; the forking thread survives into
        each child as its main thread and the locks are re-entrant or
        released, so children start with them in an acquirable state.
        """
        import multiprocessing

        from .registry import _REGISTRY_LOCK

        context = multiprocessing.get_context("fork")
        chunksize = max(1, len(items) // (max_workers * 4))
        with self._lock, self.plan_cache._lock, _REGISTRY_LOCK:
            pool = context.Pool(
                processes=max_workers,
                initializer=_forked_worker_init,
                initargs=(self, engine_name),
            )
        try:
            return pool.map(_forked_batch_worker, items, chunksize=chunksize)
        finally:
            pool.close()
            pool.join()

    # ------------------------------------------------------------------
    # data changes
    # ------------------------------------------------------------------
    def load_rows(
        self,
        relation_name: str,
        rows: Iterable[Sequence[Any]],
        request_id: Optional[str] = None,
    ) -> int:
        """Bulk-append rows to a relation, maintaining dependent state in place.

        This is the incremental write path: when the TAG graph, the
        statistics and the cached executors are current, the new rows are
        *applied as a delta* — appended to the graph encoding, folded into
        the statistics sketches, indexed by each engine's ``apply_delta``
        hook, and propagated into registered materialized views — instead
        of invalidating everything.  Compiled plans are retained across
        the write because their cache keys depend only on the schema
        version.  An empty iterable is a complete no-op: no version bump,
        no cache activity, no engine churn.

        On a durable database (``data_dir=``) the delta is validated,
        written to the WAL and fsync'd *before* it applies, and
        ``request_id`` makes the write idempotent: a retry of an
        already-applied id is acknowledged without re-applying (see
        :meth:`apply_write` for the detailed receipt).

        Writers exclude in-flight readers via the database's
        reader/writer lock, so a concurrent session either sees the full
        pre-write state or the full post-write state, never a torn delta.
        """
        return int(self.apply_write(relation_name, rows, request_id=request_id)["appended"])

    def apply_write(
        self,
        relation_name: str,
        rows: Iterable[Sequence[Any]],
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """:meth:`load_rows` returning a full receipt.

        Returns ``{"appended", "deduplicated", "lsn"}`` where ``lsn`` is
        the write-ahead-log sequence number that made the write durable
        (``None`` on a memory-only database) and ``deduplicated`` is True
        when ``request_id`` was already applied — the retry contract: the
        serving layer acknowledges the *original* application instead of
        applying twice.

        Ordering on the durable path is log-then-apply: rows are
        validated/coerced first (a record that cannot replay must never
        be logged), framed + fsync'd into the WAL, and only then applied
        to the catalog/graph/statistics/engines/views.  An acknowledged
        write is therefore always recoverable, and an unacknowledged one
        either never hit the WAL (the retry applies it once) or hit it
        without the ack (recovery replays it and the retry dedups).
        """
        relation = self.catalog.relation(relation_name)  # raise before locking
        materialized = list(rows)
        if not materialized:
            with self._lock:
                self.maintenance.empty_loads_ignored += 1
            return {"appended": 0, "deduplicated": False, "lsn": None}
        with self._rw_lock.write_locked(), self._lock:
            self._check_open()
            durability = self._durability
            if durability is None:
                appended = self._apply_load_delta(relation, materialized)
                return {"appended": appended, "deduplicated": False, "lsn": None}
            already = durability.applied(request_id)
            if already is not None:
                return {
                    "appended": 0,
                    "deduplicated": True,
                    "lsn": durability.wal.last_lsn,
                    "first_applied": already,
                }
            validated = relation.validate_rows(materialized)
            lsn = durability.log_load_rows(relation_name, validated, request_id)
            appended = self._apply_load_delta(relation, validated, validated_rows=True)
            durability.note_applied(request_id, appended)
            durability.maybe_snapshot(self)
            return {"appended": appended, "deduplicated": False, "lsn": lsn}

    def _apply_load_delta(
        self, relation: Any, rows: List[Sequence[Any]], validated_rows: bool = False
    ) -> int:
        """Append ``rows`` and patch graph/statistics/engines/views in place.

        Caller holds the write lock and ``_lock``.  Freshness is checked
        *before* the catalog version bumps: a resource already stale (from
        an earlier out-of-band change) is left for its usual lazy rebuild
        rather than patched on top of missing history.
        """
        started = time.perf_counter()
        catalog = self.catalog
        version_before = catalog.version
        # physical, not live: tuple vertex indexes, index positions and
        # rollback truncation all live in physical-position space, which
        # tombstone deletes never compact
        before = relation.physical_count
        try:
            return self._apply_load_delta_inner(
                relation, rows, validated_rows, catalog, version_before, before, started
            )
        except BaseException:
            # a failure mid-apply (fault injection, a bad row mid-extend,
            # an engine hook blowing up) leaves partial state: rows in the
            # relation but not the graph, some engines patched and others
            # not.  Roll the relation back to its pre-write length and
            # retire every derived structure so a retry of the same
            # logical write applies exactly once against a clean rebuild.
            relation.truncate(before)
            catalog.note_data_change()
            for engine in self._engines.values():
                retire = getattr(engine, "retire", None)
                if callable(retire):
                    retire(f"write to {relation.name!r} rolled back mid-apply")
            self._engines.clear()
            self._engine_versions.clear()
            self.maintenance.full_rebuilds += 1
            self.maintenance.plans_retained = len(self.plan_cache)
            for view in self._views.values():
                self._rebuild_view(view)
                self.maintenance.views_recomputed += 1
            raise

    def _apply_load_delta_inner(
        self,
        relation: Any,
        rows: List[Sequence[Any]],
        validated_rows: bool,
        catalog: Any,
        version_before: int,
        before: int,
        started: float,
    ) -> int:
        from ..incremental.delta import apply_graph_delta, rows_as_value_dicts
        from ..relational.types import value_size_bytes

        relation.extend(rows, validated=validated_rows)
        coerced = relation.rows_since(before)
        graph_fresh = self._graph is not None and self._graph_version == version_before
        stats_fresh = (
            self._statistics is not None
            and self._statistics.catalog_version == version_before
        )
        catalog.note_data_change()

        maybe_fire("delta.apply.before_graph_patch")
        if graph_fresh:
            apply_graph_delta(self._graph, relation.schema, coerced)
            self._graph_version = catalog.version
        if stats_fresh:
            schema = relation.schema
            added_bytes = sum(
                value_size_bytes(value, column.dtype)
                for row in coerced
                for value, column in zip(row, schema.columns)
            )
            self._statistics.apply_delta(
                catalog,
                relation.name,
                rows_as_value_dicts(schema, coerced),
                added_bytes=added_bytes,
            )

        patched = dropped = 0
        for name, engine in list(self._engines.items()):
            hook = getattr(engine, "apply_delta", None)
            engine_current = self._engine_versions.get(name) == version_before
            # engines holding the shared graph (the TAG family) are only
            # patchable when that graph was just patched too; catalog-backed
            # engines (rdbms, spark) are graph-independent
            graph_ok = graph_fresh or getattr(engine, "graph", None) is None
            if callable(hook) and engine_current and graph_ok:
                hook(relation.name, coerced, before, catalog.version)
                self._engine_versions[name] = catalog.version
                patched += 1
            else:
                # no hook (or the graph itself needs a rebuild): drop the
                # executor for a lazy rebuild — but do NOT retire it, so a
                # session mid-query drains against a consistent snapshot
                self._engines.pop(name)
                self._engine_versions.pop(name, None)
                dropped += 1

        counters = self.maintenance
        counters.rows_applied += len(coerced)
        if graph_fresh:
            counters.deltas_applied += 1
        else:
            counters.full_rebuilds += 1  # stale graph: lazy re-encode ahead
        counters.engines_patched += patched
        counters.engines_dropped += dropped
        counters.plans_retained = len(self.plan_cache)
        elapsed = time.perf_counter() - started
        counters.delta_apply_seconds += elapsed
        counters.last_delta_seconds = elapsed

        if self._views:
            self._refresh_views(
                {relation.name: (before, relation.physical_count)},
                delta_ok=graph_fresh,
            )
        maybe_fire("delta.apply.after_apply")
        return relation.physical_count - before

    # ------------------------------------------------------------------
    # deletes and updates (tombstone deltas)
    # ------------------------------------------------------------------
    def delete_rows(
        self,
        relation_name: str,
        predicate_or_rows: Union[Any, Iterable[Sequence[Any]]],
        request_id: Optional[str] = None,
    ) -> int:
        """Delete rows, maintaining dependent state in place; returns count.

        ``predicate_or_rows`` selects the victims: a callable receives
        each live row (a value tuple) and returns truthiness, anything
        else is an iterable of row values deleted with bag semantics
        (each given row removes exactly one live occurrence; a row with
        no live match raises ``KeyError``).

        This is the deletion mirror of :meth:`load_rows`: rows are
        *tombstoned* (physical positions never shift), the matching tuple
        vertices leave the TAG graph with shared attribute vertices freed
        by refcount, statistics fold the removal exactly, engines patch
        through their ``apply_delete`` hook, and delta-maintained views
        are counting-maintained by telescoped delete terms run against
        the pre-delete graph.  Compiled plans survive — cache keys depend
        only on the schema version, which a delete never moves.

        On a durable database the deleted row *values* are WAL-logged
        before anything applies, and ``request_id`` makes the delete
        idempotent exactly like a write.
        """
        return int(
            self.apply_delete(relation_name, predicate_or_rows, request_id=request_id)[
                "deleted"
            ]
        )

    def apply_delete(
        self,
        relation_name: str,
        predicate_or_rows: Union[Any, Iterable[Sequence[Any]]],
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """:meth:`delete_rows` returning a full receipt.

        Returns ``{"deleted", "deduplicated", "lsn"}`` with the same
        retry contract as :meth:`apply_write`: the durable path is
        log-then-apply (row values, which survive snapshot compaction,
        not positions), and a retried ``request_id`` acknowledges the
        original application instead of deleting twice.
        """
        relation = self.catalog.relation(relation_name)  # raise before locking
        with self._rw_lock.write_locked(), self._lock:
            self._check_open()
            durability = self._durability
            if durability is not None:
                already = durability.applied(request_id)
                if already is not None:
                    return {
                        "deleted": 0,
                        "deduplicated": True,
                        "lsn": durability.wal.last_lsn,
                        "first_applied": already,
                    }
            positions, victim_rows = self._resolve_delete_targets(
                relation, predicate_or_rows
            )
            if not positions:
                self.maintenance.empty_loads_ignored += 1
                return {"deleted": 0, "deduplicated": False, "lsn": None}
            lsn = None
            if durability is not None:
                lsn = durability.log_delete_rows(relation_name, victim_rows, request_id)
            deleted = self._apply_delete_delta(relation, positions)
            if durability is not None:
                durability.note_applied(request_id, deleted)
                durability.maybe_snapshot(self)
            return {"deleted": deleted, "deduplicated": False, "lsn": lsn}

    def update_rows(
        self,
        relation_name: str,
        predicate_or_rows: Union[Any, Iterable[Sequence[Any]]],
        updater_or_rows: Union[Any, Iterable[Sequence[Any]]],
        request_id: Optional[str] = None,
    ) -> int:
        """Update rows as delete + insert in one critical section; returns
        the number of rows replaced.

        ``predicate_or_rows`` selects the victims exactly as in
        :meth:`delete_rows`.  ``updater_or_rows`` produces the
        replacements: a callable maps each victim row (a value tuple) to
        its replacement — either a full row sequence or a
        ``column -> value`` mapping merged over the old values — a bare
        mapping is that same merge applied to every victim (the SQL
        ``UPDATE ... SET`` shape), and any other iterable is inserted as
        given (the two halves need not pair up; an update *is* a delete
        plus an insert).
        """
        return int(
            self.apply_update(
                relation_name, predicate_or_rows, updater_or_rows, request_id=request_id
            )["deleted"]
        )

    def apply_update(
        self,
        relation_name: str,
        predicate_or_rows: Union[Any, Iterable[Sequence[Any]]],
        updater_or_rows: Union[Any, Iterable[Sequence[Any]]],
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """:meth:`update_rows` returning a full receipt.

        Returns ``{"deleted", "inserted", "deduplicated", "lsn"}``.  Both
        halves ride one WAL record under one ``request_id``, so the
        update is durable and idempotent *atomically*: recovery replays
        delete-then-insert together or (on dedup) neither, and no crash
        window can split them.  Both halves also apply inside one writer
        critical section — no reader ever observes the delete without
        the insert.
        """
        relation = self.catalog.relation(relation_name)  # raise before locking
        with self._rw_lock.write_locked(), self._lock:
            self._check_open()
            durability = self._durability
            if durability is not None:
                already = durability.applied(request_id)
                if already is not None:
                    return {
                        "deleted": 0,
                        "inserted": 0,
                        "deduplicated": True,
                        "lsn": durability.wal.last_lsn,
                        "first_applied": already,
                    }
            positions, victim_rows = self._resolve_delete_targets(
                relation, predicate_or_rows
            )
            replacements = self._replacement_rows(relation, victim_rows, updater_or_rows)
            if not positions and not replacements:
                self.maintenance.empty_loads_ignored += 1
                return {"deleted": 0, "inserted": 0, "deduplicated": False, "lsn": None}
            validated = relation.validate_rows(replacements) if replacements else []
            lsn = None
            if durability is not None:
                lsn = durability.log_update_rows(
                    relation_name, victim_rows, validated, request_id
                )
            deleted = self._apply_delete_delta(relation, positions) if positions else 0
            inserted = (
                self._apply_load_delta(relation, validated, validated_rows=True)
                if validated
                else 0
            )
            if durability is not None:
                durability.note_applied(request_id, deleted + inserted)
                durability.maybe_snapshot(self)
            return {
                "deleted": deleted,
                "inserted": inserted,
                "deduplicated": False,
                "lsn": lsn,
            }

    def _resolve_delete_targets(
        self, relation: Any, predicate_or_rows: Union[Any, Iterable[Sequence[Any]]]
    ) -> Tuple[List[int], List[Sequence[Any]]]:
        """Victim physical positions + their row values, pre-deletion."""
        if callable(predicate_or_rows):
            positions = relation.find_positions(predicate_or_rows)
        else:
            positions = relation.match_positions(predicate_or_rows)
        return positions, [relation[position] for position in positions]

    def _replacement_rows(
        self,
        relation: Any,
        victim_rows: List[Sequence[Any]],
        updater_or_rows: Union[Any, Iterable[Sequence[Any]]],
    ) -> List[Sequence[Any]]:
        """Materialize an update's insert half (see :meth:`update_rows`)."""
        if isinstance(updater_or_rows, Mapping):
            # bare mapping = same column merge for every victim; without
            # this branch it would fall through to list(dict) == keys
            updates = updater_or_rows
            updater_or_rows = lambda row: updates  # noqa: E731
        if not callable(updater_or_rows):
            return list(updater_or_rows)
        schema = relation.schema
        replacements: List[Sequence[Any]] = []
        for row in victim_rows:
            produced = updater_or_rows(row)
            if isinstance(produced, Mapping):
                merged = list(row)
                for column, value in produced.items():
                    merged[schema.position(column)] = value
                produced = merged
            replacements.append(produced)
        return replacements

    def _apply_delete_delta(self, relation: Any, positions: List[int]) -> int:
        """Tombstone ``positions`` and patch graph/statistics/engines/views.

        Caller holds the write lock and ``_lock``.  Mirrors
        :meth:`_apply_load_delta`, including the rollback contract: a
        failure mid-apply restores the tombstoned rows and retires every
        derived structure so a retry applies exactly once against a
        clean rebuild.
        """
        started = time.perf_counter()
        catalog = self.catalog
        version_before = catalog.version
        # validates every position before mutating anything, so a raise
        # from here leaves nothing to roll back
        deleted_rows = relation.delete_positions(positions)
        try:
            return self._apply_delete_delta_inner(
                relation, positions, deleted_rows, catalog, version_before, started
            )
        except BaseException:
            relation.restore_positions(positions)
            catalog.note_data_change()
            for engine in self._engines.values():
                retire = getattr(engine, "retire", None)
                if callable(retire):
                    retire(f"delete from {relation.name!r} rolled back mid-apply")
            self._engines.clear()
            self._engine_versions.clear()
            self.maintenance.full_rebuilds += 1
            self.maintenance.plans_retained = len(self.plan_cache)
            for view in self._views.values():
                self._rebuild_view(view)
                self.maintenance.views_recomputed += 1
            raise

    def _apply_delete_delta_inner(
        self,
        relation: Any,
        positions: List[int],
        deleted_rows: List[Sequence[Any]],
        catalog: Any,
        version_before: int,
        started: float,
    ) -> int:
        from ..incremental.delta import apply_graph_delete, rows_as_value_dicts
        from ..relational.types import value_size_bytes

        graph_fresh = self._graph is not None and self._graph_version == version_before
        stats_fresh = (
            self._statistics is not None
            and self._statistics.catalog_version == version_before
        )
        catalog.note_data_change()

        maybe_fire("delta_delete.before_graph_patch")
        affected_views = [
            view
            for view in self._views.values()
            if relation.name in {table.table for table in view.spec.tables}
        ]
        delta_views = [view for view in affected_views if view.mode == "delta"]
        if graph_fresh and delta_views:
            # counting view maintenance MUST see the pre-delete graph:
            # the telescoped delete terms join the deleted tuples against
            # state that still contains them
            self._refresh_views_delete(relation.name, positions, delta_views)
        if graph_fresh:
            apply_graph_delete(self._graph, relation.schema, positions)
            self._graph_version = catalog.version
        if stats_fresh:
            schema = relation.schema
            removed_bytes = sum(
                value_size_bytes(value, column.dtype)
                for row in deleted_rows
                for value, column in zip(row, schema.columns)
            )
            self._statistics.apply_removal(
                catalog,
                relation.name,
                rows_as_value_dicts(schema, deleted_rows),
                removed_bytes=removed_bytes,
            )

        patched = dropped = 0
        for name, engine in list(self._engines.items()):
            hook = getattr(engine, "apply_delete", None)
            engine_current = self._engine_versions.get(name) == version_before
            graph_ok = graph_fresh or getattr(engine, "graph", None) is None
            if callable(hook) and engine_current and graph_ok:
                hook(relation.name, positions, deleted_rows, catalog.version)
                self._engine_versions[name] = catalog.version
                patched += 1
            else:
                self._engines.pop(name)
                self._engine_versions.pop(name, None)
                dropped += 1

        counters = self.maintenance
        counters.rows_deleted += len(deleted_rows)
        if graph_fresh:
            counters.delete_deltas_applied += 1
        else:
            counters.full_rebuilds += 1  # stale graph: lazy re-encode ahead
        counters.engines_patched += patched
        counters.engines_dropped += dropped
        counters.plans_retained = len(self.plan_cache)
        elapsed = time.perf_counter() - started
        counters.delta_apply_seconds += elapsed
        counters.last_delta_seconds = elapsed

        # recompute-mode views go AFTER the graph patch: their engine run
        # must not trigger a stale-graph full re-encode mid-delete.  With a
        # stale graph the delete terms had no history to join against, so
        # every affected view rebuilds here instead.
        rebuild = [
            view
            for view in affected_views
            if view.mode != "delta" or not graph_fresh
        ]
        for view in rebuild:
            view_started = time.perf_counter()
            self._rebuild_view(view)
            self.maintenance.views_recomputed += 1
            self.maintenance.view_refresh_seconds += (
                time.perf_counter() - view_started
            )
        maybe_fire("delta_delete.after_apply")
        return len(deleted_rows)

    def _refresh_views_delete(
        self, relation_name: str, positions: List[int], delta_views: List[Any]
    ) -> None:
        """Counting-maintain views for a delete (pre-graph-patch; locks held)."""
        from ..incremental.views import refresh_view_delete

        deleted = {relation_name: {position + 1 for position in positions}}
        for view in delta_views:
            started = time.perf_counter()
            refresh_view_delete(view, self._graph, self.catalog, deleted)
            self.maintenance.views_delete_refreshed += 1
            self.maintenance.view_refresh_seconds += time.perf_counter() - started

    def note_data_change(self) -> None:
        """Record an *out-of-band* data mutation: bump the catalog version so
        statistics and the TAG encoding refresh, and eagerly retire every
        cached engine.

        This is the scorched-earth fallback for mutations that bypassed
        :meth:`load_rows` (direct writes to relation row lists), where no
        delta is known.  Retiring the engines matters for correctness, not
        just freshness: an executor built against the old encoding would
        otherwise keep serving the stale graph to sessions that captured a
        reference.  The next :meth:`engine` call builds a fresh executor
        bound to the re-encoded graph; retired executors refuse further
        queries with :class:`~repro.core.executor.StaleEngineError`.
        Compiled plans are *retained* — their cache keys depend only on
        the schema, which an out-of-band data write cannot have changed.
        Materialized views are recomputed from scratch on the spot.
        """
        with self._rw_lock.write_locked(), self._lock:
            self.catalog.note_data_change()
            for engine in self._engines.values():
                retire = getattr(engine, "retire", None)
                if callable(retire):
                    retire(
                        f"catalog {self.catalog.name!r} re-encoded at version "
                        f"{self.catalog.version}"
                    )
            self._engines.clear()
            self._engine_versions.clear()
            self.maintenance.full_rebuilds += 1
            self.maintenance.plans_retained = len(self.plan_cache)
            for view in self._views.values():
                self._rebuild_view(view)
                self.maintenance.views_recomputed += 1
            if self._durability is not None:
                # out-of-band mutations bypassed the WAL; the only way to
                # make them durable is to capture the rows wholesale now
                self._durability.snapshot(self)

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------
    def materialize(
        self, sql: str, name: Optional[str] = None, _durable_log: bool = True
    ) -> Dict[str, Any]:
        """Register ``sql`` as a materialized view and populate it.

        Delta-eligible shapes (connected join/filter/projection blocks
        without aggregates, subqueries or outer joins) are maintained by
        seminaïve re-runs over only the newly ingested vertices on each
        :meth:`load_rows`; everything else is recomputed.  Parameterized
        statements are rejected.  Returns the view's info dict.

        On a durable database the view *definition* is WAL-logged (after
        validation, before population) so recovery re-materializes it;
        contents are never persisted — they are a function of the data.
        ``_durable_log=False`` is recovery's own re-entry flag.
        """
        from ..incremental.views import MaterializedView, ViewError, view_refresh_mode
        from ..sql import parse_and_bind

        with self._rw_lock.write_locked(), self._lock:
            self._check_open()
            view_name = name or f"view_{len(self._views) + 1}"
            if view_name in self._views:
                raise ViewError(f"materialized view {view_name!r} already exists")
            spec = parse_and_bind(sql, self.catalog, name=view_name)
            mode = view_refresh_mode(spec)  # raises ViewError when ineligible
            if self._durability is not None and _durable_log:
                self._durability.log_materialize(view_name, sql)
            view = MaterializedView(
                name=view_name, sql=sql, spec=spec, columns=[], mode=mode
            )
            if mode == "delta":
                self._populate_view_delta(view)
            else:
                self._recompute_view(view)
            self._views[view_name] = view
            return view.info()

    def _populate_view_delta(self, view: Any) -> None:
        """Initial full population of a delta-maintained view.

        Runs the compiled fragment with no alias windows so the stored
        rows are the *pre-distinct bag* — exactly what seminaïve delta
        appends extend; DISTINCT is applied at serve time.
        """
        from ..incremental.views import run_view_fragment

        compiled = view.compiled_for(self.catalog)
        graph = self.tag_graph()
        view.rows = run_view_fragment(graph, compiled)
        view.columns = [column.alias for column in compiled.config.output_columns]
        view.base_counts = {
            table.table: self.catalog.relation(table.table).physical_count
            for table in view.spec.tables
        }

    def _recompute_view(self, view: Any) -> None:
        """Recompute a view from scratch through the default engine."""
        result = self.engine(self.default_engine).execute(view.spec)
        view.rows = [dict(row) for row in result.rows]
        view.columns = list(result.columns)
        view.base_counts = {
            table.table: self.catalog.relation(table.table).physical_count
            for table in view.spec.tables
        }
        view.recompute_count += 1

    def _refresh_views(
        self, changed: Dict[str, Tuple[int, int]], delta_ok: bool = True
    ) -> None:
        """Maintain every registered view after a write (caller holds locks).

        ``delta_ok=False`` forces recomputation — used when the graph was
        already stale before the write, so windowed delta runs against it
        would miss history.
        """
        from ..incremental.views import refresh_view_delta

        for view in self._views.values():
            tables = {table.table for table in view.spec.tables}
            if not tables & set(changed):
                continue  # none of its base tables moved
            started = time.perf_counter()
            if view.mode == "delta" and delta_ok:
                refresh_view_delta(view, self._graph, self.catalog, changed)
                self.maintenance.views_refreshed += 1
            else:
                self._rebuild_view(view)
                self.maintenance.views_recomputed += 1
            self.maintenance.view_refresh_seconds += time.perf_counter() - started

    def _rebuild_view(self, view: Any) -> None:
        """Rebuild a view from scratch, preserving its storage semantics.

        Delta views store the pre-DISTINCT bag, so they repopulate through
        the fragment path (against the freshly re-encoded graph); recompute
        views go through the engine as usual.
        """
        if view.mode == "delta":
            self._populate_view_delta(view)
            view.recompute_count += 1
        else:
            self._recompute_view(view)

    def query_view(self, name: str) -> QueryResult:
        """Serve a materialized view's current contents (no recomputation)."""
        from ..bsp.metrics import RunMetrics
        from ..incremental.views import ViewError

        with self._rw_lock.read_locked(), self._lock:
            self._check_open()
            view = self._views.get(name)
            if view is None:
                raise ViewError(f"no materialized view named {name!r}")
            rows = view.result_rows()
            metrics = RunMetrics(label=f"view:{name}")
            return QueryResult([dict(row) for row in rows], list(view.columns), metrics)

    def views(self) -> List[Dict[str, Any]]:
        """Info dicts for every registered materialized view."""
        with self._lock:
            return [view.info() for view in self._views.values()]

    def drop_view(self, name: str) -> None:
        from ..incremental.views import ViewError

        with self._rw_lock.write_locked(), self._lock:
            if name not in self._views:
                raise ViewError(f"no materialized view named {name!r}")
            if self._durability is not None:
                self._durability.log_drop_view(name)
            del self._views[name]

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        return self._durability is not None

    def checkpoint(self) -> Optional[Dict[str, Any]]:
        """Snapshot now and compact the WAL (no-op on memory-only databases).

        Runs under the writer lock, so the snapshot is a consistent
        point-in-time image; returns the snapshot report.
        """
        if self._durability is None:
            return None
        with self._rw_lock.write_locked(), self._lock:
            self._check_open()
            return self._durability.snapshot(self)

    def durability_stats(self) -> Optional[Dict[str, Any]]:
        """WAL/snapshot/idempotency counters (None on memory-only databases)."""
        if self._durability is None:
            return None
        with self._lock:
            return self._durability.stats()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Any]:
        """Aggregate plan-cache counters across every engine of this database."""
        with self._lock:
            return {
                "entries": len(self.plan_cache),
                "max_entries": self.plan_cache.max_entries,
                "shared": True,
                "engines": sorted(self._engines),
                "views": sorted(self._views),
                "maintenance": self.maintenance.as_dict(),
                **self.plan_cache.stats.as_dict(),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Database({self.catalog.name!r}, default_engine={self.default_engine!r}, "
            f"{len(self.catalog)} relations)"
        )


# ----------------------------------------------------------------------
# fork-mode plumbing for Database.execute_many(mode="process")
# ----------------------------------------------------------------------
#: set inside each forked worker by the pool initializer: the database and
#: engine name the worker serves (inherited memory, not a pickle round-trip)
_FORK_STATE: Optional[Tuple[Database, str]] = None


def _forked_worker_init(database: Database, engine_name: str) -> None:
    global _FORK_STATE
    # the parent's reader/writer lock state (reader counts, waiting writers)
    # is meaningless in the child — replace it so child queries never block
    # on readers that only exist in the parent
    database._rw_lock = ReadWriteLock()
    _FORK_STATE = (database, engine_name)


def _forked_batch_worker(item: Tuple[Union[str, QuerySpec], ParamsInput]) -> "QueryResult":
    database, engine_name = _FORK_STATE
    session = database.connect(engine=engine_name)
    query, bindings = item
    if isinstance(query, QuerySpec):
        return session.execute(query, params=bindings)
    return session.sql(query, params=bindings)


class Session:
    """One logical connection to a :class:`Database`.

    Sessions hold no mutable query state of their own — every execution
    resolves the engine through the database (so invalidation is
    transparent) and binds its parameters in a context variable (so
    concurrent sessions never observe each other's values).
    """

    def __init__(self, database: Database, engine: Optional[str] = None) -> None:
        self.database = database
        self.engine_name = resolve_engine_name(engine or database.default_engine)

    # -- context manager sugar -----------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Sessions are stateless; provided for API symmetry."""

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self.database.engine(self.engine_name)

    @property
    def catalog(self) -> Catalog:
        return self.database.catalog

    def _run_rebinding(self, call: Any) -> Any:
        """Run ``call(engine)``, re-resolving once if the engine was retired.

        A concurrent :meth:`Database.note_data_change` may retire the
        executor between this session resolving it and the query running;
        re-resolving picks up the fresh engine bound to the re-encoded
        graph, which is the transparent-rebind behaviour sessions promise.
        A second retirement mid-retry (a continuous writer) propagates.

        The whole execution runs under the database's read lock, so a
        concurrent :meth:`Database.load_rows` delta cannot land mid-query:
        readers drain first, the writer applies atomically, and the next
        execution sees the complete post-write state.
        """
        with self.database._rw_lock.read_locked():
            try:
                return call(self.engine)
            except StaleEngineError:
                return call(self.engine)

    # ------------------------------------------------------------------
    # executing
    # ------------------------------------------------------------------
    def sql(
        self,
        sql: str,
        params: ParamsInput = None,
        name: str = "query",
    ) -> QueryResult:
        """Parse, bind and execute SQL text, with optional parameters.

        Parameters appear in the text as ``:name`` or positional ``?`` and
        are supplied as a mapping / sequence respectively.  Repeated calls
        with different values share one compiled plan (the plan-cache
        fingerprint is parameter-generic).
        """
        return self.prepare(sql, name=name).execute(params)

    def execute(
        self,
        query: Union[str, QuerySpec],
        params: ParamsInput = None,
        name: str = "query",
    ) -> QueryResult:
        """Execute SQL text or an already-bound QuerySpec — one front door.

        Callers no longer pre-parse just to pick an entry point: text goes
        through parse/bind/prepare (sharing the parameter-generic plan
        cache), a :class:`~repro.algebra.logical.QuerySpec` executes
        directly.  ``Database.execute_many`` accepts the same union per
        batch item.
        """
        if isinstance(query, str):
            return self.prepare(query, name=name).execute(params)
        expected = spec_parameters(query)
        bound = normalize_parameters(params, expected)
        check_parameter_types(bound, infer_parameter_types(query, self.catalog))
        with bind_parameters(bound):
            return self._run_rebinding(lambda engine: engine.execute(query))

    def prepare(self, sql: str, name: str = "stmt") -> "PreparedStatement":
        """Parse + bind once; execute any number of times with new values."""
        from ..sql import parse_and_bind

        spec = parse_and_bind(sql, self.catalog, name=name)
        # remember the recipe so Database.close() can persist a warm-start
        # manifest covering every statement this process prepared
        self.database._record_statement(self.engine_name, sql, spec)
        return PreparedStatement(
            session=self,
            sql=sql,
            spec=spec,
            parameter_names=spec_parameters(spec),
            parameter_types=infer_parameter_types(spec, self.catalog),
        )

    # ------------------------------------------------------------------
    # explaining
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Union[str, QuerySpec],
        params: ParamsInput = None,
        analyze: bool = False,
        name: str = "query",
    ) -> str:
        """Render this session's engine plan for ``query``.

        The TAG engine shows the chosen rooted join tree and its
        message-volume cost breakdown; the baselines show their operator
        trees.  ``analyze=True`` additionally runs the query (parameters
        required then, if the query has any) and appends actual totals.
        """
        if isinstance(query, str):
            from ..sql import parse_and_bind

            spec = parse_and_bind(query, self.catalog, name=name)
        else:
            spec = query
        expected = spec_parameters(spec)
        if params is not None or analyze:
            bound = normalize_parameters(params, expected)
            check_parameter_types(bound, infer_parameter_types(spec, self.catalog))
        else:
            bound = {}
        header = f"engine: {self.engine_name}"
        with bind_parameters(bound):
            rendered = self._run_rebinding(
                lambda engine: engine.explain(spec, analyze=analyze)
            )
        return header + "\n" + rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.database.catalog.name!r}, engine={self.engine_name!r})"


class PreparedStatement:
    """A parsed, bound, plan-cache-friendly statement.

    The expensive work (parse, bind, and — on first execution — join-tree
    planning) happens once; each :meth:`execute` only validates and binds
    its parameter values.  All executions share one plan-cache entry
    because the fingerprint renders parameters by name, not by value.
    """

    def __init__(
        self,
        session: Session,
        sql: str,
        spec: QuerySpec,
        parameter_names: List[str],
        parameter_types: Dict[str, str],
    ) -> None:
        self.session = session
        self.sql = sql
        self.spec = spec
        self.parameter_names = parameter_names
        self.parameter_types = parameter_types

    def execute(self, params: ParamsInput = None) -> QueryResult:
        bound = normalize_parameters(params, self.parameter_names)
        check_parameter_types(bound, self.parameter_types)
        with bind_parameters(bound):
            return self.session._run_rebinding(lambda engine: engine.execute(self.spec))

    def explain(self, params: ParamsInput = None, analyze: bool = False) -> str:
        return self.session.explain(self.spec, params=params, analyze=analyze)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placeholders = ", ".join(f":{name}" for name in self.parameter_names) or "none"
        return f"PreparedStatement({self.spec.name!r}, parameters: {placeholders})"


# ----------------------------------------------------------------------
# bind-time parameter typing
# ----------------------------------------------------------------------
def infer_parameter_types(spec: QuerySpec, catalog: Catalog) -> Dict[str, str]:
    """Map parameter names to the DataType value-name of the column each is
    compared against, where that is unambiguous.

    Drives the early ``ParameterError`` on type mismatches (e.g. a string
    bound to ``O_TOTAL > :t``).  Parameters compared against columns of
    conflicting types — or never compared against a column directly — are
    left untyped and validated only at evaluation time.
    """
    from ..algebra.parameters import ParameterRef

    inferred: Dict[str, str] = {}
    conflicted: set = set()

    def note(name: str, type_name: Optional[str]) -> None:
        if type_name is None or name in conflicted:
            return
        if name in inferred and inferred[name] != type_name:
            del inferred[name]
            conflicted.add(name)
            return
        inferred[name] = type_name

    def column_type(alias_map: Mapping[str, str], expression: Expression) -> Optional[str]:
        if not isinstance(expression, ColumnRef) or expression.table is None:
            return None
        table = alias_map.get(expression.table)
        if table is None or table not in catalog:
            return None
        schema = catalog.schema(table)
        if expression.column not in schema:
            return None
        return schema.dtype(expression.column).value

    def visit_expression(alias_map: Mapping[str, str], expression: Expression) -> None:
        for node in iter_subexpressions(expression):
            if isinstance(node, Comparison):
                if isinstance(node.left, ParameterRef):
                    note(node.left.name, column_type(alias_map, node.right))
                if isinstance(node.right, ParameterRef):
                    note(node.right.name, column_type(alias_map, node.left))
            elif isinstance(node, Between):
                operand_type = column_type(alias_map, node.operand)
                for bound in (node.low, node.high):
                    if isinstance(bound, ParameterRef):
                        note(bound.name, operand_type)
            elif isinstance(node, InList):
                operand_type = column_type(alias_map, node.operand)
                for item in node.values:
                    if isinstance(item, ParameterRef):
                        note(item.name, operand_type)

    def visit(block: QuerySpec) -> None:
        alias_map = block.alias_map()
        for alias_filters in block.filters.values():
            for predicate in alias_filters:
                visit_expression(alias_map, predicate)
        for predicate in block.residual_predicates:
            visit_expression(alias_map, predicate)
        for subquery in block.subqueries:
            if subquery.outer_expr is not None:
                visit_expression(alias_map, subquery.outer_expr)
            visit(subquery.query)

    visit(spec)
    return inferred
