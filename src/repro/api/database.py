"""The session-oriented public API: ``Database`` -> ``Session`` -> results.

One :class:`Database` owns everything the paper builds *once per dataset*
— the query-independent TAG encoding, the catalog statistics, one shared
:class:`~repro.planner.cache.PlanCache` — and hands out lightweight
:class:`Session` objects that execute SQL (optionally parameterized),
prepare statements and render cross-engine EXPLAIN plans.  Because every
executor created through the facade shares the one plan cache and
statistics store, plan reuse is automatic across sessions and across
parameter values:

    db = Database.from_catalog(catalog)            # encodes + collects stats
    with db.connect() as session:
        hot = session.prepare(
            "SELECT COUNT(*) AS n FROM ORDERS o WHERE o.O_TOTAL > :t")
        hot.execute({"t": 50})                     # compiles (one cache miss)
        hot.execute({"t": 500})                    # warm: plan-cache hit
        print(session.explain(hot.sql))            # rooted join tree + costs

Data loads go through :meth:`Database.load_rows` (or an explicit
:meth:`Database.note_data_change` after out-of-band mutation), which bumps
the catalog version so statistics refresh, drops the shared plan cache and
schedules the TAG graph for re-encoding — no stale plan can survive a load.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..algebra.expressions import Between, ColumnRef, Comparison, Expression, InList
from ..algebra.logical import QuerySpec
from ..algebra.parameters import (
    ParamsInput,
    bind_parameters,
    check_parameter_types,
    iter_subexpressions,
    normalize_parameters,
    spec_parameters,
)
from ..core.executor import QueryResult, StaleEngineError
from ..planner import PlanCache
from ..relational.catalog import Catalog
from ..tag.statistics import CatalogStatistics, refreshed_statistics
from .registry import Engine, EngineContext, create_engine, resolve_engine_name


class Database:
    """A loaded database plus every engine that can query it.

    Args:
        catalog: the relational instance all engines share.
        engine: default engine name for new sessions (registry name/alias).
        num_workers: simulated worker count for the TAG/distributed engines.
        plan_cache: a shared compiled-plan cache; one is created when omitted.
        plan_cache_path: when set, :meth:`close` persists a statement
            manifest here and :meth:`warm_plan_cache` replays it at startup
            so a restarted process skips recompilation (the serving layer's
            warm start).
        engine_options: per-engine keyword overrides, e.g.
            ``{"tag": {"cross_check_plans": True}, "spark": {"num_partitions": 8}}``.
    """

    #: prepared-statement recipes retained for manifest persistence (LRU)
    _STATEMENT_LOG_ENTRIES = 512

    def __init__(
        self,
        catalog: Catalog,
        engine: str = "tag",
        num_workers: int = 1,
        plan_cache: Optional[PlanCache] = None,
        plan_cache_entries: int = 256,
        plan_cache_path: Optional[str] = None,
        engine_options: Optional[Dict[str, Dict[str, Any]]] = None,
        graph: Optional[Any] = None,
    ) -> None:
        self.catalog = catalog
        self.default_engine = resolve_engine_name(engine)
        self.num_workers = num_workers
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_entries)
        self.plan_cache_path = plan_cache_path
        self.engine_options = {
            resolve_engine_name(name): dict(options)
            for name, options in (engine_options or {}).items()
        }
        # accept a pre-encoded TAG graph (bench harnesses encode once and
        # share it); it is still re-encoded if the data version moves on
        self._graph: Optional[Any] = graph
        self._graph_version: Optional[int] = catalog.version if graph is not None else None
        self._statistics: Optional[CatalogStatistics] = None
        self._engines: Dict[str, Engine] = {}
        self._engine_versions: Dict[str, int] = {}
        #: (engine, sql) -> bound QuerySpec, recorded by Session.prepare so
        #: close() can persist a warm-start manifest of every query shape
        self._statement_log: "OrderedDict[Tuple[str, str], QuerySpec]" = OrderedDict()
        self._closed = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, catalog: Catalog, **kwargs: Any) -> "Database":
        """The blessed constructor: wrap an already-populated catalog."""
        return cls(catalog, **kwargs)

    # ------------------------------------------------------------------
    # shared, invalidation-aware resources
    # ------------------------------------------------------------------
    def tag_graph(self) -> Any:
        """The TAG encoding of the catalog, built once and per data version."""
        from ..tag.encoder import encode_catalog

        with self._lock:
            if self._graph is None or self._graph_version != self.catalog.version:
                self._graph = encode_catalog(self.catalog)
                self._graph_version = self.catalog.version
            return self._graph

    @property
    def statistics(self) -> CatalogStatistics:
        """Catalog statistics, recollected whenever the catalog version moves."""
        with self._lock:
            self._statistics = refreshed_statistics(self.catalog, self._statistics)
            return self._statistics

    def engine(self, name: Optional[str] = None) -> Engine:
        """The (cached) engine instance registered under ``name``.

        Engines are rebuilt lazily after :meth:`note_data_change` so the
        TAG engine always queries the current encoding.
        """
        canonical = resolve_engine_name(name or self.default_engine)
        with self._lock:
            self._check_open()
            cached = self._engines.get(canonical)
            if (
                cached is not None
                and not getattr(cached, "retired", False)
                and self._engine_versions.get(canonical) == self.catalog.version
            ):
                return cached
            context = EngineContext(
                catalog=self.catalog,
                tag_graph=self.tag_graph,
                plan_cache=self.plan_cache,
                statistics=self.statistics,
                num_workers=self.num_workers,
                options=self.engine_options.get(canonical, {}),
            )
            engine = create_engine(canonical, context)
            self._engines[canonical] = engine
            self._engine_versions[canonical] = self.catalog.version
            return engine

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(self, engine: Optional[str] = None) -> "Session":
        """Open a session (cheap; any number may be open concurrently)."""
        self._check_open()
        return Session(self, engine=engine or self.default_engine)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"Database({self.catalog.name!r}) is closed; create a new one "
                "to keep querying"
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        self._check_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Retire every executor and flush the persisted plan-cache manifest.

        Idempotent.  When ``plan_cache_path`` is configured the statement
        manifest is written *before* the executors go away, so the next
        process can :meth:`warm_plan_cache` from it.  After closing, new
        sessions/engines raise ``RuntimeError``; sessions already holding
        this database fail on their next engine resolution.
        """
        with self._lock:
            if self._closed:
                return
            if self.plan_cache_path is not None:
                try:
                    self.flush_plan_manifest()
                except OSError:
                    pass  # a read-only disk must not wedge shutdown
            for engine in self._engines.values():
                retire = getattr(engine, "retire", None)
                if callable(retire):
                    retire(f"database {self.catalog.name!r} closed")
            self._engines.clear()
            self._engine_versions.clear()
            self._closed = True

    # ------------------------------------------------------------------
    # persisted plan cache (warm starts)
    # ------------------------------------------------------------------
    def _record_statement(self, engine_name: str, sql: str, spec: QuerySpec) -> None:
        """Remember a prepared statement's recipe for manifest persistence."""
        key = (engine_name, sql)
        with self._lock:
            self._statement_log[key] = spec
            self._statement_log.move_to_end(key)
            while len(self._statement_log) > self._STATEMENT_LOG_ENTRIES:
                self._statement_log.popitem(last=False)

    def flush_plan_manifest(self, path: Optional[str] = None) -> Optional[str]:
        """Persist every recorded statement as a warm-start manifest.

        Returns the path written, or ``None`` when no path is configured.
        Fingerprints are computed at flush time against the *current*
        catalog version, so a manifest is always internally consistent
        even if statements were prepared before a data change.
        """
        from ..planner.persist import PlanManifest, PlanManifestEntry, save_manifest

        path = path if path is not None else self.plan_cache_path
        if path is None:
            return None
        with self._lock:
            recorded = list(self._statement_log.items())
        entries = []
        for (engine_name, sql), spec in recorded:
            fingerprint = None
            try:
                fingerprinter = getattr(self.engine(engine_name), "fragment_fingerprint", None)
                if callable(fingerprinter):
                    fingerprint = fingerprinter(spec)
            except Exception:
                fingerprint = None  # unfingerprintable shapes still warm from SQL
            entries.append(PlanManifestEntry(engine=engine_name, sql=sql, fingerprint=fingerprint))
        manifest = PlanManifest.for_catalog(self.catalog, entries)
        return save_manifest(path, manifest)

    def warm_plan_cache(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Replay a persisted manifest: parse, bind and compile every entry.

        Warming happens through each engine's ``prepare_plan`` hook, which
        stores compiled fragments in the shared plan cache without
        executing anything — afterwards the first live execution of every
        warmed shape is a cache hit (zero compilations).  Entries are
        skipped (never fatal) when the manifest is missing/corrupt, was
        recorded against a different catalog version, names an engine
        without a plan cache, or no longer parses.  Returns a report:
        ``{"path", "matched", "entries", "warmed", "skipped"}``.
        """
        from ..planner.persist import load_manifest
        from ..sql import parse_and_bind

        path = path if path is not None else self.plan_cache_path
        report: Dict[str, Any] = {
            "path": path,
            "matched": False,
            "entries": 0,
            "warmed": 0,
            "skipped": 0,
        }
        if path is None:
            return report
        manifest = load_manifest(path)
        if manifest is None:
            return report
        report["entries"] = len(manifest.entries)
        if not manifest.matches_catalog(self.catalog):
            report["skipped"] = len(manifest.entries)
            return report
        report["matched"] = True
        for entry in manifest.entries:
            try:
                canonical = resolve_engine_name(entry.engine)
                prepare = getattr(self.engine(canonical), "prepare_plan", None)
                if not callable(prepare):
                    report["skipped"] += 1
                    continue
                spec = parse_and_bind(entry.sql, self.catalog, name="warm")
                if prepare(spec):
                    report["warmed"] += 1
                    # keep the recipe alive so the next close() re-persists it
                    self._record_statement(canonical, entry.sql, spec)
                else:
                    report["skipped"] += 1
            except Exception:
                report["skipped"] += 1  # schema drift etc.; warm the rest
        return report

    # ------------------------------------------------------------------
    # batched concurrent execution
    # ------------------------------------------------------------------
    def execute_many(
        self,
        queries: Sequence[Union[str, QuerySpec, Tuple[Union[str, QuerySpec], ParamsInput]]],
        params: Optional[Sequence[ParamsInput]] = None,
        engine: Optional[str] = None,
        max_workers: Optional[int] = None,
        mode: str = "thread",
    ) -> List["QueryResult"]:
        """Execute a batch of queries concurrently; results in input order.

        Each entry of ``queries`` is SQL text, a bound :class:`QuerySpec`,
        or a ``(query, params)`` pair; alternatively ``params`` supplies one
        binding per query positionally.  Executions fan out over
        ``max_workers`` workers (default ``min(4, cpu_count, len(batch))``)
        against the one immutable encoded graph: per-run vertex state is
        run-scoped and parameter bindings are context-local, so no
        serialization happens anywhere on the query path and every worker's
        result is identical to what a serial loop would produce.

        ``mode`` selects the worker kind:

        * ``"thread"`` (default) — a thread pool.  Plan-cache and
          statistics counters accumulate normally; per-query wall time is
          unchanged, and throughput is bounded by the interpreter (the GIL
          serializes pure-Python compute even though nothing in this
          library does anymore).
        * ``"process"`` — fork-based worker processes (POSIX only; falls
          back to threads where ``fork`` is unavailable).  Children inherit
          the encoded graph, statistics and warm plan cache copy-on-write,
          so the batch runs with real hardware parallelism; cache/statistic
          counter updates made inside children are not reflected back.
          Queries and results must be picklable.  The known query-path
          locks are held across the fork, but forking while *other*
          threads are concurrently executing against or mutating this
          database is not supported (the usual ``fork``-plus-threads
          caveat); run process batches from a quiet point.

        The first failing query's exception is re-raised after the batch
        drains.
        """
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown execute_many mode {mode!r} (thread or process)")
        if params is not None:
            if len(params) != len(queries):
                raise ValueError(
                    f"params supplies {len(params)} bindings for {len(queries)} queries"
                )
            if any(isinstance(query, tuple) for query in queries):
                raise ValueError(
                    "pass bindings either inline as (query, params) tuples or "
                    "positionally via params=, not both"
                )
            items: List[Tuple[Union[str, QuerySpec], ParamsInput]] = list(zip(queries, params))
        else:
            items = [
                item if isinstance(item, tuple) else (item, None)  # type: ignore[list-item]
                for item in queries
            ]
        if not items:
            return []
        session = self.connect(engine=engine)
        session.engine  # resolve (and lazily build) the engine once, up front
        if max_workers is None:
            max_workers = min(4, os.cpu_count() or 1, len(items))
        max_workers = max(1, max_workers)

        def run_one(item: Tuple[Union[str, QuerySpec], ParamsInput]) -> "QueryResult":
            query, bindings = item
            if isinstance(query, QuerySpec):
                return session.execute(query, params=bindings)
            return session.sql(query, params=bindings)

        if max_workers == 1:
            return [run_one(item) for item in items]
        if mode == "process" and hasattr(os, "fork"):
            return self._execute_many_forked(items, session.engine_name, max_workers)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(run_one, item) for item in items]
            return [future.result() for future in futures]

    def _execute_many_forked(
        self,
        items: List[Tuple[Union[str, QuerySpec], ParamsInput]],
        engine_name: str,
        max_workers: int,
    ) -> List["QueryResult"]:
        """Fan a batch out over forked worker processes.

        The workers are forked *after* the engine, graph, statistics and
        plan cache are warm, so they share the expensive read-only state
        with the parent copy-on-write.  The database reaches each worker
        through the pool's *initializer* — with the fork start method its
        arguments are inherited by reference, never pickled — so a worker
        respawned later (e.g. after an OOM kill) rebinds the right
        database too.  The locks every child query path acquires (this
        database's, the shared plan cache's, the engine registry's) are
        held across the initial fork; the forking thread survives into
        each child as its main thread and the locks are re-entrant or
        released, so children start with them in an acquirable state.
        """
        import multiprocessing

        from .registry import _REGISTRY_LOCK

        context = multiprocessing.get_context("fork")
        chunksize = max(1, len(items) // (max_workers * 4))
        with self._lock, self.plan_cache._lock, _REGISTRY_LOCK:
            pool = context.Pool(
                processes=max_workers,
                initializer=_forked_worker_init,
                initargs=(self, engine_name),
            )
        try:
            return pool.map(_forked_batch_worker, items, chunksize=chunksize)
        finally:
            pool.close()
            pool.join()

    # ------------------------------------------------------------------
    # data changes
    # ------------------------------------------------------------------
    def load_rows(self, relation_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-append rows to a relation and invalidate dependent state."""
        relation = self.catalog.relation(relation_name)
        before = len(relation)
        relation.extend(rows)
        self.note_data_change()
        return len(relation) - before

    def note_data_change(self) -> None:
        """Record an out-of-band data mutation: bump the catalog version so
        statistics and the TAG encoding refresh, drop all cached plans and
        eagerly retire every cached engine.

        Retiring the engines matters for correctness, not just freshness:
        an executor built against the old encoding would otherwise keep
        serving the stale graph to sessions that captured a reference.
        The next :meth:`engine` call builds a fresh executor bound to the
        re-encoded graph; retired executors refuse further queries with
        :class:`~repro.core.executor.StaleEngineError`.
        """
        with self._lock:
            self.catalog.note_data_change()
            self.plan_cache.clear()
            for engine in self._engines.values():
                retire = getattr(engine, "retire", None)
                if callable(retire):
                    retire(
                        f"catalog {self.catalog.name!r} re-encoded at version "
                        f"{self.catalog.version}"
                    )
            self._engines.clear()
            self._engine_versions.clear()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Any]:
        """Aggregate plan-cache counters across every engine of this database."""
        with self._lock:
            return {
                "entries": len(self.plan_cache),
                "max_entries": self.plan_cache.max_entries,
                "shared": True,
                "engines": sorted(self._engines),
                **self.plan_cache.stats.as_dict(),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Database({self.catalog.name!r}, default_engine={self.default_engine!r}, "
            f"{len(self.catalog)} relations)"
        )


# ----------------------------------------------------------------------
# fork-mode plumbing for Database.execute_many(mode="process")
# ----------------------------------------------------------------------
#: set inside each forked worker by the pool initializer: the database and
#: engine name the worker serves (inherited memory, not a pickle round-trip)
_FORK_STATE: Optional[Tuple[Database, str]] = None


def _forked_worker_init(database: Database, engine_name: str) -> None:
    global _FORK_STATE
    _FORK_STATE = (database, engine_name)


def _forked_batch_worker(item: Tuple[Union[str, QuerySpec], ParamsInput]) -> "QueryResult":
    database, engine_name = _FORK_STATE
    session = database.connect(engine=engine_name)
    query, bindings = item
    if isinstance(query, QuerySpec):
        return session.execute(query, params=bindings)
    return session.sql(query, params=bindings)


class Session:
    """One logical connection to a :class:`Database`.

    Sessions hold no mutable query state of their own — every execution
    resolves the engine through the database (so invalidation is
    transparent) and binds its parameters in a context variable (so
    concurrent sessions never observe each other's values).
    """

    def __init__(self, database: Database, engine: Optional[str] = None) -> None:
        self.database = database
        self.engine_name = resolve_engine_name(engine or database.default_engine)

    # -- context manager sugar -----------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Sessions are stateless; provided for API symmetry."""

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self.database.engine(self.engine_name)

    @property
    def catalog(self) -> Catalog:
        return self.database.catalog

    def _run_rebinding(self, call: Any) -> Any:
        """Run ``call(engine)``, re-resolving once if the engine was retired.

        A concurrent :meth:`Database.note_data_change` may retire the
        executor between this session resolving it and the query running;
        re-resolving picks up the fresh engine bound to the re-encoded
        graph, which is the transparent-rebind behaviour sessions promise.
        A second retirement mid-retry (a continuous writer) propagates.
        """
        try:
            return call(self.engine)
        except StaleEngineError:
            return call(self.engine)

    # ------------------------------------------------------------------
    # executing
    # ------------------------------------------------------------------
    def sql(
        self,
        sql: str,
        params: ParamsInput = None,
        name: str = "query",
    ) -> QueryResult:
        """Parse, bind and execute SQL text, with optional parameters.

        Parameters appear in the text as ``:name`` or positional ``?`` and
        are supplied as a mapping / sequence respectively.  Repeated calls
        with different values share one compiled plan (the plan-cache
        fingerprint is parameter-generic).
        """
        return self.prepare(sql, name=name).execute(params)

    def execute(
        self,
        query: Union[str, QuerySpec],
        params: ParamsInput = None,
        name: str = "query",
    ) -> QueryResult:
        """Execute SQL text or an already-bound QuerySpec — one front door.

        Callers no longer pre-parse just to pick an entry point: text goes
        through parse/bind/prepare (sharing the parameter-generic plan
        cache), a :class:`~repro.algebra.logical.QuerySpec` executes
        directly.  ``Database.execute_many`` accepts the same union per
        batch item.
        """
        if isinstance(query, str):
            return self.prepare(query, name=name).execute(params)
        expected = spec_parameters(query)
        bound = normalize_parameters(params, expected)
        check_parameter_types(bound, infer_parameter_types(query, self.catalog))
        with bind_parameters(bound):
            return self._run_rebinding(lambda engine: engine.execute(query))

    def prepare(self, sql: str, name: str = "stmt") -> "PreparedStatement":
        """Parse + bind once; execute any number of times with new values."""
        from ..sql import parse_and_bind

        spec = parse_and_bind(sql, self.catalog, name=name)
        # remember the recipe so Database.close() can persist a warm-start
        # manifest covering every statement this process prepared
        self.database._record_statement(self.engine_name, sql, spec)
        return PreparedStatement(
            session=self,
            sql=sql,
            spec=spec,
            parameter_names=spec_parameters(spec),
            parameter_types=infer_parameter_types(spec, self.catalog),
        )

    # ------------------------------------------------------------------
    # explaining
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Union[str, QuerySpec],
        params: ParamsInput = None,
        analyze: bool = False,
        name: str = "query",
    ) -> str:
        """Render this session's engine plan for ``query``.

        The TAG engine shows the chosen rooted join tree and its
        message-volume cost breakdown; the baselines show their operator
        trees.  ``analyze=True`` additionally runs the query (parameters
        required then, if the query has any) and appends actual totals.
        """
        if isinstance(query, str):
            from ..sql import parse_and_bind

            spec = parse_and_bind(query, self.catalog, name=name)
        else:
            spec = query
        expected = spec_parameters(spec)
        if params is not None or analyze:
            bound = normalize_parameters(params, expected)
            check_parameter_types(bound, infer_parameter_types(spec, self.catalog))
        else:
            bound = {}
        header = f"engine: {self.engine_name}"
        with bind_parameters(bound):
            rendered = self._run_rebinding(
                lambda engine: engine.explain(spec, analyze=analyze)
            )
        return header + "\n" + rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.database.catalog.name!r}, engine={self.engine_name!r})"


class PreparedStatement:
    """A parsed, bound, plan-cache-friendly statement.

    The expensive work (parse, bind, and — on first execution — join-tree
    planning) happens once; each :meth:`execute` only validates and binds
    its parameter values.  All executions share one plan-cache entry
    because the fingerprint renders parameters by name, not by value.
    """

    def __init__(
        self,
        session: Session,
        sql: str,
        spec: QuerySpec,
        parameter_names: List[str],
        parameter_types: Dict[str, str],
    ) -> None:
        self.session = session
        self.sql = sql
        self.spec = spec
        self.parameter_names = parameter_names
        self.parameter_types = parameter_types

    def execute(self, params: ParamsInput = None) -> QueryResult:
        bound = normalize_parameters(params, self.parameter_names)
        check_parameter_types(bound, self.parameter_types)
        with bind_parameters(bound):
            return self.session._run_rebinding(lambda engine: engine.execute(self.spec))

    def explain(self, params: ParamsInput = None, analyze: bool = False) -> str:
        return self.session.explain(self.spec, params=params, analyze=analyze)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placeholders = ", ".join(f":{name}" for name in self.parameter_names) or "none"
        return f"PreparedStatement({self.spec.name!r}, parameters: {placeholders})"


# ----------------------------------------------------------------------
# bind-time parameter typing
# ----------------------------------------------------------------------
def infer_parameter_types(spec: QuerySpec, catalog: Catalog) -> Dict[str, str]:
    """Map parameter names to the DataType value-name of the column each is
    compared against, where that is unambiguous.

    Drives the early ``ParameterError`` on type mismatches (e.g. a string
    bound to ``O_TOTAL > :t``).  Parameters compared against columns of
    conflicting types — or never compared against a column directly — are
    left untyped and validated only at evaluation time.
    """
    from ..algebra.parameters import ParameterRef

    inferred: Dict[str, str] = {}
    conflicted: set = set()

    def note(name: str, type_name: Optional[str]) -> None:
        if type_name is None or name in conflicted:
            return
        if name in inferred and inferred[name] != type_name:
            del inferred[name]
            conflicted.add(name)
            return
        inferred[name] = type_name

    def column_type(alias_map: Mapping[str, str], expression: Expression) -> Optional[str]:
        if not isinstance(expression, ColumnRef) or expression.table is None:
            return None
        table = alias_map.get(expression.table)
        if table is None or table not in catalog:
            return None
        schema = catalog.schema(table)
        if expression.column not in schema:
            return None
        return schema.dtype(expression.column).value

    def visit_expression(alias_map: Mapping[str, str], expression: Expression) -> None:
        for node in iter_subexpressions(expression):
            if isinstance(node, Comparison):
                if isinstance(node.left, ParameterRef):
                    note(node.left.name, column_type(alias_map, node.right))
                if isinstance(node.right, ParameterRef):
                    note(node.right.name, column_type(alias_map, node.left))
            elif isinstance(node, Between):
                operand_type = column_type(alias_map, node.operand)
                for bound in (node.low, node.high):
                    if isinstance(bound, ParameterRef):
                        note(bound.name, operand_type)
            elif isinstance(node, InList):
                operand_type = column_type(alias_map, node.operand)
                for item in node.values:
                    if isinstance(item, ParameterRef):
                        note(item.name, operand_type)

    def visit(block: QuerySpec) -> None:
        alias_map = block.alias_map()
        for alias_filters in block.filters.values():
            for predicate in alias_filters:
                visit_expression(alias_map, predicate)
        for predicate in block.residual_predicates:
            visit_expression(alias_map, predicate)
        for subquery in block.subqueries:
            if subquery.outer_expr is not None:
                visit_expression(alias_map, subquery.outer_expr)
            visit(subquery.query)

    visit(spec)
    return inferred
