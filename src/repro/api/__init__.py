"""repro.api — the unified public surface of the reproduction.

``Database`` owns the per-dataset state (TAG encoding, statistics, one
shared plan cache); ``Session`` executes SQL with optional parameters and
renders cross-engine EXPLAIN; the engine registry maps names ("tag",
"rdbms", "spark", ...) to executor factories so callers never hardwire an
executor class.  See :mod:`repro.api.database` for a usage sketch.
"""

from ..algebra.parameters import ParameterError, bind_parameters
from ..core.executor import StaleEngineError
from .database import Database, PreparedStatement, Session, infer_parameter_types
from .registry import (
    Engine,
    EngineContext,
    EngineError,
    available_engines,
    builtin_engine_names,
    create_engine,
    engine_aliases,
    list_engines,
    register_engine,
    resolve_engine_name,
)

__all__ = [
    "Database",
    "Engine",
    "EngineContext",
    "EngineError",
    "ParameterError",
    "PreparedStatement",
    "Session",
    "StaleEngineError",
    "available_engines",
    "bind_parameters",
    "builtin_engine_names",
    "create_engine",
    "engine_aliases",
    "infer_parameter_types",
    "list_engines",
    "register_engine",
    "resolve_engine_name",
]
