"""The engine registry: every query engine of the reproduction, by name.

The paper compares one TAG-join evaluator against two baseline families;
this module makes that lineup a runtime-extensible registry instead of a
set of hardcoded classes.  Each entry is a factory producing an object
satisfying the :class:`Engine` protocol (``execute`` / ``execute_sql`` /
``explain``) from an :class:`EngineContext` — the bundle of shared state a
:class:`repro.api.Database` owns: the catalog, the lazily-encoded TAG
graph, one :class:`~repro.planner.cache.PlanCache` and one
:class:`~repro.tag.statistics.CatalogStatistics` store.

Built-in names (auto-registered on import):

=============== ======================= =========================================
name            aliases                 engine
=============== ======================= =========================================
tag             tag_join, tag_slotted   TAG-join executor (slotted hot path)
tag_vectorized  vectorized              TAG-join over columnar numpy batches
tag_dict        tag_dict_rows           TAG-join over dict rows (reference path)
rdbms           rdbms_hash              RDBMS-style baseline, hash joins
rdbms_sortmerge                         RDBMS-style baseline, sort-merge joins
spark           spark_like              distributed shuffle/broadcast baseline
=============== ======================= =========================================

Third parties register their own with :func:`register_engine`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Protocol, Tuple

from ..algebra.logical import QuerySpec
from ..relational.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.executor import QueryResult
    from ..planner import PlanCache
    from ..tag.encoder import TagGraph
    from ..tag.statistics import CatalogStatistics


class EngineError(ValueError):
    """Raised for unknown engine names or invalid registrations."""


class Engine(Protocol):
    """What every query engine must provide (structural, duck-typed).

    All three executors conform directly: the protocol was distilled from
    their shared surface rather than imposed via inheritance, so existing
    direct-construction code keeps working unchanged.
    """

    name: str

    def execute(self, spec: QuerySpec) -> "QueryResult": ...

    def execute_sql(self, sql: str) -> "QueryResult": ...

    def explain(self, spec: QuerySpec, analyze: bool = False) -> str: ...


@dataclass
class EngineContext:
    """Shared state handed to engine factories by a Database.

    ``tag_graph`` is a zero-argument callable so baselines that never touch
    the TAG encoding do not pay for it.
    """

    catalog: Catalog
    tag_graph: Callable[[], "TagGraph"]
    plan_cache: Optional["PlanCache"] = None
    statistics: Optional["CatalogStatistics"] = None
    num_workers: int = 1
    options: Dict[str, Any] = field(default_factory=dict)


EngineFactory = Callable[[EngineContext], Any]


@dataclass(frozen=True)
class _Registration:
    name: str
    factory: EngineFactory
    description: str
    aliases: Tuple[str, ...]


_REGISTRY: Dict[str, _Registration] = {}
_ALIASES: Dict[str, str] = {}
_REGISTRY_LOCK = threading.RLock()


def register_engine(
    name: str,
    factory: EngineFactory,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register an engine factory under ``name`` (plus optional aliases).

    Both canonical names and aliases live in one namespace: registering a
    name that collides with *any* existing name or alias requires
    ``replace=True``, so a third-party engine can never silently capture a
    built-in alias like ``spark_like``.
    """
    with _REGISTRY_LOCK:
        if not replace:
            taken = set(_REGISTRY) | set(_ALIASES)
            for candidate in (name, *aliases):
                if candidate in taken:
                    raise EngineError(
                        f"engine name or alias {candidate!r} already registered "
                        "(replace=True to override)"
                    )
        _REGISTRY[name] = _Registration(name, factory, description, tuple(aliases))
        # a replacement may shadow what was previously an alias
        _ALIASES.pop(name, None)
        for alias in aliases:
            _ALIASES[alias] = name


def resolve_engine_name(name: str) -> str:
    """Canonical registry name for ``name`` (aliases resolved)."""
    with _REGISTRY_LOCK:
        if name in _REGISTRY:
            return name
        if name in _ALIASES:
            return _ALIASES[name]
    raise EngineError(
        f"unknown engine {name!r}; available: {', '.join(sorted(available_engines()))}"
    )


def available_engines() -> Dict[str, str]:
    """Canonical engine names mapped to their one-line descriptions."""
    with _REGISTRY_LOCK:
        return {reg.name: reg.description for reg in _REGISTRY.values()}


def engine_aliases() -> Dict[str, str]:
    """Alias -> canonical name mapping (for documentation and CLIs)."""
    with _REGISTRY_LOCK:
        return dict(_ALIASES)


def list_engines() -> List[Dict[str, Any]]:
    """Structured registry introspection: every engine, with its aliases.

    The public counterpart of :func:`available_engines` — one record per
    canonical engine, JSON-serialisable as-is.  This is what the query
    server's ``list_engines`` endpoint returns and what
    ``repro.list_engines()`` re-exports, so out-of-process clients see
    exactly the same lineup as in-process callers.
    """
    with _REGISTRY_LOCK:
        registrations = sorted(_REGISTRY.values(), key=lambda reg: reg.name)
        return [
            {
                "name": reg.name,
                "description": reg.description,
                "aliases": sorted(reg.aliases),
            }
            for reg in registrations
        ]


def create_engine(name: str, context: EngineContext) -> Any:
    """Instantiate the engine registered under ``name`` for ``context``."""
    canonical = resolve_engine_name(name)
    with _REGISTRY_LOCK:
        registration = _REGISTRY[canonical]
    return registration.factory(context)


# ----------------------------------------------------------------------
# built-in engines
# ----------------------------------------------------------------------
def _tag_factory(context: EngineContext, **defaults: Any) -> Any:
    from ..core.executor import TagJoinExecutor

    options = dict(defaults)
    options.update(context.options)
    executor = TagJoinExecutor(
        context.tag_graph(),
        context.catalog,
        num_workers=context.num_workers,
        plan_cache=context.plan_cache,
        statistics=context.statistics,
        **options,
    )
    return executor


def _tag_variant_factory(**defaults: Any) -> EngineFactory:
    """A TAG engine entry with pinned row-representation defaults.

    User-supplied ``engine_options`` still win, so e.g.
    ``{"tag_vectorized": {"cross_check_rows": True}}`` composes with the
    variant's pinned kernel choice.
    """

    def factory(context: EngineContext) -> Any:
        return _tag_factory(context, **defaults)

    return factory


def _rdbms_factory(join_algorithm: str) -> EngineFactory:
    def factory(context: EngineContext) -> Any:
        from ..engine.executor import RelationalExecutor

        options = dict(context.options)
        options.setdefault("join_algorithm", join_algorithm)
        return RelationalExecutor(
            context.catalog, statistics=context.statistics, **options
        )

    return factory


def _spark_factory(context: EngineContext) -> Any:
    from ..distributed.spark_like import SparkLikeExecutor, SparkLikeOptions

    options = dict(context.options)
    if "options" in options:
        spark_options = options.pop("options")
    else:
        option_fields = {"num_partitions", "broadcast_threshold_rows", "collect_result_at_driver"}
        picked = {key: options.pop(key) for key in list(options) if key in option_fields}
        picked.setdefault("num_partitions", max(context.num_workers, 6))
        spark_options = SparkLikeOptions(**picked)
    return SparkLikeExecutor(context.catalog, spark_options, **options)


def _register_builtins() -> None:
    register_engine(
        "tag",
        _tag_factory,
        description="vertex-centric TAG-join executor (the paper's TAG_tg)",
        aliases=("tag_join", "tag_slotted"),
    )
    register_engine(
        "tag_vectorized",
        _tag_variant_factory(use_vectorized_kernel=True, name="tag_vectorized"),
        description="TAG-join over columnar numpy batches (vectorized superstep kernel)",
        aliases=("vectorized",),
    )
    register_engine(
        "tag_dict",
        _tag_variant_factory(use_slotted_rows=False, name="tag_dict"),
        description="TAG-join over dict rows (the original reference representation)",
        aliases=("tag_dict_rows",),
    )
    register_engine(
        "rdbms",
        _rdbms_factory("hash"),
        description="single-node RDBMS-style baseline with hash joins",
        aliases=("rdbms_hash",),
    )
    register_engine(
        "rdbms_sortmerge",
        _rdbms_factory("sort_merge"),
        description="single-node RDBMS-style baseline with sort-merge joins",
    )
    register_engine(
        "spark",
        _spark_factory,
        description="distributed shuffle/broadcast-join baseline (spark_sql)",
        aliases=("spark_like",),
    )


_register_builtins()


def builtin_engine_names() -> List[str]:
    """The canonical names registered by this module itself."""
    return ["tag", "tag_vectorized", "tag_dict", "rdbms", "rdbms_sortmerge", "spark"]
